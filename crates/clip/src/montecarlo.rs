//! Monte-Carlo area estimation baseline.
//!
//! The related-work section of the paper (§6) notes that Monte-Carlo
//! sampling can estimate the areas of intersection and union on GPUs but is
//! far more compute-intensive than PixelBox, because every estimate needs
//! repeated casting of random sample points. This module provides that
//! baseline so benchmarks can quantify the comparison.

use rand::Rng;
use sccg_geometry::RectilinearPolygon;

/// Result of a Monte-Carlo estimation run for a single polygon pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloEstimate {
    /// Estimated `‖p ∩ q‖` in pixels.
    pub intersection: f64,
    /// Estimated `‖p ∪ q‖` in pixels.
    pub union: f64,
    /// Number of sample points cast.
    pub samples: u32,
}

/// Estimates the intersection and union areas of a polygon pair by sampling
/// `samples` uniform points over the joint MBR and classifying each against
/// both polygons.
pub fn monte_carlo_areas<R: Rng>(
    p: &RectilinearPolygon,
    q: &RectilinearPolygon,
    samples: u32,
    rng: &mut R,
) -> MonteCarloEstimate {
    let joint = p.mbr().union(&q.mbr());
    let total = joint.pixel_count() as f64;
    if samples == 0 || joint.is_empty() {
        return MonteCarloEstimate {
            intersection: 0.0,
            union: 0.0,
            samples,
        };
    }
    let mut hits_inter = 0u64;
    let mut hits_union = 0u64;
    for _ in 0..samples {
        let x = rng.gen_range(joint.min_x..joint.max_x);
        let y = rng.gen_range(joint.min_y..joint.max_y);
        let in_p = p.contains_pixel(x, y);
        let in_q = q.contains_pixel(x, y);
        if in_p && in_q {
            hits_inter += 1;
        }
        if in_p || in_q {
            hits_union += 1;
        }
    }
    MonteCarloEstimate {
        intersection: total * hits_inter as f64 / f64::from(samples),
        union: total * hits_union as f64 / f64::from(samples),
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sccg_geometry::Rect;

    fn rect_poly(x0: i32, y0: i32, x1: i32, y1: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(x0, y0, x1, y1)).unwrap()
    }

    #[test]
    fn zero_samples_yield_zero_estimate() {
        let p = rect_poly(0, 0, 10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let est = monte_carlo_areas(&p, &p, 0, &mut rng);
        assert_eq!(est.intersection, 0.0);
        assert_eq!(est.union, 0.0);
    }

    #[test]
    fn estimate_converges_to_exact_areas() {
        let p = rect_poly(0, 0, 40, 40);
        let q = rect_poly(20, 20, 60, 60);
        let exact = crate::pair_areas(&p, &q);
        let mut rng = StdRng::seed_from_u64(7);
        let est = monte_carlo_areas(&p, &q, 200_000, &mut rng);
        let rel_i =
            (est.intersection - exact.intersection as f64).abs() / exact.intersection as f64;
        let rel_u = (est.union - exact.union as f64).abs() / exact.union as f64;
        assert!(rel_i < 0.05, "intersection relative error {rel_i}");
        assert!(rel_u < 0.05, "union relative error {rel_u}");
    }

    #[test]
    fn identical_polygons_estimate_equal_intersection_and_union() {
        let p = rect_poly(3, 3, 23, 19);
        let mut rng = StdRng::seed_from_u64(11);
        let est = monte_carlo_areas(&p, &p, 50_000, &mut rng);
        assert!((est.intersection - est.union).abs() < 1e-9);
    }

    #[test]
    fn disjoint_polygons_estimate_zero_intersection() {
        let p = rect_poly(0, 0, 10, 10);
        let q = rect_poly(50, 50, 60, 60);
        let mut rng = StdRng::seed_from_u64(3);
        let est = monte_carlo_areas(&p, &q, 20_000, &mut rng);
        assert_eq!(est.intersection, 0.0);
        assert!(est.union > 0.0);
    }

    #[test]
    fn estimation_is_deterministic_for_a_fixed_seed() {
        let p = rect_poly(0, 0, 30, 30);
        let q = rect_poly(10, 10, 40, 40);
        let a = monte_carlo_areas(&p, &q, 10_000, &mut StdRng::seed_from_u64(42));
        let b = monte_carlo_areas(&p, &q, 10_000, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}
