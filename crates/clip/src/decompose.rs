//! Plane-sweep slab decomposition of rectilinear polygons.

use sccg_geometry::{Rect, RectilinearPolygon};

/// Decomposes a simple rectilinear polygon into a set of disjoint,
/// axis-aligned rectangles whose union is exactly the polygon's interior.
///
/// The decomposition sweeps the x axis: between two consecutive distinct
/// vertex x-coordinates the polygon's vertical cross-section is constant, so
/// the slab's interior is described by the sorted y-coordinates of the
/// horizontal edges spanning the slab, paired up by the even–odd rule.
///
/// The output rectangles are emitted in increasing x order (and increasing y
/// within a slab), which downstream overlay code exploits.
pub fn decompose_into_rects(poly: &RectilinearPolygon) -> Vec<Rect> {
    // Collect distinct vertex x coordinates (slab boundaries).
    let mut xs: Vec<i32> = poly.vertices().iter().map(|v| v.x).collect();
    xs.sort_unstable();
    xs.dedup();

    // Collect horizontal edges as (y, xmin, xmax).
    let mut hedges: Vec<(i32, i32, i32)> = Vec::new();
    for e in poly.edges() {
        if e.a.y == e.b.y {
            hedges.push((e.a.y, e.a.x.min(e.b.x), e.a.x.max(e.b.x)));
        }
    }

    let mut rects = Vec::new();
    let mut ys: Vec<i32> = Vec::new();
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        ys.clear();
        for &(y, exmin, exmax) in &hedges {
            // The edge spans the whole slab because slab boundaries are
            // exactly the vertex x coordinates.
            if exmin <= x0 && exmax >= x1 {
                ys.push(y);
            }
        }
        ys.sort_unstable();
        debug_assert!(
            ys.len().is_multiple_of(2),
            "odd number of crossings in slab"
        );
        for pair in ys.chunks_exact(2) {
            rects.push(Rect::new(x0, pair[0], x1, pair[1]));
        }
    }
    rects
}

/// Total area of a rectangle decomposition (sanity helper used in tests and
/// by the overlay profiler).
pub fn decomposition_area(rects: &[Rect]) -> i64 {
    rects.iter().map(Rect::pixel_count).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{raster, Point};

    fn l_shape() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 2),
            Point::new(2, 2),
            Point::new(2, 4),
            Point::new(0, 4),
        ])
        .unwrap()
    }

    /// A plus/cross shaped polygon exercising slabs with two disjoint
    /// intervals.
    fn u_shape() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(6, 0),
            Point::new(6, 5),
            Point::new(4, 5),
            Point::new(4, 2),
            Point::new(2, 2),
            Point::new(2, 5),
            Point::new(0, 5),
        ])
        .unwrap()
    }

    fn assert_exact_cover(poly: &RectilinearPolygon) {
        let rects = decompose_into_rects(poly);
        // Total area matches.
        assert_eq!(decomposition_area(&rects), poly.area());
        // Rectangles are pairwise disjoint.
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                assert!(!a.intersects(b), "{a:?} overlaps {b:?}");
            }
        }
        // Every pixel of every rectangle is inside the polygon and every
        // interior pixel is covered.
        let mbr = poly.mbr();
        for (x, y) in mbr.pixels() {
            let inside = poly.contains_pixel(x, y);
            let covered = rects.iter().any(|r| r.contains_pixel(x, y));
            assert_eq!(inside, covered, "pixel ({x},{y}) mismatch");
        }
    }

    #[test]
    fn rectangle_decomposes_to_itself() {
        let poly = RectilinearPolygon::rectangle(Rect::new(3, 4, 9, 11)).unwrap();
        let rects = decompose_into_rects(&poly);
        assert_eq!(rects, vec![Rect::new(3, 4, 9, 11)]);
    }

    #[test]
    fn l_shape_exact_cover() {
        assert_exact_cover(&l_shape());
    }

    #[test]
    fn u_shape_exact_cover_with_split_slabs() {
        let poly = u_shape();
        assert_exact_cover(&poly);
        let rects = decompose_into_rects(&poly);
        // The middle slab (x in [2,4)) must contribute exactly one rectangle
        // (the bottom bar), while the outer slabs contribute full columns.
        assert!(rects.iter().any(|r| r.min_x == 2 && r.max_x == 4));
    }

    #[test]
    fn decomposition_matches_raster_area_for_staircases() {
        let poly = RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(7, 0),
            Point::new(7, 1),
            Point::new(5, 1),
            Point::new(5, 4),
            Point::new(3, 4),
            Point::new(3, 6),
            Point::new(1, 6),
            Point::new(1, 7),
            Point::new(0, 7),
        ])
        .unwrap();
        assert_exact_cover(&poly);
        assert_eq!(
            decomposition_area(&decompose_into_rects(&poly)),
            raster::polygon_area(&poly)
        );
    }

    #[test]
    fn rects_are_sorted_by_x() {
        let rects = decompose_into_rects(&u_shape());
        for w in rects.windows(2) {
            assert!(w[0].min_x <= w[1].min_x);
        }
    }
}
