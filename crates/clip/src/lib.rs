//! Exact, boundary-constructing polygon overlay — the GEOS/CGAL stand-in.
//!
//! PostGIS implements `ST_Intersection`, `ST_Union` and `ST_Area` on top of
//! GEOS, a general-purpose computational-geometry library whose sweepline
//! overlay constructs the *boundary* of the result before measuring its area
//! (paper §2.3). That boundary construction is exactly what the paper
//! identifies as the bottleneck of the SDBMS solution, and what PixelBox
//! avoids.
//!
//! This crate plays the role of GEOS in the reproduction: an exact,
//! general-purpose, branch-heavy CPU algorithm that *does* construct the
//! overlay geometry:
//!
//! * [`decompose`] — plane-sweep slab decomposition of a rectilinear polygon
//!   into disjoint rectangles (the constructed geometry).
//! * [`overlay`] — intersection geometry, intersection area, union area
//!   (both directly via rectangle-union sweep and indirectly via
//!   inclusion–exclusion).
//! * [`montecarlo`] — a randomized sampling estimator, the related-work
//!   baseline discussed in §6 (Monte Carlo area estimation).
//!
//! All exact routines are validated against the brute-force raster oracle of
//! `sccg-geometry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod montecarlo;
pub mod overlay;

pub use decompose::decompose_into_rects;
pub use montecarlo::{monte_carlo_areas, MonteCarloEstimate};
pub use overlay::{
    intersection_area, intersection_geometry, union_area_direct, union_area_indirect, PairAreas,
};

/// Computes the exact areas of intersection and union of a polygon pair the
/// way an SDBMS would: construct the intersection geometry, measure it, and
/// derive the union from the polygon areas. This is the "optimized query"
/// code path of Figure 1(b).
pub fn pair_areas(
    p: &sccg_geometry::RectilinearPolygon,
    q: &sccg_geometry::RectilinearPolygon,
) -> PairAreas {
    let inter = intersection_area(p, q);
    PairAreas {
        intersection: inter,
        union: p.area() + q.area() - inter,
    }
}
