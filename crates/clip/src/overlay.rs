//! Exact overlay operations on rectilinear polygon pairs.
//!
//! These mirror the SDBMS operators used by the cross-comparing queries of
//! Figure 1: `ST_Intersection` ([`intersection_geometry`]),
//! `ST_Area(ST_Intersection(...))` ([`intersection_area`]),
//! `ST_Area(ST_Union(...))` ([`union_area_direct`], the unoptimized-query
//! path) and the rewritten `‖p‖ + ‖q‖ − ‖p ∩ q‖` form
//! ([`union_area_indirect`], the optimized-query path).

use crate::decompose::decompose_into_rects;
use sccg_geometry::{Rect, RectilinearPolygon};

/// Exact areas of the intersection and the union of one polygon pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PairAreas {
    /// `‖p ∩ q‖` in pixels.
    pub intersection: i64,
    /// `‖p ∪ q‖` in pixels.
    pub union: i64,
}

impl PairAreas {
    /// The per-pair Jaccard ratio `r(p, q) = ‖p∩q‖ / ‖p∪q‖`, or `None` when
    /// the pair does not actually intersect (such pairs are excluded from the
    /// similarity average, Formula 1).
    pub fn ratio(&self) -> Option<f64> {
        if self.intersection == 0 || self.union == 0 {
            None
        } else {
            Some(self.intersection as f64 / self.union as f64)
        }
    }
}

/// Constructs the geometry of `p ∩ q` as a set of disjoint rectangles.
///
/// Both polygons are slab-decomposed; because each decomposition consists of
/// pairwise-disjoint rectangles, the pairwise rectangle intersections are
/// themselves disjoint and cover exactly the intersection region. This is the
/// boundary-constructing work an SDBMS performs for `ST_Intersection`.
pub fn intersection_geometry(p: &RectilinearPolygon, q: &RectilinearPolygon) -> Vec<Rect> {
    if !p.mbr().intersects(&q.mbr()) {
        return Vec::new();
    }
    let rp = decompose_into_rects(p);
    let rq = decompose_into_rects(q);
    let mut out = Vec::new();
    // Both lists are sorted by min_x; a nested loop with an early break keeps
    // the scan near-linear for the small polygons typical of the workload.
    for a in &rp {
        for b in &rq {
            if b.min_x >= a.max_x {
                break;
            }
            let i = a.intersection(b);
            if !i.is_empty() {
                out.push(i);
            }
        }
    }
    out
}

/// Exact `‖p ∩ q‖` via constructed intersection geometry.
pub fn intersection_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
    intersection_geometry(p, q)
        .iter()
        .map(Rect::pixel_count)
        .sum()
}

/// Exact `‖p ∪ q‖` computed *directly*, by constructing the union geometry:
/// the union of both slab decompositions, measured with a plane sweep over
/// the x axis merging active y-intervals. This is the costly
/// `ST_Area(ST_Union(...))` path of the unoptimized query (Figure 1(a)).
pub fn union_area_direct(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
    let mut rects = decompose_into_rects(p);
    rects.extend(decompose_into_rects(q));
    rectangle_union_area(&rects)
}

/// Exact `‖p ∪ q‖` computed *indirectly* through
/// `‖p‖ + ‖q‖ − ‖p ∩ q‖` — the rewriting applied by the optimized query
/// (Figure 1(b)) and by PixelBox (§3.2).
pub fn union_area_indirect(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
    p.area() + q.area() - intersection_area(p, q)
}

/// Area of the union of an arbitrary set of axis-aligned rectangles,
/// via a plane sweep with per-slab interval merging.
pub fn rectangle_union_area(rects: &[Rect]) -> i64 {
    let mut xs: Vec<i32> = Vec::with_capacity(rects.len() * 2);
    for r in rects {
        if !r.is_empty() {
            xs.push(r.min_x);
            xs.push(r.max_x);
        }
    }
    if xs.is_empty() {
        return 0;
    }
    xs.sort_unstable();
    xs.dedup();

    let mut area = 0i64;
    let mut intervals: Vec<(i32, i32)> = Vec::new();
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        intervals.clear();
        for r in rects {
            if !r.is_empty() && r.min_x <= x0 && r.max_x >= x1 {
                intervals.push((r.min_y, r.max_y));
            }
        }
        if intervals.is_empty() {
            continue;
        }
        intervals.sort_unstable();
        // Merge overlapping y-intervals and accumulate covered length.
        let mut covered = 0i64;
        let (mut lo, mut hi) = intervals[0];
        for &(a, b) in &intervals[1..] {
            if a > hi {
                covered += i64::from(hi) - i64::from(lo);
                lo = a;
                hi = b;
            } else {
                hi = hi.max(b);
            }
        }
        covered += i64::from(hi) - i64::from(lo);
        area += covered * (i64::from(x1) - i64::from(x0));
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{raster, Point};

    fn rect_poly(x0: i32, y0: i32, x1: i32, y1: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(x0, y0, x1, y1)).unwrap()
    }

    fn staircase(offset: i32) -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(offset, offset),
            Point::new(offset + 8, offset),
            Point::new(offset + 8, offset + 3),
            Point::new(offset + 5, offset + 3),
            Point::new(offset + 5, offset + 6),
            Point::new(offset + 2, offset + 6),
            Point::new(offset + 2, offset + 8),
            Point::new(offset, offset + 8),
        ])
        .unwrap()
    }

    #[test]
    fn disjoint_pairs_have_empty_intersection() {
        let p = rect_poly(0, 0, 5, 5);
        let q = rect_poly(20, 20, 25, 25);
        assert!(intersection_geometry(&p, &q).is_empty());
        assert_eq!(intersection_area(&p, &q), 0);
        assert_eq!(union_area_direct(&p, &q), 50);
        assert_eq!(union_area_indirect(&p, &q), 50);
        assert_eq!(pair_ratio(&p, &q), None);
    }

    fn pair_ratio(p: &RectilinearPolygon, q: &RectilinearPolygon) -> Option<f64> {
        crate::pair_areas(p, q).ratio()
    }

    #[test]
    fn overlapping_rectangles_exact() {
        let p = rect_poly(0, 0, 10, 10);
        let q = rect_poly(6, 4, 16, 14);
        let (ri, ru) = raster::intersection_union_area(&p, &q);
        assert_eq!(intersection_area(&p, &q), ri);
        assert_eq!(union_area_direct(&p, &q), ru);
        assert_eq!(union_area_indirect(&p, &q), ru);
        let ratio = pair_ratio(&p, &q).unwrap();
        assert!((ratio - ri as f64 / ru as f64).abs() < 1e-12);
    }

    #[test]
    fn staircase_pair_matches_raster_oracle() {
        let p = staircase(0);
        let q = staircase(3);
        let (ri, ru) = raster::intersection_union_area(&p, &q);
        assert_eq!(intersection_area(&p, &q), ri);
        assert_eq!(union_area_direct(&p, &q), ru);
        assert_eq!(union_area_indirect(&p, &q), ru);
    }

    #[test]
    fn identical_polygons_have_ratio_one() {
        let p = staircase(5);
        let areas = crate::pair_areas(&p, &p);
        assert_eq!(areas.intersection, p.area());
        assert_eq!(areas.union, p.area());
        assert_eq!(areas.ratio(), Some(1.0));
    }

    #[test]
    fn nested_polygons() {
        let outer = rect_poly(0, 0, 20, 20);
        let inner = staircase(4);
        assert_eq!(intersection_area(&outer, &inner), inner.area());
        assert_eq!(union_area_direct(&outer, &inner), outer.area());
    }

    #[test]
    fn intersection_geometry_is_disjoint_and_inside_both() {
        let p = staircase(0);
        let q = staircase(2);
        let pieces = intersection_geometry(&p, &q);
        for (i, a) in pieces.iter().enumerate() {
            for b in &pieces[i + 1..] {
                assert!(!a.intersects(b));
            }
            for (x, y) in a.pixels() {
                assert!(p.contains_pixel(x, y) && q.contains_pixel(x, y));
            }
        }
    }

    #[test]
    fn rectangle_union_handles_duplicates_and_containment() {
        let r = Rect::new(0, 0, 10, 10);
        assert_eq!(rectangle_union_area(&[r, r, r]), 100);
        assert_eq!(rectangle_union_area(&[r, Rect::new(2, 2, 5, 5)]), 100);
        assert_eq!(rectangle_union_area(&[]), 0);
        assert_eq!(rectangle_union_area(&[Rect::EMPTY, r]), 100);
        assert_eq!(
            rectangle_union_area(&[Rect::new(0, 0, 5, 5), Rect::new(5, 0, 10, 5)]),
            50
        );
    }
}
