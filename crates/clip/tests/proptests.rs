//! Property tests: the exact overlay must agree with the brute-force pixel
//! oracle on arbitrary rectilinear polygon pairs.

use proptest::prelude::*;
use sccg_clip::{
    decompose_into_rects, intersection_area, pair_areas, union_area_direct, union_area_indirect,
};
use sccg_geometry::{raster, Point, RectilinearPolygon};

/// Random staircase polygon (same construction as the geometry proptests,
/// but offset so pairs frequently overlap partially).
fn staircase_polygon(max_offset: i32) -> impl Strategy<Value = RectilinearPolygon> {
    (2usize..7).prop_flat_map(move |steps| {
        (
            prop::collection::vec(1i32..5, steps),
            prop::collection::vec(1i32..5, steps),
            0..max_offset,
            0..max_offset,
        )
            .prop_map(|(dxs, dys, ox, oy)| {
                let total_h: i32 = dys.iter().sum();
                let mut vertices = Vec::new();
                vertices.push(Point::new(ox, oy));
                vertices.push(Point::new(ox, oy + total_h));
                let mut x = ox;
                let mut y = oy + total_h;
                for (dx, dy) in dxs.iter().zip(dys.iter()) {
                    x += dx;
                    vertices.push(Point::new(x, y));
                    y -= dy;
                    vertices.push(Point::new(x, y));
                }
                RectilinearPolygon::new(vertices).expect("staircase is valid")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decomposition_area_equals_polygon_area(poly in staircase_polygon(20)) {
        let rects = decompose_into_rects(&poly);
        let total: i64 = rects.iter().map(|r| r.pixel_count()).sum();
        prop_assert_eq!(total, poly.area());
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                prop_assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn exact_overlay_matches_raster_oracle(p in staircase_polygon(12), q in staircase_polygon(12)) {
        let (ri, ru) = raster::intersection_union_area(&p, &q);
        prop_assert_eq!(intersection_area(&p, &q), ri);
        prop_assert_eq!(union_area_direct(&p, &q), ru);
        prop_assert_eq!(union_area_indirect(&p, &q), ru);
    }

    #[test]
    fn direct_and_indirect_union_always_agree(p in staircase_polygon(16), q in staircase_polygon(16)) {
        prop_assert_eq!(union_area_direct(&p, &q), union_area_indirect(&p, &q));
    }

    #[test]
    fn jaccard_ratio_is_within_unit_interval(p in staircase_polygon(10), q in staircase_polygon(10)) {
        let areas = pair_areas(&p, &q);
        if let Some(r) = areas.ratio() {
            prop_assert!(r > 0.0 && r <= 1.0);
        } else {
            prop_assert_eq!(areas.intersection, 0);
        }
        prop_assert!(areas.intersection <= p.area().min(q.area()));
        prop_assert!(areas.union >= p.area().max(q.area()));
    }
}
