//! Launch and device statistics.

/// Statistics of a single kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaunchStats {
    /// Total simulated cycles for the launch (critical-path SM).
    pub cycles: u64,
    /// Simulated wall-clock time of the launch in seconds.
    pub time_seconds: f64,
    /// Number of thread blocks launched.
    pub blocks_launched: u32,
    /// Number of blocks resident per SM under the occupancy rules.
    pub blocks_per_sm: u32,
    /// Achieved occupancy: resident warps per SM / maximum warps per SM.
    pub occupancy: f64,
    /// Pure compute (issue) cycles accumulated across all blocks.
    pub compute_cycles: u64,
    /// Memory stall cycles accumulated across all blocks, before latency
    /// hiding is applied.
    pub memory_stall_cycles: u64,
    /// Shared-memory bank conflicts detected (extra serialized accesses).
    pub bank_conflicts: u64,
    /// Number of shared-memory accesses issued.
    pub shared_accesses: u64,
    /// Number of global-memory transactions issued.
    pub global_transactions: u64,
    /// Lane-cycles wasted to branch divergence (inactive lanes in issued warps).
    pub divergent_lane_cycles: u64,
    /// Number of `__syncthreads()` barriers executed.
    pub syncs: u64,
}

/// Cumulative statistics of a device across its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceStats {
    /// Number of kernel launches executed.
    pub launches: u64,
    /// Total simulated busy time in seconds (kernels + transfers).
    pub busy_seconds: f64,
    /// Total cycles across all launches.
    pub total_cycles: u64,
    /// Total bytes moved between host and device.
    pub bytes_transferred: u64,
    /// Total host↔device transfer time in seconds.
    pub transfer_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let l = LaunchStats::default();
        assert_eq!(l.cycles, 0);
        assert_eq!(l.time_seconds, 0.0);
        let d = DeviceStats::default();
        assert_eq!(d.launches, 0);
        assert_eq!(d.bytes_transferred, 0);
    }
}
