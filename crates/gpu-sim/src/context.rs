//! Per-block execution context: the cost-model half of a kernel.
//!
//! The functional half of a kernel is ordinary Rust code iterating over the
//! block's threads; the cost half is a sequence of calls on [`BlockContext`]
//! describing what the warps executed. The context accumulates issue cycles,
//! memory stalls, bank conflicts, divergence and barriers for the block.

/// Execution context handed to a kernel closure, one per thread block.
#[derive(Debug, Clone)]
pub struct BlockContext {
    block_idx: u32,
    block_dim: u32,
    warp_size: u32,
    banks: u32,
    shared_latency: u64,
    global_latency: u64,
    // Accumulators.
    pub(crate) compute_cycles: u64,
    pub(crate) memory_stall_cycles: u64,
    pub(crate) bank_conflicts: u64,
    pub(crate) shared_accesses: u64,
    pub(crate) global_transactions: u64,
    pub(crate) divergent_lane_cycles: u64,
    pub(crate) syncs: u64,
}

impl BlockContext {
    pub(crate) fn new(
        block_idx: u32,
        block_dim: u32,
        warp_size: u32,
        banks: u32,
        shared_latency: u64,
        global_latency: u64,
    ) -> Self {
        BlockContext {
            block_idx,
            block_dim,
            warp_size,
            banks,
            shared_latency,
            global_latency,
            compute_cycles: 0,
            memory_stall_cycles: 0,
            bank_conflicts: 0,
            shared_accesses: 0,
            global_transactions: 0,
            divergent_lane_cycles: 0,
            syncs: 0,
        }
    }

    /// Index of this block within the grid (`blockIdx.x`).
    #[inline]
    pub fn block_idx(&self) -> u32 {
        self.block_idx
    }

    /// Number of threads in the block (`blockDim.x`).
    #[inline]
    pub fn threads(&self) -> u32 {
        self.block_dim
    }

    /// Number of warps in the block.
    #[inline]
    pub fn warps(&self) -> u32 {
        self.block_dim.div_ceil(self.warp_size)
    }

    /// SIMD width of the device.
    #[inline]
    pub fn warp_size(&self) -> u32 {
        self.warp_size
    }

    /// Charges `ops` arithmetic/logic instructions executed by every lane of
    /// every warp of the block (uniform, fully converged execution).
    #[inline]
    pub fn charge_alu(&mut self, ops: u64) {
        self.compute_cycles += ops * u64::from(self.warps());
    }

    /// Charges `ops` instructions on a *divergent* region where only
    /// `active_lanes` of the block's threads do useful work. The whole warp
    /// still issues every instruction (SIMT lock-step), so the cycle cost is
    /// identical to [`Self::charge_alu`]; the wasted lane-cycles are recorded so the
    /// divergence penalty is observable in statistics.
    pub fn charge_alu_divergent(&mut self, ops: u64, active_lanes: u32) {
        let active = active_lanes.min(self.block_dim);
        // Warps that contain at least one active lane must issue.
        let issuing_warps = if active == 0 {
            0
        } else {
            active.div_ceil(self.warp_size).max(1)
        };
        self.compute_cycles += ops * u64::from(issuing_warps);
        let wasted_lanes = u64::from(issuing_warps) * u64::from(self.warp_size) - u64::from(active);
        self.divergent_lane_cycles += ops * wasted_lanes;
    }

    /// Charges loop bookkeeping (compare + branch + induction update) for
    /// `iterations` iterations executed by every warp. Loop unrolling by a
    /// factor `u` lets a kernel charge `iterations / u` instead — this is how
    /// the `PixelBox-NBC-UR` variant models its benefit (paper §3.3).
    #[inline]
    pub fn charge_loop_overhead(&mut self, iterations: u64) {
        const OVERHEAD_OPS_PER_ITERATION: u64 = 3;
        self.compute_cycles += iterations * OVERHEAD_OPS_PER_ITERATION * u64::from(self.warps());
    }

    /// Issues one shared-memory access per provided lane address (in 32-bit
    /// word units) and charges bank-conflict serialization: within each warp,
    /// accesses mapping to the same bank but *different* word addresses are
    /// serialized (identical addresses broadcast for free).
    pub fn shared_access(&mut self, word_addresses: &[u32]) {
        for warp in word_addresses.chunks(self.warp_size as usize) {
            let mut per_bank: Vec<Vec<u32>> = vec![Vec::new(); self.banks as usize];
            for &addr in warp {
                let bank = (addr % self.banks) as usize;
                if !per_bank[bank].contains(&addr) {
                    per_bank[bank].push(addr);
                }
            }
            let degree = per_bank.iter().map(Vec::len).max().unwrap_or(0).max(1) as u64;
            self.shared_accesses += warp.len() as u64;
            self.bank_conflicts += degree - 1;
            self.memory_stall_cycles += self.shared_latency * degree;
        }
    }

    /// Shorthand for a conflict-free shared-memory access pattern executed
    /// `count` times by every lane (e.g. stride-1 or broadcast reads).
    pub fn shared_access_uniform(&mut self, count: u64) {
        self.shared_accesses += count * u64::from(self.block_dim);
        self.memory_stall_cycles += self.shared_latency * count * u64::from(self.warps());
    }

    /// Issues a global-memory access of `bytes_per_lane` bytes by every lane.
    /// When `coalesced`, each warp's accesses merge into 128-byte
    /// transactions; otherwise every lane pays its own transaction.
    pub fn global_access(&mut self, bytes_per_lane: u32, coalesced: bool) {
        const TRANSACTION_BYTES: u64 = 128;
        let lanes = u64::from(self.block_dim);
        let warps = u64::from(self.warps());
        let transactions = if coalesced {
            let warp_bytes = u64::from(bytes_per_lane) * u64::from(self.warp_size);
            warps * warp_bytes.div_ceil(TRANSACTION_BYTES).max(1)
        } else {
            lanes * u64::from(bytes_per_lane).div_ceil(TRANSACTION_BYTES).max(1)
        };
        self.global_transactions += transactions;
        // One latency charge per warp (transactions within a warp pipeline),
        // plus a small per-transaction throughput cost.
        self.memory_stall_cycles += self.global_latency * warps + transactions * 4;
    }

    /// Issues `count` repetitions of a global-memory access of
    /// `bytes_per_lane` bytes by every lane. Equivalent to calling
    /// [`BlockContext::global_access`] `count` times, without the per-call
    /// loop on the host side — kernels use it to report aggregated streaming
    /// access patterns (e.g. one vertex read per edge test).
    pub fn global_access_many(&mut self, bytes_per_lane: u32, coalesced: bool, count: u64) {
        if count == 0 {
            return;
        }
        const TRANSACTION_BYTES: u64 = 128;
        let lanes = u64::from(self.block_dim);
        let warps = u64::from(self.warps());
        let per_call = if coalesced {
            let warp_bytes = u64::from(bytes_per_lane) * u64::from(self.warp_size);
            warps * warp_bytes.div_ceil(TRANSACTION_BYTES).max(1)
        } else {
            lanes * u64::from(bytes_per_lane).div_ceil(TRANSACTION_BYTES).max(1)
        };
        self.global_transactions += per_call * count;
        self.memory_stall_cycles += (self.global_latency * warps + per_call * 4) * count;
    }

    /// Issues a *streamed* sequence of `count` global-memory accesses of
    /// `bytes_per_lane` bytes by every lane. Unlike
    /// [`BlockContext::global_access_many`], the stream exposes the memory
    /// latency only once (subsequent accesses are pipelined / prefetched
    /// behind it) and then pays a per-transaction throughput cost — the
    /// appropriate model for sequential scans such as reading a polygon's
    /// vertex array once per edge test.
    pub fn global_stream(&mut self, bytes_per_lane: u32, coalesced: bool, count: u64) {
        if count == 0 {
            return;
        }
        const TRANSACTION_BYTES: u64 = 128;
        let lanes = u64::from(self.block_dim);
        let warps = u64::from(self.warps());
        let per_call = if coalesced {
            let warp_bytes = u64::from(bytes_per_lane) * u64::from(self.warp_size);
            warps * warp_bytes.div_ceil(TRANSACTION_BYTES).max(1)
        } else {
            lanes * u64::from(bytes_per_lane).div_ceil(TRANSACTION_BYTES).max(1)
        };
        self.global_transactions += per_call * count;
        self.memory_stall_cycles += self.global_latency * warps + per_call * count * 4;
    }

    /// Executes `count` `__syncthreads()` barriers.
    pub fn sync_threads_many(&mut self, count: u64) {
        self.syncs += count;
        self.compute_cycles += (8 + 2 * u64::from(self.warps())) * count;
    }

    /// Executes a `__syncthreads()` barrier: all warps drain and re-converge.
    pub fn sync_threads(&mut self) {
        self.syncs += 1;
        // Barrier cost grows with the number of warps that must arrive.
        self.compute_cycles += 8 + 2 * u64::from(self.warps());
    }

    /// Total cycles attributed to this block before latency hiding.
    pub fn block_cycles(&self) -> u64 {
        self.compute_cycles + self.memory_stall_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block_dim: u32) -> BlockContext {
        BlockContext::new(0, block_dim, 32, 32, 2, 400)
    }

    #[test]
    fn alu_cost_scales_with_warps() {
        let mut a = ctx(32);
        a.charge_alu(100);
        let mut b = ctx(128);
        b.charge_alu(100);
        assert_eq!(a.compute_cycles, 100);
        assert_eq!(b.compute_cycles, 400);
    }

    #[test]
    fn divergent_charge_records_wasted_lanes() {
        let mut c = ctx(64);
        c.charge_alu_divergent(10, 16);
        // 16 active lanes fit in one warp: 10 ops issued by 1 warp.
        assert_eq!(c.compute_cycles, 10);
        assert_eq!(c.divergent_lane_cycles, 10 * (32 - 16));
        let mut d = ctx(64);
        d.charge_alu_divergent(10, 0);
        assert_eq!(d.compute_cycles, 0);
    }

    #[test]
    fn conflict_free_shared_access() {
        let mut c = ctx(32);
        let addrs: Vec<u32> = (0..32).collect(); // one word per bank
        c.shared_access(&addrs);
        assert_eq!(c.bank_conflicts, 0);
        assert_eq!(c.shared_accesses, 32);
        assert_eq!(c.memory_stall_cycles, 2);
    }

    #[test]
    fn strided_shared_access_conflicts() {
        let mut c = ctx(32);
        // Stride of 32 words: every lane hits bank 0 with a distinct address
        // -> a 32-way conflict, serialized into 32 accesses.
        let addrs: Vec<u32> = (0..32).map(|i| i * 32).collect();
        c.shared_access(&addrs);
        assert_eq!(c.bank_conflicts, 31);
        assert_eq!(c.memory_stall_cycles, 2 * 32);
    }

    #[test]
    fn broadcast_shared_access_is_free_of_conflicts() {
        let mut c = ctx(32);
        let addrs = vec![7u32; 32];
        c.shared_access(&addrs);
        assert_eq!(c.bank_conflicts, 0);
    }

    #[test]
    fn coalesced_global_access_uses_fewer_transactions() {
        let mut coalesced = ctx(64);
        coalesced.global_access(4, true);
        let mut scattered = ctx(64);
        scattered.global_access(4, false);
        assert!(coalesced.global_transactions < scattered.global_transactions);
        assert!(coalesced.memory_stall_cycles < scattered.memory_stall_cycles);
    }

    #[test]
    fn sync_cost_grows_with_block_size() {
        let mut small = ctx(32);
        small.sync_threads();
        let mut large = ctx(512);
        large.sync_threads();
        assert!(large.compute_cycles > small.compute_cycles);
        assert_eq!(small.syncs, 1);
    }

    #[test]
    fn loop_overhead_is_linear_in_iterations() {
        let mut a = ctx(64);
        a.charge_loop_overhead(100);
        let mut b = ctx(64);
        b.charge_loop_overhead(25); // 4x unrolled
        assert_eq!(a.compute_cycles, 4 * b.compute_cycles);
    }

    #[test]
    fn aggregated_global_access_matches_repeated_calls() {
        let mut repeated = ctx(64);
        for _ in 0..10 {
            repeated.global_access(8, true);
        }
        let mut aggregated = ctx(64);
        aggregated.global_access_many(8, true, 10);
        assert_eq!(repeated.global_transactions, aggregated.global_transactions);
        assert_eq!(repeated.memory_stall_cycles, aggregated.memory_stall_cycles);
        let mut none = ctx(64);
        none.global_access_many(8, true, 0);
        assert_eq!(none.global_transactions, 0);
    }

    #[test]
    fn streamed_global_access_is_cheaper_than_repeated_exposed_latency() {
        let mut stream = ctx(64);
        stream.global_stream(8, true, 100);
        let mut repeated = ctx(64);
        repeated.global_access_many(8, true, 100);
        assert_eq!(stream.global_transactions, repeated.global_transactions);
        assert!(stream.memory_stall_cycles < repeated.memory_stall_cycles);
        let mut empty = ctx(64);
        empty.global_stream(8, true, 0);
        assert_eq!(empty.memory_stall_cycles, 0);
    }

    #[test]
    fn aggregated_syncs_match_repeated_calls() {
        let mut repeated = ctx(96);
        for _ in 0..5 {
            repeated.sync_threads();
        }
        let mut aggregated = ctx(96);
        aggregated.sync_threads_many(5);
        assert_eq!(repeated.syncs, aggregated.syncs);
        assert_eq!(repeated.compute_cycles, aggregated.compute_cycles);
    }

    #[test]
    fn block_cycles_sums_compute_and_memory() {
        let mut c = ctx(32);
        c.charge_alu(10);
        c.global_access(4, true);
        assert_eq!(c.block_cycles(), c.compute_cycles + c.memory_stall_cycles);
        assert!(c.block_cycles() > 10);
    }
}
