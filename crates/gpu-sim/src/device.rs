//! The simulated device: block scheduling, occupancy and timing.

use crate::config::{DeviceConfig, LaunchConfig};
use crate::context::BlockContext;
use crate::stats::{DeviceStats, LaunchStats};
use parking_lot::Mutex;

/// A simulated GPU device.
///
/// The device is shared state guarded by a mutex, mirroring the exclusive,
/// non-preemptive nature of real GPU kernel execution that the paper's
/// pipelined framework is designed around (§4): concurrent launches from
/// multiple host threads serialize on the device.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    stats: Mutex<DeviceStats>,
}

impl Device {
    /// Creates a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Device {
            config,
            stats: Mutex::new(DeviceStats::default()),
        }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Cumulative statistics since the device was created.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.lock()
    }

    /// Number of blocks of the given launch that can be resident on one SM
    /// simultaneously, limited by the thread, block and shared-memory caps.
    pub fn blocks_per_sm(&self, launch: &LaunchConfig) -> u32 {
        let by_threads = self.config.max_threads_per_sm / launch.block_dim.max(1);
        let by_shmem = if launch.shared_mem_bytes == 0 {
            self.config.max_blocks_per_sm
        } else {
            self.config.shared_mem_per_sm / launch.shared_mem_bytes.max(1)
        };
        by_threads
            .min(by_shmem)
            .min(self.config.max_blocks_per_sm)
            .max(1)
    }

    /// Achieved occupancy of the launch: resident warps per SM divided by the
    /// device maximum.
    pub fn occupancy(&self, launch: &LaunchConfig) -> f64 {
        let resident_warps =
            self.blocks_per_sm(launch) * launch.warps_per_block(self.config.warp_size);
        f64::from(resident_warps.min(self.config.max_warps_per_sm()))
            / f64::from(self.config.max_warps_per_sm())
    }

    /// Executes a kernel: the closure is invoked once per thread block with a
    /// fresh [`BlockContext`], functional results are produced through
    /// whatever captured state the closure mutates, and a [`LaunchStats`] is
    /// returned describing the simulated cost.
    ///
    /// Scheduling model: blocks are assigned round-robin to SMs. On each SM,
    /// resident blocks overlap their memory stalls (latency hiding) according
    /// to how many warps are resident; compute cycles serialize. The launch
    /// finishes when the busiest SM finishes.
    pub fn launch<F>(&self, launch: &LaunchConfig, mut kernel: F) -> LaunchStats
    where
        F: FnMut(&mut BlockContext),
    {
        let sms = self.config.multiprocessors.max(1);
        let mut sm_compute = vec![0u64; sms as usize];
        let mut sm_memory = vec![0u64; sms as usize];

        let mut agg = LaunchStats {
            blocks_launched: launch.grid_dim,
            blocks_per_sm: self.blocks_per_sm(launch),
            occupancy: self.occupancy(launch),
            ..LaunchStats::default()
        };

        for block_idx in 0..launch.grid_dim {
            let mut ctx = BlockContext::new(
                block_idx,
                launch.block_dim,
                self.config.warp_size,
                self.config.shared_mem_banks,
                self.config.shared_latency_cycles,
                self.config.global_latency_cycles,
            );
            kernel(&mut ctx);
            let sm = (block_idx % sms) as usize;
            sm_compute[sm] += ctx.compute_cycles;
            sm_memory[sm] += ctx.memory_stall_cycles;
            agg.compute_cycles += ctx.compute_cycles;
            agg.memory_stall_cycles += ctx.memory_stall_cycles;
            agg.bank_conflicts += ctx.bank_conflicts;
            agg.shared_accesses += ctx.shared_accesses;
            agg.global_transactions += ctx.global_transactions;
            agg.divergent_lane_cycles += ctx.divergent_lane_cycles;
            agg.syncs += ctx.syncs;
        }

        // Latency hiding: with more resident warps per SM, memory stalls
        // overlap with other warps' compute. The hiding factor interpolates
        // between "no hiding" (1 resident warp) and "fully hidden down to a
        // residual throughput cost" at `warps_to_hide_latency`.
        let resident_warps =
            (agg.blocks_per_sm * launch.warps_per_block(self.config.warp_size)).max(1);
        let hiding = (f64::from(resident_warps) / f64::from(self.config.warps_to_hide_latency))
            .clamp(0.0, 1.0);
        let residual = 0.15; // even fully hidden traffic costs some throughput
        let memory_scale = (1.0 - hiding) + hiding * residual;

        let critical_cycles = sm_compute
            .iter()
            .zip(sm_memory.iter())
            .map(|(&c, &m)| c + (m as f64 * memory_scale).ceil() as u64)
            .max()
            .unwrap_or(0);

        agg.cycles = self.config.launch_overhead_cycles + critical_cycles;
        agg.time_seconds = agg.cycles as f64 / self.config.clock_hz * self.config.slowdown;

        let mut stats = self.stats.lock();
        stats.launches += 1;
        stats.total_cycles += agg.cycles;
        stats.busy_seconds += agg.time_seconds;
        agg
    }

    /// Models a host↔device transfer of `bytes` over PCIe and returns the
    /// simulated transfer time in seconds. Batching many small tasks into one
    /// transfer amortizes the fixed per-transfer overhead — the reason the
    /// aggregator stage batches its input (§4.1).
    pub fn transfer(&self, bytes: u64) -> f64 {
        const FIXED_OVERHEAD_SECONDS: f64 = 10.0e-6; // driver + DMA setup
        let seconds = FIXED_OVERHEAD_SECONDS + bytes as f64 / self.config.transfer_bandwidth;
        let mut stats = self.stats.lock();
        stats.bytes_transferred += bytes;
        stats.transfer_seconds += seconds;
        stats.busy_seconds += seconds;
        seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Device {
        Device::new(DeviceConfig::tiny_test_device())
    }

    #[test]
    fn launch_runs_every_block_and_counts_cycles() {
        let device = tiny();
        let launch = LaunchConfig::new(8, 16);
        let mut visited = Vec::new();
        let stats = device.launch(&launch, |block| {
            visited.push(block.block_idx());
            block.charge_alu(10);
        });
        assert_eq!(visited.len(), 8);
        assert_eq!(stats.blocks_launched, 8);
        assert!(stats.cycles > 0);
        assert!(stats.time_seconds > 0.0);
        assert_eq!(device.stats().launches, 1);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let device = tiny(); // 4 KiB shared per SM
        let small = LaunchConfig::new(4, 16).with_shared_mem(512);
        let large = LaunchConfig::new(4, 16).with_shared_mem(4096);
        assert!(device.blocks_per_sm(&small) > device.blocks_per_sm(&large));
        assert_eq!(device.blocks_per_sm(&large), 1);
    }

    #[test]
    fn occupancy_limited_by_threads() {
        let device = tiny(); // 64 threads per SM max
        let launch = LaunchConfig::new(4, 64);
        assert_eq!(device.blocks_per_sm(&launch), 1);
        let launch = LaunchConfig::new(4, 16);
        assert_eq!(device.blocks_per_sm(&launch), 4);
        assert!(device.occupancy(&launch) <= 1.0);
    }

    #[test]
    fn more_sms_finish_sooner() {
        let mut fast_cfg = DeviceConfig::tiny_test_device();
        fast_cfg.multiprocessors = 8;
        let fast = Device::new(fast_cfg);
        let slow = tiny(); // 2 SMs
        let launch = LaunchConfig::new(32, 16);
        let work = |block: &mut BlockContext| block.charge_alu(1_000);
        let t_fast = fast.launch(&launch, work).time_seconds;
        let t_slow = slow.launch(&launch, work).time_seconds;
        assert!(t_fast < t_slow);
    }

    #[test]
    fn higher_occupancy_hides_memory_latency() {
        let device = Device::new(DeviceConfig::gtx580());
        // Same total traffic, but the small-block launch leaves only one warp
        // resident per SM (forced via shared memory), so stalls are exposed.
        let exposed = LaunchConfig::new(16, 32).with_shared_mem(48 * 1024);
        let hidden = LaunchConfig::new(16, 32).with_shared_mem(1024);
        let work = |block: &mut BlockContext| {
            block.global_access(16, true);
            block.charge_alu(100);
        };
        let t_exposed = device.launch(&exposed, work).cycles;
        let t_hidden = device.launch(&hidden, work).cycles;
        assert!(t_hidden < t_exposed);
    }

    #[test]
    fn slowdown_scales_time_not_cycles() {
        let launch = LaunchConfig::new(8, 32);
        let work = |block: &mut BlockContext| block.charge_alu(500);
        let normal = Device::new(DeviceConfig::gtx580());
        let shared = Device::new(DeviceConfig::gtx580().slowed_down(4.0));
        let a = normal.launch(&launch, work);
        let b = shared.launch(&launch, work);
        assert_eq!(a.cycles, b.cycles);
        assert!(b.time_seconds > 3.9 * a.time_seconds);
    }

    #[test]
    fn transfers_accumulate_and_batching_amortizes_overhead() {
        let device = tiny();
        let many_small: f64 = (0..100).map(|_| device.transfer(1_000)).sum();
        let one_big = device.transfer(100_000);
        assert!(one_big < many_small);
        let stats = device.stats();
        assert_eq!(stats.bytes_transferred, 200_000);
        assert!(stats.transfer_seconds > 0.0);
    }

    #[test]
    fn deterministic_launch_cost() {
        let device = Device::new(DeviceConfig::gtx580());
        let launch = LaunchConfig::new(64, 64).with_shared_mem(2048);
        let work = |block: &mut BlockContext| {
            block.charge_alu(123);
            block.shared_access_uniform(7);
            block.global_access(8, true);
            block.sync_threads();
        };
        let a = device.launch(&launch, work);
        let b = device.launch(&launch, work);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.bank_conflicts, b.bank_conflicts);
    }
}
