//! A deterministic SIMT GPU device simulator.
//!
//! The paper implements PixelBox with NVIDIA CUDA 4.0 on a GeForce GTX 580
//! and two Tesla M2050 cards. No GPU hardware is available to this
//! reproduction, so this crate provides the substitute documented in
//! DESIGN.md: a *functional + cost-model* simulator of the CUDA execution
//! model. Kernels written against it
//!
//! 1. compute real results (the functional half runs on the host CPU), and
//! 2. are charged cycles by a cost model that captures the effects the
//!    paper's evaluation depends on: SIMD lock-step execution and branch
//!    divergence within 32-lane warps, shared-memory bank conflicts,
//!    global-memory coalescing and latency, `__syncthreads()` barriers,
//!    occupancy limits (threads/blocks/shared memory per multiprocessor) and
//!    PCIe transfer cost for host↔device batches.
//!
//! The model is intentionally simple and fully deterministic: identical
//! launches produce identical cycle counts, so benchmark comparisons (Figures
//! 8–10 of the paper) are reproducible bit-for-bit.
//!
//! # Writing a kernel
//!
//! A kernel is a closure invoked once per *thread block*; inside it, code
//! iterates over the block's threads explicitly (the functional half) and
//! reports what the warp executed to the [`BlockContext`] (the cost half):
//!
//! ```
//! use sccg_gpu_sim::{Device, DeviceConfig, LaunchConfig};
//!
//! let device = Device::new(DeviceConfig::gtx580());
//! let launch = LaunchConfig::new(4, 64).with_shared_mem(1024);
//! let stats = device.launch(&launch, |block| {
//!     // One pass over the block's threads: functional work + cost.
//!     let mut sum = 0u64;
//!     for tid in 0..block.threads() {
//!         sum += tid as u64;
//!     }
//!     block.charge_alu(1);            // one fused op per lane
//!     block.sync_threads();
//!     assert!(sum > 0);
//! });
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.blocks_launched, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod device;
pub mod stats;

pub use config::{DeviceConfig, LaunchConfig};
pub use context::BlockContext;
pub use device::Device;
pub use stats::{DeviceStats, LaunchStats};
