//! Device and launch configuration.

/// Static description of a simulated GPU device.
///
/// The two presets correspond to the cards used in the paper's experiments
/// (§5.1): a GeForce GTX 580 in the Dell T1500 workstation and a Tesla M2050
/// in the Amazon EC2 instance. Numbers are the published specifications of
/// those cards; the cost model only depends on their *relative* magnitudes.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors (SMs).
    pub multiprocessors: u32,
    /// SIMD lanes per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Number of shared-memory banks.
    pub shared_mem_banks: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Latency of a global-memory transaction, in cycles.
    pub global_latency_cycles: u64,
    /// Latency of a conflict-free shared-memory access, in cycles.
    pub shared_latency_cycles: u64,
    /// Host↔device transfer bandwidth in bytes per second (PCIe).
    pub transfer_bandwidth: f64,
    /// Fixed kernel-launch overhead in cycles (driver + dispatch).
    pub launch_overhead_cycles: u64,
    /// Number of resident warps per SM needed to fully hide memory latency.
    pub warps_to_hide_latency: u32,
    /// Throughput de-rating factor applied to the whole device; `1.0` models
    /// an exclusively-owned card, larger values model a shared or otherwise
    /// slowed-down card (used by the paper's Config-III experiment, §5.6).
    pub slowdown: f64,
}

impl DeviceConfig {
    /// NVIDIA GeForce GTX 580: 16 SMs, 1.54 GHz shader clock, 48 KiB shared
    /// memory per SM, 32 banks.
    pub fn gtx580() -> Self {
        DeviceConfig {
            name: "GeForce GTX 580 (simulated)".to_string(),
            multiprocessors: 16,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_banks: 32,
            clock_hz: 1.544e9,
            global_latency_cycles: 400,
            shared_latency_cycles: 2,
            transfer_bandwidth: 6.0e9,
            launch_overhead_cycles: 8_000,
            warps_to_hide_latency: 24,
            slowdown: 1.0,
        }
    }

    /// NVIDIA Tesla M2050: 14 SMs, 1.15 GHz shader clock.
    pub fn tesla_m2050() -> Self {
        DeviceConfig {
            name: "Tesla M2050 (simulated)".to_string(),
            multiprocessors: 14,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_banks: 32,
            clock_hz: 1.15e9,
            global_latency_cycles: 420,
            shared_latency_cycles: 2,
            transfer_bandwidth: 5.5e9,
            launch_overhead_cycles: 8_000,
            warps_to_hide_latency: 24,
            slowdown: 1.0,
        }
    }

    /// A deliberately small device useful in unit tests (2 SMs, tiny shared
    /// memory) so occupancy limits are easy to hit.
    pub fn tiny_test_device() -> Self {
        DeviceConfig {
            name: "tiny test device".to_string(),
            multiprocessors: 2,
            warp_size: 4,
            max_threads_per_sm: 64,
            max_blocks_per_sm: 4,
            shared_mem_per_sm: 4 * 1024,
            shared_mem_banks: 4,
            clock_hz: 1.0e9,
            global_latency_cycles: 100,
            shared_latency_cycles: 2,
            transfer_bandwidth: 1.0e9,
            launch_overhead_cycles: 100,
            warps_to_hide_latency: 4,
            slowdown: 1.0,
        }
    }

    /// Returns a copy of this configuration slowed down by `factor` (≥ 1.0),
    /// emulating a card shared with other applications (§5.6, Config-III).
    pub fn slowed_down(mut self, factor: f64) -> Self {
        self.slowdown = factor.max(1.0);
        self.name = format!("{} (slowdown x{:.1})", self.name, self.slowdown);
        self
    }

    /// Peak number of resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }
}

/// Geometry of a kernel launch: grid size, block size and per-block shared
/// memory, mirroring CUDA's `<<<grid, block, shmem>>>` syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_dim: u32,
    /// Number of threads per block.
    pub block_dim: u32,
    /// Dynamic shared memory per block, in bytes.
    pub shared_mem_bytes: u32,
}

impl LaunchConfig {
    /// Creates a launch configuration with no dynamic shared memory.
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim: grid_dim.max(1),
            block_dim: block_dim.max(1),
            shared_mem_bytes: 0,
        }
    }

    /// Sets the dynamic shared-memory requirement per block.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Number of warps per block (rounded up).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.block_dim.div_ceil(warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        for cfg in [
            DeviceConfig::gtx580(),
            DeviceConfig::tesla_m2050(),
            DeviceConfig::tiny_test_device(),
        ] {
            assert!(cfg.multiprocessors > 0);
            assert!(cfg.warp_size > 0);
            assert!(cfg.clock_hz > 0.0);
            assert!(cfg.max_warps_per_sm() >= 1);
            assert_eq!(cfg.slowdown, 1.0);
        }
        // The GTX 580 has more SMs and a higher clock than the M2050.
        let gtx = DeviceConfig::gtx580();
        let tesla = DeviceConfig::tesla_m2050();
        assert!(gtx.multiprocessors > tesla.multiprocessors);
        assert!(gtx.clock_hz > tesla.clock_hz);
    }

    #[test]
    fn slowdown_is_clamped_and_named() {
        let cfg = DeviceConfig::gtx580().slowed_down(0.1);
        assert_eq!(cfg.slowdown, 1.0);
        let cfg = DeviceConfig::gtx580().slowed_down(3.0);
        assert_eq!(cfg.slowdown, 3.0);
        assert!(cfg.name.contains("slowdown"));
    }

    #[test]
    fn launch_config_clamps_zero_dimensions() {
        let launch = LaunchConfig::new(0, 0);
        assert_eq!(launch.grid_dim, 1);
        assert_eq!(launch.block_dim, 1);
        assert_eq!(launch.warps_per_block(32), 1);
        let launch = LaunchConfig::new(10, 96).with_shared_mem(512);
        assert_eq!(launch.warps_per_block(32), 3);
        assert_eq!(launch.shared_mem_bytes, 512);
    }
}
