//! Property-based tests for the geometry substrate.
//!
//! The central invariant of the whole reproduction is that the shoelace area
//! of a rectilinear polygon equals the number of pixels whose centres lie
//! inside it (paper §3.4, "Algorithm accuracy"). These tests exercise that
//! invariant, plus MBR/rect algebra, over randomly generated staircase
//! polygons.

use proptest::prelude::*;
use sccg_geometry::{raster, Point, Rect, RectilinearPolygon};

/// Generates a random rectilinear "staircase" polygon: a monotone staircase
/// descending from the top-left to the bottom-right, closed along the axes.
/// Every such polygon is simple, rectilinear and has positive area.
fn staircase_polygon() -> impl Strategy<Value = RectilinearPolygon> {
    // Random strictly increasing x and strictly decreasing y steps.
    (2usize..8).prop_flat_map(|steps| {
        (
            prop::collection::vec(1i32..6, steps),
            prop::collection::vec(1i32..6, steps),
            0i32..50,
            0i32..50,
        )
            .prop_map(|(dxs, dys, ox, oy)| {
                // Build the staircase: start at (0, total_height), step right
                // and down, then close along x = total_width and y = 0... in
                // fact easier: boundary from (0,0) up to (0,H), staircase to
                // (W,0), back to (0,0).
                let total_h: i32 = dys.iter().sum();
                let mut vertices = Vec::new();
                vertices.push(Point::new(ox, oy));
                vertices.push(Point::new(ox, oy + total_h));
                let mut x = ox;
                let mut y = oy + total_h;
                for (dx, dy) in dxs.iter().zip(dys.iter()) {
                    x += dx;
                    vertices.push(Point::new(x, y));
                    y -= dy;
                    vertices.push(Point::new(x, y));
                }
                // y is now back at oy; the final edge returns to the origin.
                RectilinearPolygon::new(vertices).expect("staircase is valid")
            })
    })
}

fn small_rect() -> impl Strategy<Value = Rect> {
    (0i32..40, 0i32..40, 1i32..20, 1i32..20).prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

/// Generates a random rectilinear "skyline" polygon: a flat base along
/// `y = oy` with columns of varying heights above it. Unlike the staircase,
/// rows of a skyline intersect the polygon in *many* x-intervals, which is
/// exactly what stresses the edge-table interval decomposition and the
/// interval-merge arithmetic of the raster fast path.
fn skyline_polygon() -> impl Strategy<Value = RectilinearPolygon> {
    (2usize..9).prop_flat_map(|columns| {
        (
            prop::collection::vec(1i32..5, columns),
            prop::collection::vec(1i32..9, columns),
            -20i32..20,
            -20i32..20,
        )
            .prop_map(|(widths, heights, ox, oy)| {
                let mut vertices = vec![Point::new(ox, oy)];
                let mut x = ox;
                for (w, h) in widths.iter().zip(heights.iter()) {
                    vertices.push(Point::new(x, oy + h));
                    x += w;
                    vertices.push(Point::new(x, oy + h));
                }
                vertices.push(Point::new(x, oy));
                // Equal adjacent heights leave collinear vertices behind;
                // canonicalize removes them.
                RectilinearPolygon::canonicalize(vertices).expect("skyline is valid")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shoelace_area_equals_pixel_count(poly in staircase_polygon()) {
        prop_assert_eq!(poly.area(), raster::polygon_area(&poly));
    }

    #[test]
    fn scaling_scales_area_quadratically(poly in staircase_polygon(), k in 1i32..5) {
        let scaled = poly.scale(k).unwrap();
        prop_assert_eq!(scaled.area(), poly.area() * i64::from(k) * i64::from(k));
        prop_assert_eq!(scaled.vertex_count(), poly.vertex_count());
    }

    #[test]
    fn translation_preserves_area_and_shape(poly in staircase_polygon(), dx in -100i32..100, dy in -100i32..100) {
        let moved = poly.translate(dx, dy).unwrap();
        prop_assert_eq!(moved.area(), poly.area());
        prop_assert_eq!(moved.perimeter(), poly.perimeter());
    }

    #[test]
    fn mbr_contains_all_interior_pixels(poly in staircase_polygon()) {
        let mbr = poly.mbr();
        let grown = Rect::new(mbr.min_x - 2, mbr.min_y - 2, mbr.max_x + 2, mbr.max_y + 2);
        for (x, y) in grown.pixels() {
            if poly.contains_pixel(x, y) {
                prop_assert!(mbr.contains_pixel(x, y));
            }
        }
    }

    #[test]
    fn inclusion_exclusion_for_random_pairs(p in staircase_polygon(), q in staircase_polygon()) {
        let (inter, union) = raster::intersection_union_area(&p, &q);
        prop_assert_eq!(union, p.area() + q.area() - inter);
        prop_assert!(inter <= p.area().min(q.area()));
        prop_assert!(union >= p.area().max(q.area()));
    }

    #[test]
    fn rect_intersection_commutes_and_bounds(a in small_rect(), b in small_rect()) {
        prop_assert_eq!(a.intersection(&b).pixel_count(), b.intersection(&a).pixel_count());
        let i = a.intersection(&b);
        if !i.is_empty() {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
    }

    #[test]
    fn rect_subdivision_partitions_pixels(r in small_rect(), cols in 1u32..5, rows in 1u32..5) {
        let mut total = 0i64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..cols * rows {
            let sub = r.subdivide(cols, rows, idx);
            prop_assert!(r.contains_rect(&sub));
            for p in sub.pixels() {
                prop_assert!(seen.insert(p));
            }
            total += sub.pixel_count();
        }
        prop_assert_eq!(total, r.pixel_count());
    }

    #[test]
    fn edge_table_rows_match_contains_pixel(poly in skyline_polygon()) {
        let table = poly.edge_table();
        let mbr = poly.mbr();
        for y in mbr.min_y - 1..mbr.max_y + 1 {
            let xs = table.row_crossings(y);
            prop_assert_eq!(xs.len() % 2, 0);
            for x in mbr.min_x - 1..mbr.max_x + 1 {
                let in_intervals = table.row_intervals(y).any(|(a, b)| a <= x && x < b);
                prop_assert_eq!(in_intervals, poly.contains_pixel(x, y));
            }
        }
    }

    #[test]
    fn interval_raster_matches_brute_oracle(p in skyline_polygon(), q in skyline_polygon(), window in small_rect()) {
        prop_assert_eq!(raster::polygon_area(&p), raster::brute::polygon_area(&p));
        prop_assert_eq!(
            raster::intersection_union_area(&p, &q),
            raster::brute::intersection_union_area(&p, &q)
        );
        prop_assert_eq!(
            raster::intersection_area(&p, &q),
            raster::brute::intersection_area(&p, &q)
        );
        prop_assert_eq!(
            raster::pixels_inside(&p, &window),
            raster::brute::pixels_inside(&p, &window)
        );
    }

    #[test]
    fn interval_raster_matches_brute_on_staircases(p in staircase_polygon(), q in skyline_polygon()) {
        prop_assert_eq!(
            raster::intersection_union_area(&p, &q),
            raster::brute::intersection_union_area(&p, &q)
        );
    }

    #[test]
    fn clone_shares_the_edge_table_cache(poly in skyline_polygon()) {
        // A clone taken before the cache exists builds its own table...
        let before_clone = poly.clone();
        prop_assert!(before_clone.edge_table().slab_count() >= 1);
        prop_assert!(!std::ptr::eq(before_clone.edge_table(), poly.edge_table()));
        // ...while a clone taken after shares the very same allocation.
        let after_clone = poly.clone();
        prop_assert!(std::ptr::eq(poly.edge_table(), after_clone.edge_table()));
        prop_assert_eq!(raster::polygon_area(&after_clone), raster::polygon_area(&poly));
        prop_assert_eq!(&after_clone, &poly);
    }

    #[test]
    fn text_round_trip(poly in staircase_polygon(), id in 0u64..1_000_000) {
        use sccg_geometry::text::{parse_polygon_file, write_polygon_file, PolygonRecord};
        let rec = PolygonRecord { id, polygon: poly };
        let text = write_polygon_file(std::slice::from_ref(&rec));
        let parsed = parse_polygon_file(&text).unwrap();
        prop_assert_eq!(parsed, vec![rec]);
    }
}
