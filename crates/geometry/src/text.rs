//! Line-oriented text format for segmented polygon files.
//!
//! Segmentation pipelines exchange results as plain-text polygon files, one
//! polygon per line (paper §2.1, §4.1: "The parser loads polygon files and
//! transforms the format of polygons from text to binaries"). The format used
//! here is:
//!
//! ```text
//! <id> <vertex-count> <x0> <y0> <x1> <y1> ... <x(n-1)> <y(n-1)>
//! ```
//!
//! with whitespace-separated decimal integers, `#`-prefixed comment lines and
//! blank lines ignored. The parser is deliberately written as a simple
//! character-level scanner (a small finite state machine), because that is
//! the workload the paper's parser stage and its GPU port execute (§4.2).

use crate::error::GeometryError;
use crate::point::Point;
use crate::polygon::RectilinearPolygon;
use crate::Result;
use std::fmt::Write as _;

/// A polygon record as stored in a polygon file: a stable identifier plus the
/// boundary geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolygonRecord {
    /// Identifier of the segmented object within its tile.
    pub id: u64,
    /// Boundary polygon.
    pub polygon: RectilinearPolygon,
}

/// Serializes a set of polygon records into the text format.
pub fn write_polygon_file(records: &[PolygonRecord]) -> String {
    let mut out = String::new();
    for rec in records {
        let _ = write!(out, "{} {}", rec.id, rec.polygon.vertex_count());
        for v in rec.polygon.vertices() {
            let _ = write!(out, " {} {}", v.x, v.y);
        }
        out.push('\n');
    }
    out
}

/// Parses a polygon file, returning the records in file order.
///
/// # Errors
///
/// Returns [`GeometryError::Parse`] with a 1-based line number for malformed
/// records, and propagates polygon validation errors (wrapped as parse
/// errors) for geometrically invalid boundaries.
pub fn parse_polygon_file(input: &str) -> Result<Vec<PolygonRecord>> {
    let mut records = Vec::new();
    for (line_idx, line) in input.lines().enumerate() {
        let line_no = line_idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        records.push(parse_record(trimmed, line_no)?);
    }
    Ok(records)
}

/// Parses a single record line (without trailing newline).
pub fn parse_record(line: &str, line_no: usize) -> Result<PolygonRecord> {
    let mut tokens = Tokenizer::new(line);
    let id = tokens.next_u64().ok_or_else(|| GeometryError::Parse {
        line: line_no,
        message: "missing polygon id".into(),
    })?;
    let count = tokens.next_u64().ok_or_else(|| GeometryError::Parse {
        line: line_no,
        message: "missing vertex count".into(),
    })? as usize;
    let mut vertices = Vec::with_capacity(count);
    for i in 0..count {
        let x = tokens.next_i32().ok_or_else(|| GeometryError::Parse {
            line: line_no,
            message: format!("missing x coordinate of vertex {i}"),
        })?;
        let y = tokens.next_i32().ok_or_else(|| GeometryError::Parse {
            line: line_no,
            message: format!("missing y coordinate of vertex {i}"),
        })?;
        vertices.push(Point::new(x, y));
    }
    if tokens.next_token().is_some() {
        return Err(GeometryError::Parse {
            line: line_no,
            message: "trailing tokens after final vertex".into(),
        });
    }
    let polygon = RectilinearPolygon::new(vertices).map_err(|e| GeometryError::Parse {
        line: line_no,
        message: format!("invalid polygon: {e}"),
    })?;
    Ok(PolygonRecord { id, polygon })
}

/// A minimal whitespace tokenizer over a single record line, written as an
/// explicit scanner so the cost profile resembles the text parsing stage the
/// paper offloads between CPU and GPU.
struct Tokenizer<'a> {
    rest: &'a str,
}

impl<'a> Tokenizer<'a> {
    fn new(line: &'a str) -> Self {
        Tokenizer { rest: line }
    }

    fn next_token(&mut self) -> Option<&'a str> {
        let start = self.rest.find(|c: char| !c.is_ascii_whitespace())?;
        let rest = &self.rest[start..];
        let end = rest
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(rest.len());
        let (tok, remainder) = rest.split_at(end);
        self.rest = remainder;
        Some(tok)
    }

    fn next_u64(&mut self) -> Option<u64> {
        self.next_token()?.parse().ok()
    }

    fn next_i32(&mut self) -> Option<i32> {
        self.next_token()?.parse().ok()
    }
}

/// Summary statistics of a parsed polygon file, used for workload reporting
/// and for validating that generated data sets match the paper's published
/// characteristics (§5.1: average polygon size ≈ 150 pixels, σ ≈ 100).
#[derive(Debug, Clone, PartialEq)]
pub struct FileStats {
    /// Number of polygons in the file.
    pub polygon_count: usize,
    /// Total number of vertices across all polygons.
    pub vertex_count: usize,
    /// Mean polygon area in pixels.
    pub mean_area: f64,
    /// Standard deviation of polygon area in pixels.
    pub stddev_area: f64,
}

/// Computes summary statistics over a slice of polygon records.
pub fn file_stats(records: &[PolygonRecord]) -> FileStats {
    let n = records.len();
    let vertex_count = records.iter().map(|r| r.polygon.vertex_count()).sum();
    if n == 0 {
        return FileStats {
            polygon_count: 0,
            vertex_count,
            mean_area: 0.0,
            stddev_area: 0.0,
        };
    }
    let areas: Vec<f64> = records.iter().map(|r| r.polygon.area() as f64).collect();
    let mean = areas.iter().sum::<f64>() / n as f64;
    let var = areas.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / n as f64;
    FileStats {
        polygon_count: n,
        vertex_count,
        mean_area: mean,
        stddev_area: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn sample_records() -> Vec<PolygonRecord> {
        vec![
            PolygonRecord {
                id: 1,
                polygon: RectilinearPolygon::rectangle(Rect::new(0, 0, 4, 3)).unwrap(),
            },
            PolygonRecord {
                id: 2,
                polygon: RectilinearPolygon::new(vec![
                    Point::new(10, 10),
                    Point::new(14, 10),
                    Point::new(14, 12),
                    Point::new(12, 12),
                    Point::new(12, 14),
                    Point::new(10, 14),
                ])
                .unwrap(),
            },
        ]
    }

    #[test]
    fn round_trip() {
        let records = sample_records();
        let text = write_polygon_file(&records);
        let parsed = parse_polygon_file(&text).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n1 4 0 0 2 0 2 2 0 2\n   \n# trailing comment\n";
        let parsed = parse_polygon_file(text).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].id, 1);
        assert_eq!(parsed[0].polygon.area(), 4);
    }

    #[test]
    fn negative_coordinates_round_trip() {
        let rec = PolygonRecord {
            id: 9,
            polygon: RectilinearPolygon::rectangle(Rect::new(-5, -7, -1, -2)).unwrap(),
        };
        let text = write_polygon_file(std::slice::from_ref(&rec));
        let parsed = parse_polygon_file(&text).unwrap();
        assert_eq!(parsed, vec![rec]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_polygon_file("1 4 0 0 2 0 2 2 0 2\n2 4 0 0 2 0\n").unwrap_err();
        match err {
            GeometryError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn trailing_tokens_rejected() {
        let err = parse_polygon_file("1 4 0 0 2 0 2 2 0 2 99\n").unwrap_err();
        assert!(matches!(err, GeometryError::Parse { line: 1, .. }));
    }

    #[test]
    fn invalid_geometry_is_a_parse_error() {
        // Diagonal edge.
        let err = parse_polygon_file("1 4 0 0 2 1 2 2 0 2\n").unwrap_err();
        assert!(matches!(err, GeometryError::Parse { line: 1, .. }));
    }

    #[test]
    fn missing_id_or_count() {
        assert!(parse_polygon_file("\n#\nx 4 0 0 2 0 2 2 0 2\n").is_err());
        assert!(parse_polygon_file("1\n").is_err());
    }

    #[test]
    fn stats_are_computed() {
        let records = sample_records();
        let stats = file_stats(&records);
        assert_eq!(stats.polygon_count, 2);
        assert_eq!(stats.vertex_count, 10);
        let a0 = records[0].polygon.area() as f64;
        let a1 = records[1].polygon.area() as f64;
        let mean = (a0 + a1) / 2.0;
        assert!((stats.mean_area - mean).abs() < 1e-9);
        // Both sample polygons happen to cover 12 pixels, so the spread is 0.
        assert_eq!(a0, a1);
        assert_eq!(stats.stddev_area, 0.0);
        let empty = file_stats(&[]);
        assert_eq!(empty.polygon_count, 0);
        assert_eq!(empty.mean_area, 0.0);
    }
}
