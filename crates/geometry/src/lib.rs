//! Rectilinear polygon geometry for pathology image cross-comparison.
//!
//! Polygons segmented from whole-slide pathology images are *rectilinear*:
//! every vertex has integer coordinates and every edge is horizontal or
//! vertical, because segmentation boundaries follow the pixel grid of the
//! underlying raster image (paper §3.1, Figure 3).
//!
//! This crate provides the shared geometric vocabulary used by every other
//! crate in the workspace:
//!
//! * [`Point`] — an integer pixel-grid coordinate.
//! * [`Rect`] — an axis-aligned rectangle on the grid (used for MBRs and
//!   sampling boxes).
//! * [`RectilinearPolygon`] — a validated, closed rectilinear polygon with
//!   exact integer area, ray-cast containment tests and edge iteration.
//! * [`edge_table`] — the scanline [`EdgeTable`]: a per-polygon row-interval
//!   decomposition (built once, cached on the polygon) that turns pixel
//!   counting into O(crossing edges) interval arithmetic per row.
//! * [`raster`] — pixel rasterization oracles: interval-scanline fast paths
//!   plus the retained brute-force per-pixel loops ([`raster::brute`]) they
//!   are verified against.
//! * [`text`] — the line-oriented text format in which segmentation results
//!   are exchanged (one polygon per line), mirroring the polygon files the
//!   paper's parser stage consumes.
//!
//! # Pixel semantics
//!
//! A pixel `(i, j)` denotes the half-open unit cell `[i, i+1) × [j, j+1)`.
//! Its representative sample location is the cell centre `(i + ½, j + ½)`.
//! Because polygon vertices are integers, a pixel centre never lies exactly
//! on a polygon edge, so containment tests have no degenerate cases and the
//! pixel-counting area of a polygon equals its shoelace area exactly
//! (paper §3.4, "Algorithm accuracy").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod edge_table;
pub mod error;
pub mod point;
pub mod polygon;
pub mod raster;
pub mod rect;
pub mod text;

pub use edge_table::EdgeTable;
pub use error::GeometryError;
pub use point::Point;
pub use polygon::{Edge, EdgeKind, RectilinearPolygon};
pub use rect::Rect;

/// Result alias for geometry operations.
pub type Result<T> = std::result::Result<T, GeometryError>;
