//! Error type for geometric validation and parsing.

use std::fmt;

/// Errors produced while constructing, validating or parsing geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A polygon needs at least four vertices to enclose any area.
    TooFewVertices {
        /// Number of vertices supplied.
        got: usize,
    },
    /// Two consecutive vertices are identical, producing a zero-length edge.
    ZeroLengthEdge {
        /// Index of the first vertex of the offending edge.
        index: usize,
    },
    /// An edge is neither horizontal nor vertical.
    NonRectilinearEdge {
        /// Index of the first vertex of the offending edge.
        index: usize,
    },
    /// Consecutive edges run along the same axis (the vertex between them is
    /// collinear and redundant), which the canonical form forbids.
    CollinearVertex {
        /// Index of the redundant vertex.
        index: usize,
    },
    /// The polygon's signed area is zero (degenerate boundary).
    ZeroArea,
    /// A text record could not be parsed.
    Parse {
        /// 1-based line number of the offending record, when known.
        line: usize,
        /// Human readable description of what went wrong.
        message: String,
    },
    /// A coordinate overflowed the supported range during an operation
    /// (for example when scaling a polygon).
    CoordinateOverflow,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::TooFewVertices { got } => {
                write!(f, "polygon requires at least 4 vertices, got {got}")
            }
            GeometryError::ZeroLengthEdge { index } => {
                write!(f, "zero-length edge starting at vertex {index}")
            }
            GeometryError::NonRectilinearEdge { index } => {
                write!(f, "edge starting at vertex {index} is not axis-aligned")
            }
            GeometryError::CollinearVertex { index } => {
                write!(f, "vertex {index} is collinear with its neighbours")
            }
            GeometryError::ZeroArea => write!(f, "polygon encloses zero area"),
            GeometryError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GeometryError::CoordinateOverflow => write!(f, "coordinate overflow"),
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GeometryError, &str)> = vec![
            (GeometryError::TooFewVertices { got: 2 }, "at least 4"),
            (GeometryError::ZeroLengthEdge { index: 3 }, "zero-length"),
            (
                GeometryError::NonRectilinearEdge { index: 1 },
                "axis-aligned",
            ),
            (GeometryError::CollinearVertex { index: 5 }, "collinear"),
            (GeometryError::ZeroArea, "zero area"),
            (
                GeometryError::Parse {
                    line: 7,
                    message: "bad token".into(),
                },
                "line 7",
            ),
            (GeometryError::CoordinateOverflow, "overflow"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg} should contain {needle}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<GeometryError>();
    }
}
