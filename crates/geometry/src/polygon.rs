//! Rectilinear polygons with exact integer area and containment tests.

use crate::edge_table::EdgeTable;
use crate::error::GeometryError;
use crate::point::Point;
use crate::rect::Rect;
use crate::Result;
use std::sync::{Arc, OnceLock};

/// Orientation of a rectilinear edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// The edge runs parallel to the x axis.
    Horizontal,
    /// The edge runs parallel to the y axis.
    Vertical,
}

/// A single directed edge of a rectilinear polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Start vertex.
    pub a: Point,
    /// End vertex.
    pub b: Point,
}

impl Edge {
    /// Orientation of the edge. Zero-length edges are rejected at polygon
    /// construction time, so every edge is either horizontal or vertical.
    #[inline]
    pub fn kind(&self) -> EdgeKind {
        if self.a.y == self.b.y {
            EdgeKind::Horizontal
        } else {
            EdgeKind::Vertical
        }
    }

    /// Length of the edge in pixels.
    #[inline]
    pub fn length(&self) -> i64 {
        (i64::from(self.b.x) - i64::from(self.a.x)).abs()
            + (i64::from(self.b.y) - i64::from(self.a.y)).abs()
    }

    /// Lower coordinate bound along the edge's axis of variation.
    #[inline]
    fn lo(&self) -> i32 {
        match self.kind() {
            EdgeKind::Horizontal => self.a.x.min(self.b.x),
            EdgeKind::Vertical => self.a.y.min(self.b.y),
        }
    }

    /// Upper coordinate bound along the edge's axis of variation.
    #[inline]
    fn hi(&self) -> i32 {
        match self.kind() {
            EdgeKind::Horizontal => self.a.x.max(self.b.x),
            EdgeKind::Vertical => self.a.y.max(self.b.y),
        }
    }

    /// The fixed coordinate of the edge (y for horizontal edges, x for
    /// vertical edges).
    #[inline]
    fn fixed(&self) -> i32 {
        match self.kind() {
            EdgeKind::Horizontal => self.a.y,
            EdgeKind::Vertical => self.a.x,
        }
    }

    /// Tests whether two axis-aligned edges *properly cross*: their interiors
    /// intersect at exactly one point. Perpendicular edges cross when each
    /// edge's fixed coordinate lies strictly between the other's endpoints.
    /// Parallel (possibly overlapping) edges never properly cross — the paper
    /// treats boundary-overlapping sampling boxes as either inside or outside
    /// (§3.2), so an overlap must not force a `hover` classification here.
    pub fn properly_crosses(&self, other: &Edge) -> bool {
        match (self.kind(), other.kind()) {
            (EdgeKind::Horizontal, EdgeKind::Vertical)
            | (EdgeKind::Vertical, EdgeKind::Horizontal) => {
                let (h, v) = if self.kind() == EdgeKind::Horizontal {
                    (self, other)
                } else {
                    (other, self)
                };
                v.fixed() > h.lo() && v.fixed() < h.hi() && h.fixed() > v.lo() && h.fixed() < v.hi()
            }
            _ => false,
        }
    }
}

/// A closed rectilinear polygon on the pixel grid.
///
/// The boundary is the closed chain `v0 → v1 → … → v(n-1) → v0`. A valid
/// polygon has at least four vertices, axis-aligned non-degenerate edges,
/// alternating edge orientations (no collinear vertices) and non-zero area.
/// Self-intersection is not checked: segmentation outputs are simple by
/// construction, and the algorithms under study only rely on the even–odd
/// containment rule, which remains well defined.
#[derive(Debug)]
pub struct RectilinearPolygon {
    vertices: Vec<Point>,
    mbr: Rect,
    /// Lazily built scanline [`EdgeTable`] (see [`RectilinearPolygon::edge_table`]).
    /// Shared through an `Arc` so cloning a polygon keeps the cache warm
    /// without duplicating it.
    edge_table: OnceLock<Arc<EdgeTable>>,
}

impl Clone for RectilinearPolygon {
    fn clone(&self) -> Self {
        let edge_table = OnceLock::new();
        if let Some(table) = self.edge_table.get() {
            let _ = edge_table.set(Arc::clone(table));
        }
        RectilinearPolygon {
            vertices: self.vertices.clone(),
            mbr: self.mbr,
            edge_table,
        }
    }
}

impl PartialEq for RectilinearPolygon {
    fn eq(&self, other: &Self) -> bool {
        // The MBR and edge table are derived from the vertex chain; identity
        // is the chain itself.
        self.vertices == other.vertices
    }
}

impl Eq for RectilinearPolygon {}

impl RectilinearPolygon {
    /// Builds a polygon from a vertex chain, validating rectilinearity.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] when the chain has fewer than four
    /// vertices, contains a zero-length or diagonal edge, contains a
    /// collinear (redundant) vertex, or encloses zero area.
    pub fn new(vertices: Vec<Point>) -> Result<Self> {
        if vertices.len() < 4 {
            return Err(GeometryError::TooFewVertices {
                got: vertices.len(),
            });
        }
        let n = vertices.len();
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a == b {
                return Err(GeometryError::ZeroLengthEdge { index: i });
            }
            if a.x != b.x && a.y != b.y {
                return Err(GeometryError::NonRectilinearEdge { index: i });
            }
        }
        for i in 0..n {
            let prev = vertices[(i + n - 1) % n];
            let cur = vertices[i];
            let next = vertices[(i + 1) % n];
            let incoming_vertical = prev.x == cur.x;
            let outgoing_vertical = cur.x == next.x;
            if incoming_vertical == outgoing_vertical {
                return Err(GeometryError::CollinearVertex { index: i });
            }
        }
        let poly = RectilinearPolygon {
            mbr: Self::compute_mbr(&vertices),
            vertices,
            edge_table: OnceLock::new(),
        };
        if poly.area() == 0 {
            return Err(GeometryError::ZeroArea);
        }
        Ok(poly)
    }

    /// Builds a polygon from a vertex chain after removing consecutive
    /// duplicate and collinear vertices. Useful when ingesting generated or
    /// hand-written vertex lists that are not in canonical form.
    pub fn canonicalize(vertices: Vec<Point>) -> Result<Self> {
        let mut cleaned: Vec<Point> = Vec::with_capacity(vertices.len());
        for v in vertices {
            if cleaned.last() == Some(&v) {
                continue;
            }
            cleaned.push(v);
        }
        // Drop a duplicated closing vertex if present.
        if cleaned.len() > 1 && cleaned.first() == cleaned.last() {
            cleaned.pop();
        }
        // Remove collinear vertices iteratively until stable.
        loop {
            let n = cleaned.len();
            if n < 4 {
                break;
            }
            let mut removed = false;
            let mut out: Vec<Point> = Vec::with_capacity(n);
            for i in 0..n {
                let prev = cleaned[(i + n - 1) % n];
                let cur = cleaned[i];
                let next = cleaned[(i + 1) % n];
                let collinear =
                    (prev.x == cur.x && cur.x == next.x) || (prev.y == cur.y && cur.y == next.y);
                if collinear {
                    removed = true;
                } else {
                    out.push(cur);
                }
            }
            cleaned = out;
            if !removed {
                break;
            }
        }
        Self::new(cleaned)
    }

    /// Convenience constructor for an axis-aligned rectangle polygon.
    pub fn rectangle(rect: Rect) -> Result<Self> {
        Self::new(vec![
            Point::new(rect.min_x, rect.min_y),
            Point::new(rect.max_x, rect.min_y),
            Point::new(rect.max_x, rect.max_y),
            Point::new(rect.min_x, rect.max_y),
        ])
    }

    fn compute_mbr(vertices: &[Point]) -> Rect {
        let mut mbr = Rect::EMPTY;
        for v in vertices {
            mbr.min_x = mbr.min_x.min(v.x);
            mbr.min_y = mbr.min_y.min(v.y);
            mbr.max_x = mbr.max_x.max(v.x);
            mbr.max_y = mbr.max_y.max(v.y);
        }
        mbr
    }

    /// The polygon's vertices in boundary order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (equals the number of edges).
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// The minimum bounding rectangle. Because vertices are grid points and
    /// the boundary follows grid lines, every interior pixel lies inside this
    /// rectangle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// The polygon's scanline [`EdgeTable`], built on first use and cached
    /// (clones of the polygon share the cached table).
    ///
    /// The table decomposes every pixel row into its inside x-intervals in
    /// O(crossing edges) per row, which is what makes interval-arithmetic
    /// pixel counting ([`crate::raster`], PixelBox's pixelization fast path)
    /// output-sensitive instead of O(pixels × edges).
    ///
    /// # Concurrency
    ///
    /// The cache is a `OnceLock`, so under concurrent callers the table is
    /// built **at most once**: the first caller to win initialization builds
    /// it, every other concurrent caller blocks until that build finishes
    /// and then shares the same table (a racing thread's redundantly
    /// constructed value is dropped, never published). The flip side is
    /// *first-touch serialization*: a batch whose tables are all cold pays
    /// the builds one after another on whichever thread touches each polygon
    /// first. Batch code should prewarm cold tables in parallel
    /// (`sccg::pixelbox::build_edge_tables_batch`), using
    /// [`RectilinearPolygon::edge_table_if_built`] to skip resident ones.
    pub fn edge_table(&self) -> &EdgeTable {
        self.edge_table
            .get_or_init(|| Arc::new(EdgeTable::from_vertices(&self.vertices)))
    }

    /// The cached [`EdgeTable`] if one has already been built (by a prior
    /// [`RectilinearPolygon::edge_table`] call on this polygon, or on the
    /// polygon this one was cloned from), without building it. Lets batch
    /// prewarm passes skip resident tables.
    pub fn edge_table_if_built(&self) -> Option<&EdgeTable> {
        self.edge_table.get().map(Arc::as_ref)
    }

    /// Iterator over the polygon's directed boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Edge {
            a: self.vertices[i],
            b: self.vertices[(i + 1) % n],
        })
    }

    /// Twice the signed shoelace area. Positive for counter-clockwise
    /// boundaries in a y-up coordinate system.
    pub fn signed_area2(&self) -> i64 {
        let n = self.vertices.len();
        let mut acc: i64 = 0;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            acc += i64::from(a.x) * i64::from(b.y) - i64::from(b.x) * i64::from(a.y);
        }
        acc
    }

    /// Exact area in pixels. For a simple rectilinear polygon with integer
    /// vertices this equals the number of pixels whose centres lie inside the
    /// boundary (paper §3.4).
    #[inline]
    pub fn area(&self) -> i64 {
        // The shoelace sum of a rectilinear polygon is always even.
        self.signed_area2().abs() / 2
    }

    /// Total boundary length in pixels.
    pub fn perimeter(&self) -> i64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Tests whether pixel `(x, y)` — i.e. the cell centre `(x+½, y+½)` —
    /// lies inside the polygon, using the even–odd ray-casting rule with a ray
    /// cast towards `+x` (paper §3.1, Figure 4(b)).
    ///
    /// Only vertical edges can be crossed by a horizontal ray. A vertical edge
    /// at `x = ex` spanning `[ylo, yhi]` is crossed when `ex > x` (the edge is
    /// strictly to the right of the pixel centre `x + ½`, which for integers
    /// means `ex >= x + 1`) and `ylo <= y < yhi` (the centre's `y + ½` lies in
    /// the half-open vertical span).
    pub fn contains_pixel(&self, x: i32, y: i32) -> bool {
        if !self.mbr.contains_pixel(x, y) {
            return false;
        }
        let mut crossings = 0u32;
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if a.x != b.x {
                continue; // horizontal edge: never crossed by a horizontal ray
            }
            let ex = a.x;
            if ex <= x {
                continue;
            }
            let (ylo, yhi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
            if ylo <= y && y < yhi {
                crossings += 1;
            }
        }
        crossings % 2 == 1
    }

    /// Returns a copy translated by `(dx, dy)`.
    pub fn translate(&self, dx: i32, dy: i32) -> Result<Self> {
        let vertices = self
            .vertices
            .iter()
            .map(|v| Some(Point::new(v.x.checked_add(dx)?, v.y.checked_add(dy)?)))
            .collect::<Option<Vec<_>>>()
            .ok_or(GeometryError::CoordinateOverflow)?;
        Self::new(vertices)
    }

    /// Returns a copy with every coordinate multiplied by `factor`. This is
    /// the transformation used by the paper's scale-factor stress test
    /// (§5.2): a factor of `k` multiplies the polygon's area by `k²`.
    pub fn scale(&self, factor: i32) -> Result<Self> {
        if factor == 0 {
            return Err(GeometryError::ZeroArea);
        }
        let vertices = self
            .vertices
            .iter()
            .map(|v| v.checked_scale(factor))
            .collect::<Option<Vec<_>>>()
            .ok_or(GeometryError::CoordinateOverflow)?;
        Self::new(vertices)
    }

    /// Number of vertices of this polygon lying strictly inside `rect`.
    /// Used by Lemma 1 condition (ii).
    pub fn vertices_strictly_inside(&self, rect: &Rect) -> usize {
        self.vertices
            .iter()
            .filter(|v| rect.strictly_contains_point(**v))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(0, 0, 1, 1)).unwrap()
    }

    /// An L-shaped ("staircase") polygon:
    /// covers pixels of [0,4)x[0,2) plus [0,2)x[2,4).
    fn l_shape() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 2),
            Point::new(2, 2),
            Point::new(2, 4),
            Point::new(0, 4),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_chains() {
        assert!(matches!(
            RectilinearPolygon::new(vec![Point::new(0, 0), Point::new(1, 0), Point::new(1, 1)]),
            Err(GeometryError::TooFewVertices { got: 3 })
        ));
        assert!(matches!(
            RectilinearPolygon::new(vec![
                Point::new(0, 0),
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(1, 1),
            ]),
            Err(GeometryError::ZeroLengthEdge { .. })
        ));
        assert!(matches!(
            RectilinearPolygon::new(vec![
                Point::new(0, 0),
                Point::new(2, 1),
                Point::new(2, 2),
                Point::new(0, 2),
            ]),
            Err(GeometryError::NonRectilinearEdge { .. })
        ));
        assert!(matches!(
            RectilinearPolygon::new(vec![
                Point::new(0, 0),
                Point::new(1, 0),
                Point::new(2, 0),
                Point::new(2, 2),
                Point::new(0, 2),
            ]),
            Err(GeometryError::CollinearVertex { .. })
        ));
    }

    #[test]
    fn canonicalize_removes_redundant_vertices() {
        let poly = RectilinearPolygon::canonicalize(vec![
            Point::new(0, 0),
            Point::new(1, 0),
            Point::new(2, 0),
            Point::new(2, 0),
            Point::new(2, 2),
            Point::new(0, 2),
            Point::new(0, 0),
        ])
        .unwrap();
        assert_eq!(poly.vertex_count(), 4);
        assert_eq!(poly.area(), 4);
    }

    #[test]
    fn edge_table_builds_at_most_once_under_concurrent_callers() {
        use std::sync::{Arc, Barrier};
        let poly = Arc::new(RectilinearPolygon::rectangle(Rect::new(0, 0, 24, 18)).unwrap());
        assert!(
            poly.edge_table_if_built().is_none(),
            "cold before first use"
        );
        let threads = 8;
        let barrier = Arc::new(Barrier::new(threads));
        let addresses: Vec<usize> = (0..threads)
            .map(|_| {
                let poly = Arc::clone(&poly);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    poly.edge_table() as *const EdgeTable as usize
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("edge-table thread"))
            .collect();
        // OnceLock publishes exactly one table: every concurrent caller must
        // have observed the same instance, never a per-thread rebuild.
        assert!(
            addresses.windows(2).all(|w| w[0] == w[1]),
            "concurrent callers saw different tables: {addresses:?}"
        );
        let resident = poly.edge_table_if_built().expect("warm after first use");
        assert_eq!(resident as *const EdgeTable as usize, addresses[0]);
    }

    #[test]
    fn clones_share_a_built_edge_table_but_not_a_cold_cache() {
        let poly = RectilinearPolygon::rectangle(Rect::new(0, 0, 9, 9)).unwrap();
        // Cloning a cold polygon leaves the clone cold too (nothing to
        // share yet) — each copy builds independently on first touch.
        let cold_clone = poly.clone();
        assert!(cold_clone.edge_table_if_built().is_none());
        // Cloning after the build shares the same Arc'd table.
        let built = poly.edge_table() as *const EdgeTable;
        let warm_clone = poly.clone();
        let shared = warm_clone
            .edge_table_if_built()
            .expect("clone of a warm polygon is warm");
        assert_eq!(shared as *const EdgeTable, built);
    }

    #[test]
    fn rectangle_area_and_mbr() {
        let r = RectilinearPolygon::rectangle(Rect::new(2, 3, 7, 9)).unwrap();
        assert_eq!(r.area(), 5 * 6);
        assert_eq!(r.mbr(), Rect::new(2, 3, 7, 9));
        assert_eq!(r.perimeter(), 2 * (5 + 6));
    }

    #[test]
    fn l_shape_area_matches_pixel_count() {
        let poly = l_shape();
        assert_eq!(poly.area(), 4 * 2 + 2 * 2);
        let mut count = 0;
        for (x, y) in poly.mbr().pixels() {
            if poly.contains_pixel(x, y) {
                count += 1;
            }
        }
        assert_eq!(count, poly.area());
    }

    #[test]
    fn orientation_does_not_affect_area() {
        let ccw = l_shape();
        let cw_vertices: Vec<Point> = ccw.vertices().iter().rev().copied().collect();
        let cw = RectilinearPolygon::new(cw_vertices).unwrap();
        assert_eq!(ccw.area(), cw.area());
        assert_eq!(ccw.signed_area2(), -cw.signed_area2());
    }

    #[test]
    fn containment_unit_square() {
        let sq = unit_square();
        assert!(sq.contains_pixel(0, 0));
        assert!(!sq.contains_pixel(1, 0));
        assert!(!sq.contains_pixel(0, 1));
        assert!(!sq.contains_pixel(-1, 0));
    }

    #[test]
    fn containment_l_shape_notch() {
        let poly = l_shape();
        // Inside the notch (removed corner) must be outside.
        assert!(!poly.contains_pixel(3, 3));
        assert!(!poly.contains_pixel(2, 2));
        // Inside the arm.
        assert!(poly.contains_pixel(1, 3));
        assert!(poly.contains_pixel(3, 1));
    }

    #[test]
    fn translate_preserves_area() {
        let poly = l_shape();
        let moved = poly.translate(10, -5).unwrap();
        assert_eq!(moved.area(), poly.area());
        assert_eq!(moved.mbr(), Rect::new(10, -5, 14, -1));
        assert!(poly.translate(i32::MAX, 0).is_err());
    }

    #[test]
    fn scale_multiplies_area_quadratically() {
        let poly = l_shape();
        for k in 1..=5 {
            let scaled = poly.scale(k).unwrap();
            assert_eq!(scaled.area(), poly.area() * i64::from(k) * i64::from(k));
        }
        assert!(poly.scale(0).is_err());
        assert!(poly.scale(i32::MAX).is_err());
    }

    #[test]
    fn edges_alternate_orientation() {
        let poly = l_shape();
        let kinds: Vec<EdgeKind> = poly.edges().map(|e| e.kind()).collect();
        for w in kinds.windows(2) {
            assert_ne!(w[0], w[1]);
        }
        assert_eq!(kinds.len(), poly.vertex_count());
    }

    #[test]
    fn proper_crossing_of_perpendicular_edges() {
        let h = Edge {
            a: Point::new(0, 5),
            b: Point::new(10, 5),
        };
        let v_crossing = Edge {
            a: Point::new(4, 0),
            b: Point::new(4, 10),
        };
        let v_touching = Edge {
            a: Point::new(4, 5),
            b: Point::new(4, 10),
        };
        let v_outside = Edge {
            a: Point::new(12, 0),
            b: Point::new(12, 10),
        };
        let h_parallel = Edge {
            a: Point::new(0, 5),
            b: Point::new(6, 5),
        };
        assert!(h.properly_crosses(&v_crossing));
        assert!(v_crossing.properly_crosses(&h));
        assert!(!h.properly_crosses(&v_touching));
        assert!(!h.properly_crosses(&v_outside));
        assert!(!h.properly_crosses(&h_parallel));
    }

    #[test]
    fn vertices_strictly_inside_rect() {
        let poly = l_shape();
        assert_eq!(poly.vertices_strictly_inside(&Rect::new(-1, -1, 5, 5)), 6);
        assert_eq!(poly.vertices_strictly_inside(&Rect::new(0, 0, 4, 4)), 1); // only (2,2)
        assert_eq!(poly.vertices_strictly_inside(&Rect::new(10, 10, 20, 20)), 0);
    }
}
