//! Axis-aligned rectangles on the pixel grid.
//!
//! A [`Rect`] covers the half-open pixel range `[min_x, max_x) × [min_y, max_y)`:
//! it contains `(max_x - min_x) * (max_y - min_y)` pixels. Rectangles serve two
//! roles in the system: minimum bounding rectangles (MBRs) of polygons, and the
//! *sampling boxes* recursively partitioned by the PixelBox algorithm (§3.2).

use crate::point::Point;

/// An axis-aligned rectangle covering the half-open pixel range
/// `[min_x, max_x) × [min_y, max_y)`.
///
/// An *empty* rectangle has `max_x <= min_x` or `max_y <= min_y` and contains
/// no pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Inclusive lower x bound.
    pub min_x: i32,
    /// Inclusive lower y bound.
    pub min_y: i32,
    /// Exclusive upper x bound.
    pub max_x: i32,
    /// Exclusive upper y bound.
    pub max_y: i32,
}

impl Rect {
    /// Creates a rectangle from bounds. Bounds are not reordered; callers that
    /// may pass unordered bounds should use [`Rect::from_corners`].
    #[inline]
    pub const fn new(min_x: i32, min_y: i32, max_x: i32, max_y: i32) -> Self {
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Creates a rectangle spanning two arbitrary corner points.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// The empty rectangle positioned so that any union with it yields the
    /// other operand unchanged.
    pub const EMPTY: Rect = Rect {
        min_x: i32::MAX,
        min_y: i32::MAX,
        max_x: i32::MIN,
        max_y: i32::MIN,
    };

    /// Width in pixels (zero when empty).
    #[inline]
    pub fn width(&self) -> i64 {
        (i64::from(self.max_x) - i64::from(self.min_x)).max(0)
    }

    /// Height in pixels (zero when empty).
    #[inline]
    pub fn height(&self) -> i64 {
        (i64::from(self.max_y) - i64::from(self.min_y)).max(0)
    }

    /// Number of pixels contained in the rectangle (`BoxSize` in Algorithm 1).
    #[inline]
    pub fn pixel_count(&self) -> i64 {
        self.width() * self.height()
    }

    /// `true` when the rectangle contains no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.max_x <= self.min_x || self.max_y <= self.min_y
    }

    /// Tests whether the interiors of two rectangles share at least one pixel.
    /// This is the `&&` MBR-overlap predicate used by the optimized
    /// cross-comparing query (Figure 1(b)).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x < other.max_x
            && other.min_x < self.max_x
            && self.min_y < other.max_y
            && other.min_y < self.max_y
    }

    /// The rectangle covering the pixels shared by both operands.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        }
    }

    /// The smallest rectangle covering both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Whether `other` lies entirely within `self` (both treated as pixel sets).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (self.min_x <= other.min_x
                && self.min_y <= other.min_y
                && self.max_x >= other.max_x
                && self.max_y >= other.max_y)
    }

    /// Whether the pixel with lower-left corner `(x, y)` lies inside the rectangle.
    #[inline]
    pub fn contains_pixel(&self, x: i32, y: i32) -> bool {
        x >= self.min_x && x < self.max_x && y >= self.min_y && y < self.max_y
    }

    /// Whether a grid point lies *strictly* inside the rectangle's interior
    /// (not on its boundary). Used by Lemma 1 condition (ii): a polygon vertex
    /// on the border of a sampling box does not force further partitioning.
    #[inline]
    pub fn strictly_contains_point(&self, p: Point) -> bool {
        p.x > self.min_x && p.x < self.max_x && p.y > self.min_y && p.y < self.max_y
    }

    /// The centre of the rectangle expressed as the pixel whose centre is
    /// closest to the geometric centre (used by Lemma 1 condition (iii)).
    #[inline]
    pub fn center_pixel(&self) -> (i32, i32) {
        (
            self.min_x + ((self.max_x - self.min_x) / 2),
            self.min_y + ((self.max_y - self.min_y) / 2),
        )
    }

    /// Enumerates the pixels of the rectangle in row-major order, returning the
    /// pixel with linear index `idx`, or `None` when out of range. This is the
    /// indexing scheme threads use during the pixelization phase
    /// (`PixelInPoly(box, j, p)` in Algorithm 1).
    #[inline]
    pub fn pixel_at(&self, idx: i64) -> Option<(i32, i32)> {
        if idx < 0 || idx >= self.pixel_count() {
            return None;
        }
        let w = self.width();
        let row = idx / w;
        let col = idx % w;
        Some((self.min_x + col as i32, self.min_y + row as i32))
    }

    /// Iterator over all pixels in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        let r = *self;
        (0..r.pixel_count()).map(move |i| r.pixel_at(i).expect("index in range"))
    }

    /// Splits the rectangle into a `cols × rows` grid of sub-rectangles
    /// (`SubSampBox` in Algorithm 1). The sub-rectangle with linear index
    /// `idx` (row-major) is returned; indices past the grid return an empty
    /// rectangle so that surplus threads contribute nothing.
    pub fn subdivide(&self, cols: u32, rows: u32, idx: u32) -> Rect {
        if cols == 0 || rows == 0 || idx >= cols * rows || self.is_empty() {
            return Rect::EMPTY;
        }
        let col = idx % cols;
        let row = idx / cols;
        let w = self.width();
        let h = self.height();
        // Ceiling division so the grid always covers the whole rectangle even
        // when the dimensions do not divide evenly; trailing cells may be empty.
        let cell_w = (w + i64::from(cols) - 1) / i64::from(cols);
        let cell_h = (h + i64::from(rows) - 1) / i64::from(rows);
        let min_x = i64::from(self.min_x) + i64::from(col) * cell_w;
        let min_y = i64::from(self.min_y) + i64::from(row) * cell_h;
        let max_x = (min_x + cell_w).min(i64::from(self.max_x));
        let max_y = (min_y + cell_h).min(i64::from(self.max_y));
        if min_x >= i64::from(self.max_x) || min_y >= i64::from(self.max_y) {
            return Rect::EMPTY;
        }
        Rect {
            min_x: min_x as i32,
            min_y: min_y as i32,
            max_x: max_x as i32,
            max_y: max_y as i32,
        }
    }

    /// The four corner points of the rectangle in counter-clockwise order
    /// starting at `(min_x, min_y)`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_count_and_emptiness() {
        let r = Rect::new(2, 3, 5, 7);
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 4);
        assert_eq!(r.pixel_count(), 12);
        assert!(!r.is_empty());
        assert!(Rect::new(5, 3, 5, 7).is_empty());
        assert!(Rect::EMPTY.is_empty());
        assert_eq!(Rect::EMPTY.pixel_count(), 0);
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(5, 1), Point::new(2, 8));
        assert_eq!(r, Rect::new(2, 1, 5, 8));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection(&b), Rect::new(5, 5, 10, 10));
        assert_eq!(a.union(&b), Rect::new(0, 0, 15, 15));

        let c = Rect::new(10, 0, 20, 10);
        // Touching edges share no pixel: the MBR predicate must be exclusive.
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = Rect::new(1, 2, 3, 4);
        assert_eq!(a.union(&Rect::EMPTY), a);
        assert_eq!(Rect::EMPTY.union(&a), a);
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains_rect(&Rect::new(2, 2, 8, 8)));
        assert!(outer.contains_rect(&outer));
        assert!(!outer.contains_rect(&Rect::new(2, 2, 11, 8)));
        assert!(outer.contains_pixel(0, 0));
        assert!(outer.contains_pixel(9, 9));
        assert!(!outer.contains_pixel(10, 5));
        assert!(outer.strictly_contains_point(Point::new(5, 5)));
        assert!(!outer.strictly_contains_point(Point::new(0, 5)));
        assert!(!outer.strictly_contains_point(Point::new(10, 10)));
    }

    #[test]
    fn pixel_indexing_round_trips() {
        let r = Rect::new(3, 4, 6, 6); // 3 wide, 2 tall
        let pixels: Vec<_> = r.pixels().collect();
        assert_eq!(pixels, vec![(3, 4), (4, 4), (5, 4), (3, 5), (4, 5), (5, 5)]);
        assert_eq!(r.pixel_at(0), Some((3, 4)));
        assert_eq!(r.pixel_at(5), Some((5, 5)));
        assert_eq!(r.pixel_at(6), None);
        assert_eq!(r.pixel_at(-1), None);
    }

    #[test]
    fn subdivision_covers_all_pixels_exactly_once() {
        let r = Rect::new(0, 0, 7, 5);
        let mut seen = std::collections::HashSet::new();
        for idx in 0..16 {
            let sub = r.subdivide(4, 4, idx);
            for p in sub.pixels() {
                assert!(seen.insert(p), "pixel {p:?} covered twice");
                assert!(r.contains_pixel(p.0, p.1));
            }
        }
        assert_eq!(seen.len() as i64, r.pixel_count());
    }

    #[test]
    fn subdivision_out_of_range_is_empty() {
        let r = Rect::new(0, 0, 8, 8);
        assert!(r.subdivide(2, 2, 4).is_empty());
        assert!(r.subdivide(0, 2, 0).is_empty());
        assert!(Rect::EMPTY.subdivide(2, 2, 0).is_empty());
    }

    #[test]
    fn center_pixel_lies_inside_nonempty_rect() {
        let r = Rect::new(10, 20, 13, 27);
        let (cx, cy) = r.center_pixel();
        assert!(r.contains_pixel(cx, cy));
    }

    #[test]
    fn corners_are_in_ccw_order() {
        let r = Rect::new(1, 2, 4, 6);
        let c = r.corners();
        assert_eq!(c[0], Point::new(1, 2));
        assert_eq!(c[2], Point::new(4, 6));
    }
}
