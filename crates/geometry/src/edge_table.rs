//! Scanline edge tables: output-sensitive row-interval decomposition of
//! rectilinear polygons.
//!
//! The even–odd containment test of [`crate::RectilinearPolygon::contains_pixel`]
//! walks *every* edge for *every* pixel, so pixelizing a region costs
//! O(pixels × edges). But a rectilinear polygon's intersection with one pixel
//! row is fully determined by the vertical edges whose y-span crosses that
//! row: sorting their x coordinates yields the row's inside x-intervals
//! directly (consecutive pairs of crossings, by the even–odd rule). An
//! [`EdgeTable`] precomputes that decomposition once per polygon, after which
//! any row's intervals are available in O(crossing edges) — pixel counts over
//! a window become pure interval arithmetic that never touches individual
//! pixels.
//!
//! Construction buckets the vertical edges into *slabs*: maximal y-ranges
//! within which the set of crossing edges (and therefore the sorted crossing
//! list) is constant. The slab boundaries are the distinct edge endpoints, so
//! a polygon with `E` edges has at most `E` slabs and the table costs
//! O(E²) space in the worst case — negligible for segmentation boundaries,
//! which have tens of vertices. A row query is a binary search over slabs
//! plus a borrowed slice, and repeated queries for consecutive rows hit the
//! same slab.
//!
//! The interval helpers ([`span_len_in`], [`overlap_len_in`]) are the
//! arithmetic core of the PixelBox pixelization fast path: per row, the
//! intersection of two polygons is the overlap of their crossing lists and
//! the union follows by inclusion–exclusion, both exactly (all integer), so
//! the fast path is bit-identical to per-pixel classification.
//!
//! # Chunked kernel contract
//!
//! The interval kernels come in two implementations each, and the pair must
//! stay *bit-identical* for every input:
//!
//! * [`span_len_in_scalar`] / [`overlap_len_in_scalar`] — the retained
//!   scalar loops (early-exit pair walk, two-pointer merge). These are the
//!   reference semantics.
//! * [`span_len_in`] / [`overlap_len_in`] — lane-chunked rewrites: the
//!   crossing list is consumed in fixed-width chunks of `2 ×` [`LANES`]
//!   `i32` crossings ([`LANES`] half-open intervals per chunk), each chunk
//!   evaluated branchlessly as `max(0, min(b, hi) − max(a, lo))` into a
//!   `[i64; LANES]` accumulator, followed by a scalar tail for the
//!   remainder. No `std::simd` is involved — the fixed-shape loops are
//!   written so LLVM's auto-vectorizer can lower them to whatever vector
//!   width the target offers.
//!
//! Equivalence is exact, not approximate: every pair the scalar loop skips
//! via its early exit contributes a clipped length of zero under the
//! branchless formula, and the chunked overlap kernel's banded
//! interval-pair sum equals the two-pointer merge because each list's
//! intervals are disjoint. The lane-boundary proptests in
//! `sccg/tests/scanline_equivalence.rs` pin this down across chunk
//! boundaries (list lengths `0..=4·LANES+3`), empty rows and degenerate
//! single-column windows.
//!
//! Window sweeps ([`intersection_union_in`], [`intersection_len_in`],
//! [`EdgeTable::row`]) additionally exploit that crossing lists are constant
//! within a slab: a [`RowRef`] resolves the slab once and reports the run of
//! rows sharing it, so a sweep multiplies one row's interval arithmetic by
//! the run length instead of re-deriving it row by row.

use crate::point::Point;

/// Precomputed scanline decomposition of one rectilinear polygon: for every
/// pixel row, the sorted x coordinates at which a `+x` ray from that row
/// crosses the polygon boundary.
///
/// Consecutive crossing pairs delimit the half-open x-intervals of pixels
/// inside the polygon on that row; the crossing count per row is always even
/// because the boundary is a closed chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTable {
    /// Sorted distinct y endpoints of the vertical edges. Slab `i` covers the
    /// pixel rows `[slab_ys[i], slab_ys[i+1])`.
    slab_ys: Vec<i32>,
    /// `offsets[i]..offsets[i+1]` indexes slab `i`'s crossings in `xs`.
    offsets: Vec<u32>,
    /// Concatenated sorted crossing x coordinates, slab by slab.
    xs: Vec<i32>,
}

impl EdgeTable {
    /// Builds the table from a closed rectilinear vertex chain
    /// (`v0 → v1 → … → v(n-1) → v0`). Horizontal edges are ignored: a
    /// horizontal ray never crosses them (the same rule as
    /// [`crate::RectilinearPolygon::contains_pixel`]).
    pub fn from_vertices(vertices: &[Point]) -> Self {
        // Collect the vertical edges as (x, y_lo, y_hi) spans.
        let n = vertices.len();
        let mut edges: Vec<(i32, i32, i32)> = Vec::with_capacity(n / 2 + 1);
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            if a.x == b.x && a.y != b.y {
                let (lo, hi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
                edges.push((a.x, lo, hi));
            }
        }
        if edges.is_empty() {
            return EdgeTable {
                slab_ys: Vec::new(),
                offsets: vec![0],
                xs: Vec::new(),
            };
        }

        let mut slab_ys: Vec<i32> = edges.iter().flat_map(|&(_, lo, hi)| [lo, hi]).collect();
        slab_ys.sort_unstable();
        slab_ys.dedup();

        let slabs = slab_ys.len() - 1;
        let mut offsets: Vec<u32> = Vec::with_capacity(slabs + 1);
        let mut xs: Vec<i32> = Vec::new();
        offsets.push(0);
        let mut slab_xs: Vec<i32> = Vec::new();
        for &row in &slab_ys[..slabs] {
            slab_xs.clear();
            // An edge spanning rows [lo, hi) crosses every row of this slab
            // exactly when it crosses the slab's first row: slab boundaries
            // include every edge endpoint, so spans cannot start or end
            // strictly inside a slab.
            slab_xs.extend(
                edges
                    .iter()
                    .filter(|&&(_, lo, hi)| lo <= row && row < hi)
                    .map(|&(x, _, _)| x),
            );
            slab_xs.sort_unstable();
            debug_assert!(
                slab_xs.len().is_multiple_of(2),
                "closed chain must cross each row an even number of times"
            );
            xs.extend_from_slice(&slab_xs);
            offsets.push(xs.len() as u32);
        }
        EdgeTable {
            slab_ys,
            offsets,
            xs,
        }
    }

    /// The sorted x coordinates at which the boundary crosses pixel row `y`
    /// (even length; empty for rows outside the polygon's y-extent).
    ///
    /// Pixel `(x, y)` is inside the polygon exactly when `x` lies in one of
    /// the half-open intervals `[xs[0], xs[1]), [xs[2], xs[3]), …`.
    #[inline]
    pub fn row_crossings(&self, y: i32) -> &[i32] {
        let Some((&first, &last)) = self.slab_ys.first().zip(self.slab_ys.last()) else {
            return &[];
        };
        if y < first || y >= last {
            return &[];
        }
        // Greatest slab whose first row is <= y.
        let slab = self.slab_ys.partition_point(|&b| b <= y) - 1;
        let lo = self.offsets[slab] as usize;
        let hi = self.offsets[slab + 1] as usize;
        &self.xs[lo..hi]
    }

    /// The inside x-intervals of pixel row `y` as half-open `(start, end)`
    /// pairs, in increasing order.
    pub fn row_intervals(&self, y: i32) -> impl Iterator<Item = (i32, i32)> + '_ {
        self.row_crossings(y)
            .chunks_exact(2)
            .map(|pair| (pair[0], pair[1]))
    }

    /// Number of pixels of row `y` inside the polygon with x in `[lo, hi)`.
    #[inline]
    pub fn row_span_len(&self, y: i32, lo: i32, hi: i32) -> i64 {
        span_len_in(self.row_crossings(y), lo, hi)
    }

    /// Resolves row `y` to a [`RowRef`]: the slab lookup (binary search) is
    /// done **once**, and the handle carries both the crossing list and the
    /// end of the *run* of rows sharing it. Tight loops should call this
    /// once per run and reuse the handle for every span/overlap query,
    /// instead of paying the search per [`EdgeTable::row_span_len`] call.
    #[inline]
    pub fn row(&self, y: i32) -> RowRef<'_> {
        let Some((&first, &last)) = self.slab_ys.first().zip(self.slab_ys.last()) else {
            return RowRef {
                xs: &[],
                run_end: i32::MAX,
            };
        };
        if y < first {
            return RowRef {
                xs: &[],
                run_end: first,
            };
        }
        if y >= last {
            return RowRef {
                xs: &[],
                run_end: i32::MAX,
            };
        }
        let slab = self.slab_ys.partition_point(|&b| b <= y) - 1;
        let lo = self.offsets[slab] as usize;
        let hi = self.offsets[slab + 1] as usize;
        RowRef {
            xs: &self.xs[lo..hi],
            run_end: self.slab_ys[slab + 1],
        }
    }

    /// Number of y-slabs in the table (rows within one slab share a crossing
    /// list).
    pub fn slab_count(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// One resolved pixel row of an [`EdgeTable`]: the row's crossing list plus
/// the first row *after* it with a different list (the end of the row's
/// *run*). Obtained from [`EdgeTable::row`]; the slab binary search happens
/// there, once, and every query through the handle is search-free — so a
/// window sweep resolves each run once and multiplies, instead of paying a
/// lookup per row.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    xs: &'a [i32],
    run_end: i32,
}

impl<'a> RowRef<'a> {
    /// The row's sorted crossing list (see [`EdgeTable::row_crossings`]).
    #[inline]
    pub fn crossings(&self) -> &'a [i32] {
        self.xs
    }

    /// First row strictly after the resolved one whose crossing list may
    /// differ: every row in `[y, run_end)` shares [`RowRef::crossings`].
    /// `i32::MAX` when the list stays empty for all higher rows.
    #[inline]
    pub fn run_end(&self) -> i32 {
        self.run_end
    }

    /// Number of pixels of this row inside the polygon with x in `[lo, hi)`.
    #[inline]
    pub fn span_len(&self, lo: i32, hi: i32) -> i64 {
        span_len_in(self.xs, lo, hi)
    }

    /// Number of pixels of this row, clipped to `[lo, hi)`, inside both this
    /// row's polygon and `other`'s.
    #[inline]
    pub fn overlap_len(&self, other: &RowRef<'_>, lo: i32, hi: i32) -> i64 {
        overlap_len_in(self.xs, other.xs, lo, hi)
    }
}

/// Intersection and union pixel counts of two polygons over a window,
/// computed row by row from their edge tables: the intersection is the
/// overlap of the two crossing lists, the union follows by
/// inclusion–exclusion. This is the one row-merge loop shared by the raster
/// oracles and PixelBox's pixelization fast path, so the two can never
/// silently diverge.
pub fn intersection_union_in(
    p: &EdgeTable,
    q: &EdgeTable,
    window: &crate::rect::Rect,
) -> (i64, i64) {
    let mut inter = 0i64;
    let mut union = 0i64;
    let mut y = window.min_y;
    while y < window.max_y {
        let row_p = p.row(y);
        let row_q = q.row(y);
        // Both crossing lists are constant over [y, run_end): compute the
        // row's interval arithmetic once and multiply by the run length.
        let run_end = row_p.run_end().min(row_q.run_end()).min(window.max_y);
        let rows = i64::from(run_end) - i64::from(y);
        let row_inter = row_p.overlap_len(&row_q, window.min_x, window.max_x);
        let row_sum =
            row_p.span_len(window.min_x, window.max_x) + row_q.span_len(window.min_x, window.max_x);
        inter += rows * row_inter;
        union += rows * (row_sum - row_inter);
        y = run_end;
    }
    (inter, union)
}

/// Intersection pixel count only, over a window — one interval-overlap pass
/// per *run* of rows sharing both crossing lists. The full PixelBox variant
/// derives the union indirectly (`‖p∪q‖ = ‖p‖ + ‖q‖ − ‖p∩q‖`), so its
/// pixelized tail boxes never need the two extra span passes of
/// [`intersection_union_in`].
pub fn intersection_len_in(p: &EdgeTable, q: &EdgeTable, window: &crate::rect::Rect) -> i64 {
    let mut inter = 0i64;
    let mut y = window.min_y;
    while y < window.max_y {
        let row_p = p.row(y);
        let row_q = q.row(y);
        let run_end = row_p.run_end().min(row_q.run_end()).min(window.max_y);
        let rows = i64::from(run_end) - i64::from(y);
        inter += rows * row_p.overlap_len(&row_q, window.min_x, window.max_x);
        y = run_end;
    }
    inter
}

/// Interval count per fixed-width chunk of the lane-chunked kernels: each
/// chunk covers `2 × LANES` crossings evaluated branchlessly (see the
/// module docs' chunked kernel contract). The value is a lane width the
/// auto-vectorizer can map onto 256-bit registers, not a `std::simd` type.
pub const LANES: usize = 8;

/// Length of the half-open interval `[a, b)` clipped to `[lo, hi)`,
/// branchless: pairs outside the window come out at zero instead of being
/// skipped, which is what lets whole chunks evaluate without data-dependent
/// control flow.
#[inline]
fn clipped_len(a: i32, b: i32, lo: i32, hi: i32) -> i64 {
    (i64::from(b.min(hi)) - i64::from(a.max(lo))).max(0)
}

/// Total length of the half-open intervals encoded by the sorted crossing
/// list `xs` (consecutive pairs), clipped to the window `[lo, hi)`.
///
/// Lane-chunked: `LANES` intervals per fixed-width chunk, branchless, with
/// a scalar tail — bit-identical to [`span_len_in_scalar`].
#[inline]
pub fn span_len_in(xs: &[i32], lo: i32, hi: i32) -> i64 {
    let mut total = 0i64;
    let mut chunks = xs.chunks_exact(2 * LANES);
    for chunk in &mut chunks {
        let mut lane = [0i64; LANES];
        for (k, slot) in lane.iter_mut().enumerate() {
            *slot = clipped_len(chunk[2 * k], chunk[2 * k + 1], lo, hi);
        }
        total += lane.iter().sum::<i64>();
    }
    for pair in chunks.remainder().chunks_exact(2) {
        total += clipped_len(pair[0], pair[1], lo, hi);
    }
    total
}

/// The retained scalar reference for [`span_len_in`]: an early-exit pair
/// walk. The lane-boundary proptests assert the two are bit-identical.
#[inline]
pub fn span_len_in_scalar(xs: &[i32], lo: i32, hi: i32) -> i64 {
    let mut total = 0i64;
    for pair in xs.chunks_exact(2) {
        let (a, b) = (pair[0], pair[1]);
        if a >= hi {
            break;
        }
        let start = a.max(lo);
        let end = b.min(hi);
        if end > start {
            total += i64::from(end) - i64::from(start);
        }
    }
    total
}

/// Total overlap length of two sorted crossing lists (each encoding
/// half-open intervals as consecutive pairs), clipped to `[lo, hi)`: the
/// number of pixels in the window inside *both* polygons on this row.
///
/// Lane-chunked: for each interval of `a` (clipped to the window), `b`'s
/// intervals are evaluated in branchless `LANES`-wide chunks plus a scalar
/// tail. Because each list's intervals are disjoint, the banded
/// interval-pair sum `Σᵢⱼ |aᵢ ∩ bⱼ ∩ window|` equals the two-pointer merge
/// of [`overlap_len_in_scalar`] exactly.
#[inline]
pub fn overlap_len_in(a: &[i32], b: &[i32], lo: i32, hi: i32) -> i64 {
    let mut total = 0i64;
    for pair in a.chunks_exact(2) {
        if pair[0] >= hi {
            break;
        }
        // Clip this a-interval to the window once; b's intervals then clip
        // against the result.
        let a_lo = pair[0].max(lo);
        let a_hi = pair[1].min(hi);
        if a_hi <= a_lo {
            continue;
        }
        let mut chunks = b.chunks_exact(2 * LANES);
        for chunk in &mut chunks {
            let mut lane = [0i64; LANES];
            for (k, slot) in lane.iter_mut().enumerate() {
                *slot = clipped_len(chunk[2 * k], chunk[2 * k + 1], a_lo, a_hi);
            }
            total += lane.iter().sum::<i64>();
        }
        for pb in chunks.remainder().chunks_exact(2) {
            total += clipped_len(pb[0], pb[1], a_lo, a_hi);
        }
    }
    total
}

/// The retained scalar reference for [`overlap_len_in`]: the two-pointer
/// interval merge. The lane-boundary proptests assert the two are
/// bit-identical.
#[inline]
pub fn overlap_len_in_scalar(a: &[i32], b: &[i32], lo: i32, hi: i32) -> i64 {
    let mut total = 0i64;
    let mut i = 0;
    let mut j = 0;
    while i + 1 < a.len() && j + 1 < b.len() {
        if a[i] >= hi || b[j] >= hi {
            break;
        }
        let start = a[i].max(b[j]).max(lo);
        let end = a[i + 1].min(b[j + 1]).min(hi);
        if end > start {
            total += i64::from(end) - i64::from(start);
        }
        // Advance whichever interval ends first (ties advance both safely on
        // the next iterations; intervals are disjoint within each list).
        if a[i + 1] <= b[j + 1] {
            i += 2;
        } else {
            j += 2;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::RectilinearPolygon;
    use crate::rect::Rect;

    fn l_shape() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(4, 0),
            Point::new(4, 2),
            Point::new(2, 2),
            Point::new(2, 4),
            Point::new(0, 4),
        ])
        .unwrap()
    }

    /// A comb with two teeth: rows near the top have two inside intervals.
    fn comb() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(5, 3),
            Point::new(4, 3),
            Point::new(4, 1),
            Point::new(3, 1),
            Point::new(3, 3),
            Point::new(2, 3),
            Point::new(2, 1),
            Point::new(1, 1),
            Point::new(1, 3),
            Point::new(0, 3),
        ])
        .unwrap()
    }

    fn table(poly: &RectilinearPolygon) -> EdgeTable {
        EdgeTable::from_vertices(poly.vertices())
    }

    #[test]
    fn rows_match_contains_pixel() {
        for poly in [l_shape(), comb()] {
            let table = table(&poly);
            let mbr = poly.mbr();
            for y in mbr.min_y - 2..mbr.max_y + 2 {
                let xs = table.row_crossings(y);
                assert_eq!(xs.len() % 2, 0, "even crossings at row {y}");
                for x in mbr.min_x - 2..mbr.max_x + 2 {
                    let by_intervals = xs.chunks_exact(2).any(|p| p[0] <= x && x < p[1]);
                    assert_eq!(by_intervals, poly.contains_pixel(x, y), "pixel ({x}, {y})");
                }
            }
        }
    }

    #[test]
    fn comb_rows_have_multiple_intervals() {
        let table = table(&comb());
        let intervals: Vec<_> = table.row_intervals(2).collect();
        assert_eq!(intervals, vec![(0, 1), (2, 3), (4, 5)]);
        let base: Vec<_> = table.row_intervals(0).collect();
        assert_eq!(base, vec![(0, 5)]);
        assert!(table.row_intervals(3).next().is_none());
    }

    #[test]
    fn span_len_counts_window_pixels() {
        let xs = [0, 3, 5, 9];
        assert_eq!(span_len_in(&xs, i32::MIN, i32::MAX), 7);
        assert_eq!(span_len_in(&xs, 1, 6), 3); // [1,3) + [5,6)
        assert_eq!(span_len_in(&xs, 3, 5), 0);
        assert_eq!(span_len_in(&[], 0, 10), 0);
    }

    #[test]
    fn overlap_len_matches_brute_force() {
        let a = [0, 4, 6, 10, 12, 13];
        let b = [2, 7, 9, 12];
        let window = (1, 12);
        let brute: i64 = (window.0..window.1)
            .filter(|&x| {
                let in_a = a.chunks_exact(2).any(|p| p[0] <= x && x < p[1]);
                let in_b = b.chunks_exact(2).any(|p| p[0] <= x && x < p[1]);
                in_a && in_b
            })
            .count() as i64;
        assert_eq!(overlap_len_in(&a, &b, window.0, window.1), brute);
        assert_eq!(overlap_len_in(&a, &[], 0, 20), 0);
        assert_eq!(overlap_len_in(&a, &b, 5, 5), 0);
    }

    #[test]
    fn rows_outside_extent_are_empty() {
        let table = table(&l_shape());
        assert!(table.row_crossings(-1).is_empty());
        assert!(table.row_crossings(4).is_empty());
        assert_eq!(table.row_crossings(0), &[0, 4]);
        assert_eq!(table.row_crossings(3), &[0, 2]);
    }

    #[test]
    fn area_by_rows_matches_shoelace() {
        for poly in [l_shape(), comb()] {
            let table = table(&poly);
            let mbr: Rect = poly.mbr();
            let area: i64 = (mbr.min_y..mbr.max_y)
                .map(|y| table.row_span_len(y, mbr.min_x, mbr.max_x))
                .sum();
            assert_eq!(area, poly.area());
        }
    }

    #[test]
    fn slab_count_is_bounded_by_edge_endpoints() {
        let table = table(&comb());
        assert!(table.slab_count() >= 1);
        assert!(table.slab_count() < comb().vertex_count());
    }

    #[test]
    fn lane_kernels_match_scalar_references() {
        let lists: Vec<Vec<i32>> = vec![
            vec![],
            vec![0, 3],
            vec![0, 4, 6, 10, 12, 13],
            (0..(4 * LANES as i32 + 2)).map(|i| 3 * i).collect(),
            (0..(4 * LANES as i32)).map(|i| 5 * i + 1).collect(),
            vec![-20, -10, -5, 0, 0, 0, 2, 7], // empty [0, 0) interval
        ];
        let windows = [
            (i32::MIN, i32::MAX),
            (1, 12),
            (5, 5),
            (7, 8), // degenerate single-column window
            (-30, 4),
            (100, 90), // inverted window
        ];
        for a in &lists {
            for (lo, hi) in windows {
                assert_eq!(
                    span_len_in(a, lo, hi),
                    span_len_in_scalar(a, lo, hi),
                    "span {a:?} [{lo}, {hi})"
                );
                for b in &lists {
                    assert_eq!(
                        overlap_len_in(a, b, lo, hi),
                        overlap_len_in_scalar(a, b, lo, hi),
                        "overlap {a:?} ∩ {b:?} [{lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn row_ref_reports_runs_and_reuses_the_resolved_slab() {
        let table = table(&comb());
        // comb(): base slab rows [0, 1) with one interval, teeth slab
        // rows [1, 3) with three intervals.
        let base = table.row(0);
        assert_eq!(base.crossings(), &[0, 5]);
        assert_eq!(base.run_end(), 1);
        let teeth = table.row(1);
        assert_eq!(teeth.run_end(), 3);
        assert_eq!(table.row(2).crossings(), teeth.crossings());
        // Outside the y-extent: empty lists, with the run extending to the
        // table's first slab (below) or forever (above).
        assert_eq!(table.row(-7).crossings(), &[] as &[i32]);
        assert_eq!(table.row(-7).run_end(), 0);
        assert_eq!(table.row(3).run_end(), i32::MAX);
        assert_eq!(table.row(99).crossings(), &[] as &[i32]);
        // Queries through the handle match the per-row entry points.
        assert_eq!(base.span_len(1, 4), table.row_span_len(0, 1, 4));
        assert_eq!(
            base.overlap_len(&teeth, 0, 5),
            overlap_len_in(base.crossings(), teeth.crossings(), 0, 5)
        );
        // Empty table: everything is one infinite empty run.
        let empty = EdgeTable::from_vertices(&[]);
        assert_eq!(empty.row(0).run_end(), i32::MAX);
        assert!(empty.row(0).crossings().is_empty());
    }

    #[test]
    fn run_aggregated_sweeps_match_per_row_loops() {
        for (p, q) in [
            (l_shape(), comb()),
            (comb(), comb()),
            (l_shape(), l_shape()),
        ] {
            let (tp, tq) = (table(&p), table(&q));
            let window = p.mbr().union(&q.mbr());
            // Grow the window past both extents so out-of-extent runs are
            // exercised too.
            let window = Rect::new(
                window.min_x - 2,
                window.min_y - 3,
                window.max_x + 2,
                window.max_y + 3,
            );
            let mut inter = 0i64;
            let mut union = 0i64;
            for y in window.min_y..window.max_y {
                let xs_p = tp.row_crossings(y);
                let xs_q = tq.row_crossings(y);
                let row_inter = overlap_len_in_scalar(xs_p, xs_q, window.min_x, window.max_x);
                inter += row_inter;
                union += span_len_in_scalar(xs_p, window.min_x, window.max_x)
                    + span_len_in_scalar(xs_q, window.min_x, window.max_x)
                    - row_inter;
            }
            assert_eq!(intersection_union_in(&tp, &tq, &window), (inter, union));
            assert_eq!(intersection_len_in(&tp, &tq, &window), inter);
        }
    }
}
