//! Pixel rasterization oracles.
//!
//! These functions evaluate areas by classifying the pixels of a bounding
//! region with the even–odd rule. They are the ground truth that every other
//! area computation in the workspace (the sweepline overlay in `sccg-clip`,
//! PixelBox on the GPU simulator, and PixelBox-CPU) is validated against, and
//! they correspond directly to the "pixelized view" of intersection and union
//! described in §3.1 of the paper.
//!
//! Two implementations coexist:
//!
//! * The top-level functions use each polygon's cached scanline
//!   [`EdgeTable`](crate::EdgeTable): one pixel row at a time, the inside
//!   x-intervals are intersected/merged with pure interval arithmetic, so a
//!   window scan costs O(rows × crossing edges) instead of
//!   O(pixels × edges). All quantities are exact integers, so the results
//!   are bit-identical to per-pixel classification.
//! * [`brute`] retains the original per-pixel loops
//!   ([`RectilinearPolygon::contains_pixel`] on every pixel). They are the
//!   independent oracle the interval fast path is verified against (unit
//!   tests here, property tests in `tests/proptests.rs`, and the PixelBox
//!   equivalence suite in `sccg`).

use crate::polygon::RectilinearPolygon;
use crate::rect::Rect;

/// Area of a single polygon obtained by counting interior pixels row by row.
pub fn polygon_area(poly: &RectilinearPolygon) -> i64 {
    pixels_inside(poly, &poly.mbr())
}

/// Areas of the intersection and the union of two polygons, obtained by
/// classifying every pixel row of the pair's combined MBR (Figure 4(a)):
/// per row, the intersection is the overlap of the two polygons' inside
/// intervals and the union follows by inclusion–exclusion.
pub fn intersection_union_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> (i64, i64) {
    let joint = p.mbr().union(&q.mbr());
    crate::edge_table::intersection_union_in(p.edge_table(), q.edge_table(), &joint)
}

/// Area of the intersection only, scanning just the intersection of the two
/// MBRs (pixels outside it cannot lie in both polygons).
pub fn intersection_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
    let window = p.mbr().intersection(&q.mbr());
    if window.is_empty() {
        return 0;
    }
    crate::edge_table::intersection_len_in(p.edge_table(), q.edge_table(), &window)
}

/// Number of pixels of `window` lying inside the polygon. Used to check the
/// sampling-box classification logic against an exhaustive scan.
pub fn pixels_inside(poly: &RectilinearPolygon, window: &Rect) -> i64 {
    if window.is_empty() {
        return 0;
    }
    let table = poly.edge_table();
    let mut total = 0i64;
    let mut y = window.min_y;
    while y < window.max_y {
        // One slab resolution per run of rows sharing the crossing list,
        // instead of a binary search per row.
        let row = table.row(y);
        let run_end = row.run_end().min(window.max_y);
        let rows = i64::from(run_end) - i64::from(y);
        total += rows * row.span_len(window.min_x, window.max_x);
        y = run_end;
    }
    total
}

pub mod brute {
    //! The original brute-force per-pixel oracles: every pixel of the
    //! bounding region is tested with
    //! [`RectilinearPolygon::contains_pixel`]. O(pixels × edges), retained
    //! verbatim as the independent ground truth for the interval-scanline
    //! fast paths.

    use super::{Rect, RectilinearPolygon};

    /// Area of a single polygon obtained by testing every MBR pixel.
    pub fn polygon_area(poly: &RectilinearPolygon) -> i64 {
        let mbr = poly.mbr();
        mbr.pixels()
            .filter(|&(x, y)| poly.contains_pixel(x, y))
            .count() as i64
    }

    /// Areas of intersection and union by classifying every pixel of the
    /// joint MBR against both polygons.
    pub fn intersection_union_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> (i64, i64) {
        let joint = p.mbr().union(&q.mbr());
        let mut inter = 0i64;
        let mut union = 0i64;
        for (x, y) in joint.pixels() {
            let in_p = p.contains_pixel(x, y);
            let in_q = q.contains_pixel(x, y);
            if in_p && in_q {
                inter += 1;
            }
            if in_p || in_q {
                union += 1;
            }
        }
        (inter, union)
    }

    /// Area of the intersection only, testing every pixel of the MBR
    /// intersection window.
    pub fn intersection_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
        let window = p.mbr().intersection(&q.mbr());
        if window.is_empty() {
            return 0;
        }
        window
            .pixels()
            .filter(|&(x, y)| p.contains_pixel(x, y) && q.contains_pixel(x, y))
            .count() as i64
    }

    /// Number of pixels of `window` inside the polygon, tested one by one.
    pub fn pixels_inside(poly: &RectilinearPolygon, window: &Rect) -> i64 {
        window
            .pixels()
            .filter(|&(x, y)| poly.contains_pixel(x, y))
            .count() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn rect_poly(min_x: i32, min_y: i32, max_x: i32, max_y: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(min_x, min_y, max_x, max_y)).unwrap()
    }

    fn staircase() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(5, 1),
            Point::new(3, 1),
            Point::new(3, 3),
            Point::new(2, 3),
            Point::new(2, 5),
            Point::new(0, 5),
        ])
        .unwrap()
    }

    #[test]
    fn raster_area_matches_shoelace_for_rectangles() {
        let p = rect_poly(0, 0, 13, 7);
        assert_eq!(polygon_area(&p), p.area());
        assert_eq!(brute::polygon_area(&p), p.area());
    }

    #[test]
    fn raster_area_matches_shoelace_for_staircase() {
        let p = staircase();
        assert_eq!(polygon_area(&p), p.area());
        assert_eq!(brute::polygon_area(&p), p.area());
    }

    #[test]
    fn overlapping_rectangles() {
        let p = rect_poly(0, 0, 10, 10);
        let q = rect_poly(5, 5, 15, 15);
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(inter, 25);
        assert_eq!(union, 100 + 100 - 25);
        assert_eq!(intersection_area(&p, &q), 25);
    }

    #[test]
    fn disjoint_rectangles() {
        let p = rect_poly(0, 0, 4, 4);
        let q = rect_poly(10, 10, 14, 14);
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(inter, 0);
        assert_eq!(union, 32);
        assert_eq!(intersection_area(&p, &q), 0);
    }

    #[test]
    fn touching_rectangles_do_not_intersect() {
        let p = rect_poly(0, 0, 4, 4);
        let q = rect_poly(4, 0, 8, 4);
        assert_eq!(intersection_area(&p, &q), 0);
        let (_, union) = intersection_union_area(&p, &q);
        assert_eq!(union, 32);
    }

    #[test]
    fn nested_rectangles() {
        let outer = rect_poly(0, 0, 10, 10);
        let inner = rect_poly(2, 2, 5, 6);
        let (inter, union) = intersection_union_area(&outer, &inner);
        assert_eq!(inter, inner.area());
        assert_eq!(union, outer.area());
    }

    #[test]
    fn inclusion_exclusion_holds() {
        let p = rect_poly(0, 0, 8, 6);
        let q = RectilinearPolygon::new(vec![
            Point::new(4, 3),
            Point::new(12, 3),
            Point::new(12, 9),
            Point::new(6, 9),
            Point::new(6, 7),
            Point::new(4, 7),
        ])
        .unwrap();
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(union, p.area() + q.area() - inter);
    }

    #[test]
    fn pixels_inside_window_subset() {
        let p = rect_poly(0, 0, 10, 10);
        assert_eq!(pixels_inside(&p, &Rect::new(2, 2, 4, 4)), 4);
        assert_eq!(pixels_inside(&p, &Rect::new(8, 8, 12, 12)), 4);
        assert_eq!(pixels_inside(&p, &Rect::new(20, 20, 25, 25)), 0);
    }

    #[test]
    fn fast_path_matches_brute_oracle() {
        let shapes = [
            rect_poly(0, 0, 9, 7),
            staircase(),
            RectilinearPolygon::new(vec![
                Point::new(1, 0),
                Point::new(12, 0),
                Point::new(12, 6),
                Point::new(9, 6),
                Point::new(9, 2),
                Point::new(6, 2),
                Point::new(6, 6),
                Point::new(3, 6),
                Point::new(3, 2),
                Point::new(1, 2),
            ])
            .unwrap(),
        ];
        for p in &shapes {
            assert_eq!(polygon_area(p), brute::polygon_area(p));
            for q in &shapes {
                assert_eq!(
                    intersection_union_area(p, q),
                    brute::intersection_union_area(p, q),
                );
                assert_eq!(intersection_area(p, q), brute::intersection_area(p, q));
            }
            for window in [
                Rect::new(-2, -2, 4, 4),
                Rect::new(2, 1, 11, 5),
                Rect::new(5, 5, 5, 9),
            ] {
                assert_eq!(pixels_inside(p, &window), brute::pixels_inside(p, &window));
            }
        }
    }
}
