//! Brute-force pixel rasterization oracles.
//!
//! These functions evaluate areas by visiting every pixel of a bounding
//! region and testing containment with the even–odd rule. They are the
//! ground truth that every other area computation in the workspace (the
//! sweepline overlay in `sccg-clip`, PixelBox on the GPU simulator, and
//! PixelBox-CPU) is validated against, and they correspond directly to the
//! "pixelized view" of intersection and union described in §3.1 of the paper.

use crate::polygon::RectilinearPolygon;
use crate::rect::Rect;

/// Area of a single polygon obtained by counting interior pixels.
pub fn polygon_area(poly: &RectilinearPolygon) -> i64 {
    let mbr = poly.mbr();
    mbr.pixels()
        .filter(|&(x, y)| poly.contains_pixel(x, y))
        .count() as i64
}

/// Areas of the intersection and the union of two polygons, obtained by
/// classifying every pixel of the pair's combined MBR (Figure 4(a)):
/// a pixel inside both contributes to the intersection, a pixel inside at
/// least one contributes to the union.
pub fn intersection_union_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> (i64, i64) {
    let joint = p.mbr().union(&q.mbr());
    let mut inter = 0i64;
    let mut union = 0i64;
    for (x, y) in joint.pixels() {
        let in_p = p.contains_pixel(x, y);
        let in_q = q.contains_pixel(x, y);
        if in_p && in_q {
            inter += 1;
        }
        if in_p || in_q {
            union += 1;
        }
    }
    (inter, union)
}

/// Area of the intersection only, scanning just the intersection of the two
/// MBRs (pixels outside it cannot lie in both polygons).
pub fn intersection_area(p: &RectilinearPolygon, q: &RectilinearPolygon) -> i64 {
    let window = p.mbr().intersection(&q.mbr());
    if window.is_empty() {
        return 0;
    }
    window
        .pixels()
        .filter(|&(x, y)| p.contains_pixel(x, y) && q.contains_pixel(x, y))
        .count() as i64
}

/// Number of pixels of `window` lying inside the polygon. Used to check the
/// sampling-box classification logic against an exhaustive scan.
pub fn pixels_inside(poly: &RectilinearPolygon, window: &Rect) -> i64 {
    window
        .pixels()
        .filter(|&(x, y)| poly.contains_pixel(x, y))
        .count() as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn rect_poly(min_x: i32, min_y: i32, max_x: i32, max_y: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(min_x, min_y, max_x, max_y)).unwrap()
    }

    #[test]
    fn raster_area_matches_shoelace_for_rectangles() {
        let p = rect_poly(0, 0, 13, 7);
        assert_eq!(polygon_area(&p), p.area());
    }

    #[test]
    fn raster_area_matches_shoelace_for_staircase() {
        let p = RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(5, 0),
            Point::new(5, 1),
            Point::new(3, 1),
            Point::new(3, 3),
            Point::new(2, 3),
            Point::new(2, 5),
            Point::new(0, 5),
        ])
        .unwrap();
        assert_eq!(polygon_area(&p), p.area());
    }

    #[test]
    fn overlapping_rectangles() {
        let p = rect_poly(0, 0, 10, 10);
        let q = rect_poly(5, 5, 15, 15);
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(inter, 25);
        assert_eq!(union, 100 + 100 - 25);
        assert_eq!(intersection_area(&p, &q), 25);
    }

    #[test]
    fn disjoint_rectangles() {
        let p = rect_poly(0, 0, 4, 4);
        let q = rect_poly(10, 10, 14, 14);
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(inter, 0);
        assert_eq!(union, 32);
        assert_eq!(intersection_area(&p, &q), 0);
    }

    #[test]
    fn touching_rectangles_do_not_intersect() {
        let p = rect_poly(0, 0, 4, 4);
        let q = rect_poly(4, 0, 8, 4);
        assert_eq!(intersection_area(&p, &q), 0);
        let (_, union) = intersection_union_area(&p, &q);
        assert_eq!(union, 32);
    }

    #[test]
    fn nested_rectangles() {
        let outer = rect_poly(0, 0, 10, 10);
        let inner = rect_poly(2, 2, 5, 6);
        let (inter, union) = intersection_union_area(&outer, &inner);
        assert_eq!(inter, inner.area());
        assert_eq!(union, outer.area());
    }

    #[test]
    fn inclusion_exclusion_holds() {
        let p = rect_poly(0, 0, 8, 6);
        let q = RectilinearPolygon::new(vec![
            Point::new(4, 3),
            Point::new(12, 3),
            Point::new(12, 9),
            Point::new(6, 9),
            Point::new(6, 7),
            Point::new(4, 7),
        ])
        .unwrap();
        let (inter, union) = intersection_union_area(&p, &q);
        assert_eq!(union, p.area() + q.area() - inter);
    }

    #[test]
    fn pixels_inside_window_subset() {
        let p = rect_poly(0, 0, 10, 10);
        assert_eq!(pixels_inside(&p, &Rect::new(2, 2, 4, 4)), 4);
        assert_eq!(pixels_inside(&p, &Rect::new(8, 8, 12, 12)), 4);
        assert_eq!(pixels_inside(&p, &Rect::new(20, 20, 25, 25)), 0);
    }
}
