//! Integer grid points.

use std::fmt;
use std::ops::{Add, Sub};

/// A point on the integer pixel grid of a whole-slide image.
///
/// Coordinates are `i32`: whole-slide images are on the order of
/// 100,000 × 100,000 pixels (paper §1), which fits comfortably, and the area
/// arithmetic is carried out in `i64` to avoid overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Point {
    /// Horizontal coordinate (column).
    pub x: i32,
    /// Vertical coordinate (row).
    pub y: i32,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub const fn new(x: i32, y: i32) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Squared Euclidean distance to another point, in `i64` to avoid overflow.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> i64 {
        let dx = i64::from(self.x) - i64::from(other.x);
        let dy = i64::from(self.y) - i64::from(other.y);
        dx * dx + dy * dy
    }

    /// Manhattan (L1) distance to another point.
    #[inline]
    pub fn manhattan(&self, other: &Point) -> i64 {
        (i64::from(self.x) - i64::from(other.x)).abs()
            + (i64::from(self.y) - i64::from(other.y)).abs()
    }

    /// Scales both coordinates by an integer factor, checking for overflow.
    pub fn checked_scale(&self, factor: i32) -> Option<Point> {
        Some(Point {
            x: self.x.checked_mul(factor)?,
            y: self.y.checked_mul(factor)?,
        })
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(i32, i32)> for Point {
    #[inline]
    fn from((x, y): (i32, i32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(3, -7);
        assert_eq!(p.x, 3);
        assert_eq!(p.y, -7);
        assert_eq!(Point::ORIGIN, Point::new(0, 0));
        assert_eq!(Point::from((1, 2)), Point::new(1, 2));
    }

    #[test]
    fn arithmetic() {
        let a = Point::new(2, 3);
        let b = Point::new(-1, 5);
        assert_eq!(a + b, Point::new(1, 8));
        assert_eq!(a - b, Point::new(3, -2));
    }

    #[test]
    fn distances() {
        let a = Point::new(0, 0);
        let b = Point::new(3, 4);
        assert_eq!(a.distance_sq(&b), 25);
        assert_eq!(a.manhattan(&b), 7);
    }

    #[test]
    fn distance_does_not_overflow_for_whole_slide_coordinates() {
        // Whole-slide images reach ~100,000 pixels per side (paper §1);
        // squared distances overflow i32 and must be computed in i64.
        let a = Point::new(0, 0);
        let b = Point::new(100_000, 100_000);
        assert_eq!(a.distance_sq(&b), 2 * 100_000i64 * 100_000i64);
        assert_eq!(a.manhattan(&b), 200_000);
    }

    #[test]
    fn checked_scale_detects_overflow() {
        assert_eq!(Point::new(2, 3).checked_scale(10), Some(Point::new(20, 30)));
        assert_eq!(Point::new(i32::MAX, 0).checked_scale(2), None);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut pts = vec![Point::new(1, 5), Point::new(0, 9), Point::new(1, 2)];
        pts.sort();
        assert_eq!(
            pts,
            vec![Point::new(0, 9), Point::new(1, 2), Point::new(1, 5)]
        );
    }
}
