//! The cross-comparing query executor with per-operator profiling.

use crate::table::PolygonTable;
use sccg_clip::{intersection_area, intersection_geometry, union_area_direct};
use sccg_rtree::HilbertRTree;
use std::time::Instant;

/// Which SQL formulation of the cross-comparing query is executed (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPlan {
    /// Figure 1(a): join on `ST_Intersects`, compute
    /// `ST_Area(ST_Intersection(...))` and `ST_Area(ST_Union(...))` per pair.
    Unoptimized,
    /// Figure 1(b): join on the `&&` MBR-overlap operator, compute only
    /// `ST_Area(ST_Intersection(...))` and the two stand-alone `ST_Area`
    /// calls, deriving the union indirectly.
    Optimized,
}

/// Wall-clock seconds attributed to each query component, the decomposition
/// shown in Figure 2.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OperatorProfile {
    /// Building the GiST-style index over the inner table's MBRs.
    pub index_build: f64,
    /// Index search: finding candidate pairs by MBR overlap.
    pub index_search: f64,
    /// The `ST_Intersects` exact-geometry join predicate (unoptimized query
    /// only).
    pub st_intersects: f64,
    /// `ST_Area(ST_Intersection(p, q))`.
    pub area_of_intersection: f64,
    /// `ST_Area(ST_Union(p, q))` (unoptimized query only).
    pub area_of_union: f64,
    /// The stand-alone `ST_Area(p)` / `ST_Area(q)` calls (optimized query).
    pub st_area: f64,
    /// Everything else: ratio arithmetic, aggregation, result handling.
    pub other: f64,
}

impl OperatorProfile {
    /// Total profiled time.
    pub fn total(&self) -> f64 {
        self.index_build
            + self.index_search
            + self.st_intersects
            + self.area_of_intersection
            + self.area_of_union
            + self.st_area
            + self.other
    }

    /// The component percentages in the order
    /// `[index_build, index_search, st_intersects, area_of_intersection,
    /// area_of_union, st_area, other]`, summing to ~100.
    pub fn percentages(&self) -> [f64; 7] {
        let total = self.total();
        if total <= 0.0 {
            return [0.0; 7];
        }
        [
            self.index_build,
            self.index_search,
            self.st_intersects,
            self.area_of_intersection,
            self.area_of_union,
            self.st_area,
            self.other,
        ]
        .map(|component| component / total * 100.0)
    }
}

/// Result of one cross-comparing query execution.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The `J'` similarity of the two tables (average of per-pair ratios over
    /// pairs with a non-empty intersection).
    pub similarity: f64,
    /// Number of candidate pairs examined (MBR overlap).
    pub candidate_pairs: u64,
    /// Number of pairs with a non-empty intersection.
    pub intersecting_pairs: u64,
    /// Per-operator time decomposition.
    pub profile: OperatorProfile,
}

/// Executes the cross-comparing query between two polygon tables on a single
/// core, the PostGIS-S baseline.
pub fn execute_cross_comparison(
    outer: &PolygonTable,
    inner: &PolygonTable,
    plan: QueryPlan,
) -> QueryResult {
    let mut profile = OperatorProfile::default();

    // Index build over the inner table (GiST over MBRs).
    let started = Instant::now();
    let index = HilbertRTree::bulk_load(
        inner
            .rows()
            .iter()
            .enumerate()
            .map(|(j, r)| (r.polygon.mbr(), j as u32))
            .collect(),
    );
    profile.index_build = started.elapsed().as_secs_f64();

    // Index search: candidate pairs by MBR overlap (the `&&` operator, which
    // also underlies `ST_Intersects`' index path).
    let started = Instant::now();
    let mut candidates: Vec<(u32, u32)> = Vec::new();
    for (i, row) in outer.rows().iter().enumerate() {
        index.search(&row.polygon.mbr(), |_, &j| {
            candidates.push((i as u32, j));
        });
    }
    profile.index_search = started.elapsed().as_secs_f64();

    let mut ratio_sum = 0.0f64;
    let mut intersecting = 0u64;

    for &(i, j) in &candidates {
        let p = &outer.rows()[i as usize].polygon;
        let q = &inner.rows()[j as usize].polygon;
        match plan {
            QueryPlan::Unoptimized => {
                // ST_Intersects: exact geometric test (GEOS constructs enough
                // of the overlay to answer it).
                let started = Instant::now();
                let intersects = !intersection_geometry(p, q).is_empty();
                profile.st_intersects += started.elapsed().as_secs_f64();
                if !intersects {
                    continue;
                }
                // ST_Area(ST_Intersection(p, q)).
                let started = Instant::now();
                let inter = intersection_area(p, q);
                profile.area_of_intersection += started.elapsed().as_secs_f64();
                // ST_Area(ST_Union(p, q)).
                let started = Instant::now();
                let union = union_area_direct(p, q);
                profile.area_of_union += started.elapsed().as_secs_f64();

                let started = Instant::now();
                if inter > 0 && union > 0 {
                    ratio_sum += inter as f64 / union as f64;
                    intersecting += 1;
                }
                profile.other += started.elapsed().as_secs_f64();
            }
            QueryPlan::Optimized => {
                // ST_Area(ST_Intersection(p, q)).
                let started = Instant::now();
                let inter = intersection_area(p, q);
                profile.area_of_intersection += started.elapsed().as_secs_f64();
                // Stand-alone ST_Area(p) + ST_Area(q).
                let started = Instant::now();
                let area_p = p.area();
                let area_q = q.area();
                profile.st_area += started.elapsed().as_secs_f64();

                let started = Instant::now();
                let union = area_p + area_q - inter;
                if inter > 0 && union > 0 {
                    ratio_sum += inter as f64 / union as f64;
                    intersecting += 1;
                }
                profile.other += started.elapsed().as_secs_f64();
            }
        }
    }

    QueryResult {
        similarity: if intersecting == 0 {
            0.0
        } else {
            ratio_sum / intersecting as f64
        },
        candidate_pairs: candidates.len() as u64,
        intersecting_pairs: intersecting,
        profile,
    }
}

/// Executes the cross-comparing query with the PostGIS-M scheme (§5.7): the
/// outer table is partitioned into `streams` chunks, each chunk is executed
/// as an independent query stream, and the parallel makespan over `workers`
/// cores is modelled by greedy longest-processing-time assignment of the
/// measured chunk times (the host has a single core, so streams cannot
/// actually overlap). Returns the merged result and the modelled makespan in
/// seconds.
pub fn execute_parallel(
    outer: &PolygonTable,
    inner: &PolygonTable,
    plan: QueryPlan,
    streams: usize,
    workers: usize,
) -> (QueryResult, f64) {
    let chunks = outer.partition(streams.max(1));
    let mut chunk_times: Vec<f64> = Vec::with_capacity(chunks.len());
    let mut merged = QueryResult {
        similarity: 0.0,
        candidate_pairs: 0,
        intersecting_pairs: 0,
        profile: OperatorProfile::default(),
    };
    let mut ratio_sum = 0.0f64;
    for chunk in &chunks {
        let started = Instant::now();
        let result = execute_cross_comparison(chunk, inner, plan);
        chunk_times.push(started.elapsed().as_secs_f64());
        ratio_sum += result.similarity * result.intersecting_pairs as f64;
        merged.candidate_pairs += result.candidate_pairs;
        merged.intersecting_pairs += result.intersecting_pairs;
        merged.profile.index_build += result.profile.index_build;
        merged.profile.index_search += result.profile.index_search;
        merged.profile.st_intersects += result.profile.st_intersects;
        merged.profile.area_of_intersection += result.profile.area_of_intersection;
        merged.profile.area_of_union += result.profile.area_of_union;
        merged.profile.st_area += result.profile.st_area;
        merged.profile.other += result.profile.other;
    }
    if merged.intersecting_pairs > 0 {
        merged.similarity = ratio_sum / merged.intersecting_pairs as f64;
    }

    // Longest-processing-time greedy assignment of chunks to workers.
    chunk_times.sort_by(|a, b| b.partial_cmp(a).expect("finite times"));
    let mut worker_load = vec![0.0f64; workers.max(1)];
    for t in chunk_times {
        let (idx, _) = worker_load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("at least one worker");
        worker_load[idx] += t;
    }
    let makespan = worker_load.iter().cloned().fold(0.0, f64::max);
    (merged, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_datagen::{generate_tile_pair, TileSpec};

    fn tables() -> (PolygonTable, PolygonTable) {
        let tile = generate_tile_pair(&TileSpec {
            target_polygons: 120,
            width: 768,
            height: 768,
            seed: 11,
            ..TileSpec::default()
        });
        (
            PolygonTable::new("oligoastroiii_1_1", tile.first),
            PolygonTable::new("oligoastroiii_1_2", tile.second),
        )
    }

    #[test]
    fn optimized_and_unoptimized_queries_agree_on_results() {
        let (a, b) = tables();
        let opt = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        let unopt = execute_cross_comparison(&a, &b, QueryPlan::Unoptimized);
        assert_eq!(opt.candidate_pairs, unopt.candidate_pairs);
        assert_eq!(opt.intersecting_pairs, unopt.intersecting_pairs);
        assert!((opt.similarity - unopt.similarity).abs() < 1e-12);
        assert!(opt.similarity > 0.3 && opt.similarity <= 1.0);
    }

    #[test]
    fn query_matches_pairwise_reference() {
        let (a, b) = tables();
        let result = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        // Reference computation straight from the overlay library.
        let mut ratio_sum = 0.0;
        let mut intersecting = 0u64;
        let mut candidates = 0u64;
        for p in a.rows() {
            for q in b.rows() {
                if p.polygon.mbr().intersects(&q.polygon.mbr()) {
                    candidates += 1;
                    let areas = sccg_clip::pair_areas(&p.polygon, &q.polygon);
                    if let Some(r) = areas.ratio() {
                        ratio_sum += r;
                        intersecting += 1;
                    }
                }
            }
        }
        assert_eq!(result.candidate_pairs, candidates);
        assert_eq!(result.intersecting_pairs, intersecting);
        assert!((result.similarity - ratio_sum / intersecting as f64).abs() < 1e-12);
    }

    #[test]
    fn optimized_profile_is_dominated_by_area_of_intersection() {
        // Figure 2: in the optimized query, Area-of-Intersection captures
        // almost 90% of execution time while index work stays under ~6%.
        let (a, b) = tables();
        let result = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        let p = result.profile;
        assert!(p.area_of_union == 0.0);
        assert!(p.st_intersects == 0.0);
        assert!(
            p.area_of_intersection > 0.5 * p.total(),
            "area-of-intersection share {:.1}%",
            p.area_of_intersection / p.total() * 100.0
        );
        assert!(p.index_build + p.index_search < 0.3 * p.total());
    }

    #[test]
    fn unoptimized_profile_also_pays_for_union_and_intersects() {
        let (a, b) = tables();
        let result = execute_cross_comparison(&a, &b, QueryPlan::Unoptimized);
        let p = result.profile;
        assert!(p.area_of_union > 0.0);
        assert!(p.st_intersects > 0.0);
        // The three geometry-heavy operators dominate the unoptimized query.
        let heavy = p.st_intersects + p.area_of_intersection + p.area_of_union;
        assert!(heavy > 0.6 * p.total());
    }

    #[test]
    fn unoptimized_query_is_slower_than_optimized() {
        let (a, b) = tables();
        let opt = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        let unopt = execute_cross_comparison(&a, &b, QueryPlan::Unoptimized);
        assert!(unopt.profile.total() > opt.profile.total());
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let (a, b) = tables();
        let result = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        let sum: f64 = result.profile.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-6);
        assert_eq!(OperatorProfile::default().percentages(), [0.0; 7]);
    }

    #[test]
    fn parallel_execution_merges_results_and_models_speedup() {
        let (a, b) = tables();
        let single = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
        let (merged, makespan) = execute_parallel(&a, &b, QueryPlan::Optimized, 8, 4);
        assert_eq!(merged.candidate_pairs, single.candidate_pairs);
        assert_eq!(merged.intersecting_pairs, single.intersecting_pairs);
        assert!((merged.similarity - single.similarity).abs() < 1e-9);
        // The modelled parallel makespan must be shorter than the summed
        // sequential time but no better than perfect scaling.
        let sequential: f64 = merged.profile.total();
        assert!(makespan < sequential);
        assert!(makespan * 5.0 > sequential);
    }

    #[test]
    fn empty_tables_produce_empty_results() {
        let empty = PolygonTable::new("empty", Vec::new());
        let (a, _) = tables();
        let result = execute_cross_comparison(&empty, &a, QueryPlan::Optimized);
        assert_eq!(result.candidate_pairs, 0);
        assert_eq!(result.similarity, 0.0);
        let result = execute_cross_comparison(&a, &empty, QueryPlan::Optimized);
        assert_eq!(result.candidate_pairs, 0);
    }
}
