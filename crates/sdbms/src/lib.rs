//! A miniature spatial DBMS — the PostGIS stand-in.
//!
//! The paper's baseline executes the cross-comparing queries of Figure 1 in
//! PostGIS, whose spatial operators are implemented on top of GEOS. This
//! crate reproduces that execution path so the profiling experiment
//! (Figure 2) and the PostGIS-S / PostGIS-M baselines (Table 1, Figure 12)
//! can be regenerated:
//!
//! * [`table::PolygonTable`] — a polygon relation loaded from the text format.
//! * [`query`] — the cross-comparing query executor in its *unoptimized*
//!   (Figure 1(a)) and *optimized* (Figure 1(b)) forms, with a per-operator
//!   profiler that decomposes execution time into index search,
//!   `ST_Intersects`, area-of-intersection, area-of-union, `ST_Area` and
//!   everything else — exactly the decomposition Figure 2 reports.
//! * [`query::execute_parallel`] — the PostGIS-M scheme: polygon tables are
//!   partitioned into chunks processed by independent query streams, with the
//!   parallel makespan modelled by greedy assignment of measured chunk times
//!   to the available cores (the single-core host cannot overlap them for
//!   real).
//!
//! The exact overlay operators come from `sccg-clip`, playing the role GEOS
//! plays for PostGIS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;
pub mod table;

pub use query::{
    execute_cross_comparison, execute_parallel, OperatorProfile, QueryPlan, QueryResult,
};
pub use table::PolygonTable;
