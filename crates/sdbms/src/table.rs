//! Polygon relations.

use sccg_geometry::text::{parse_polygon_file, PolygonRecord};
use sccg_geometry::{GeometryError, Rect};

/// A named relation of polygon rows, the SDBMS equivalent of one
/// segmentation result loaded into a table such as `oligoastroiii_1_1`
/// (Figure 1).
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonTable {
    name: String,
    rows: Vec<PolygonRecord>,
}

impl PolygonTable {
    /// Creates a table from already-parsed records.
    pub fn new(name: impl Into<String>, rows: Vec<PolygonRecord>) -> Self {
        PolygonTable {
            name: name.into(),
            rows,
        }
    }

    /// Loads a table from polygon-file text (the `COPY`/loader path).
    pub fn load_text(name: impl Into<String>, text: &str) -> Result<Self, GeometryError> {
        Ok(Self::new(name, parse_polygon_file(text)?))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows in load order.
    pub fn rows(&self) -> &[PolygonRecord] {
        &self.rows
    }

    /// MBRs of every row, in row order (what the GiST index stores).
    pub fn mbrs(&self) -> Vec<Rect> {
        self.rows.iter().map(|r| r.polygon.mbr()).collect()
    }

    /// Splits the table into `chunks` row-range partitions of nearly equal
    /// size, the partitioning used to parallelize PostGIS query streams
    /// (§5.7).
    pub fn partition(&self, chunks: usize) -> Vec<PolygonTable> {
        let chunks = chunks.max(1);
        let per_chunk = self.rows.len().div_ceil(chunks).max(1);
        self.rows
            .chunks(per_chunk)
            .enumerate()
            .map(|(i, rows)| PolygonTable {
                name: format!("{}_part{}", self.name, i),
                rows: rows.to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::text::write_polygon_file;
    use sccg_geometry::RectilinearPolygon;

    fn sample_table(n: i32) -> PolygonTable {
        let rows: Vec<PolygonRecord> = (0..n)
            .map(|i| PolygonRecord {
                id: i as u64,
                polygon: RectilinearPolygon::rectangle(Rect::new(i * 3, 0, i * 3 + 4, 5)).unwrap(),
            })
            .collect();
        PolygonTable::new("sample", rows)
    }

    #[test]
    fn load_from_text_round_trips() {
        let table = sample_table(10);
        let text = write_polygon_file(table.rows());
        let loaded = PolygonTable::load_text("sample", &text).unwrap();
        assert_eq!(loaded.rows(), table.rows());
        assert_eq!(loaded.name(), "sample");
        assert_eq!(loaded.len(), 10);
        assert!(!loaded.is_empty());
    }

    #[test]
    fn load_rejects_malformed_text() {
        assert!(PolygonTable::load_text("bad", "1 4 0 0 zz").is_err());
    }

    #[test]
    fn mbrs_match_rows() {
        let table = sample_table(5);
        let mbrs = table.mbrs();
        assert_eq!(mbrs.len(), 5);
        assert_eq!(mbrs[2], Rect::new(6, 0, 10, 5));
    }

    #[test]
    fn partition_covers_all_rows_without_overlap() {
        let table = sample_table(17);
        for chunks in [1usize, 2, 3, 5, 16, 40] {
            let parts = table.partition(chunks);
            let total: usize = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, 17, "chunks={chunks}");
            assert!(parts.len() <= chunks.max(1));
            let mut seen = std::collections::HashSet::new();
            for part in &parts {
                for row in part.rows() {
                    assert!(seen.insert(row.id));
                }
            }
        }
    }

    #[test]
    fn partition_of_empty_table() {
        let table = PolygonTable::new("empty", Vec::new());
        assert!(table.partition(4).is_empty());
    }
}
