//! Hilbert R-tree spatial index and MBR join.
//!
//! The paper's *builder* stage constructs a spatial index over the polygons
//! of each tile ("Since polygons are small, Hilbert R-Tree is used to
//! accelerate index building", §4.1), and the *filter* stage performs a
//! pairwise index search producing the array of polygon pairs whose MBRs
//! intersect. This crate provides both primitives:
//!
//! * [`hilbert`] — the Hilbert space-filling curve used to order entries.
//! * [`HilbertRTree`] — a bulk-loaded, packed R-tree keyed by the Hilbert
//!   value of each entry's MBR centre.
//! * [`join`] — the MBR-intersection join between two indexed polygon sets,
//!   plus a quadratic reference join used in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hilbert;
pub mod join;
pub mod tree;

pub use join::{mbr_join, naive_mbr_join};
pub use tree::{HilbertRTree, TreeStats};
