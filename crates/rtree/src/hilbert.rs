//! Hilbert space-filling curve.
//!
//! The Hilbert R-tree (Kamel & Faloutsos, VLDB 1994 — reference \[20\] of the
//! paper) orders rectangle entries by the Hilbert value of their centre and
//! then packs them into leaves in that order. The curve preserves spatial
//! locality well, which keeps the bounding rectangles of packed leaves tight.

/// Order of the Hilbert curve used for indexing: coordinates are clamped to
/// `[0, 2^ORDER)`. 17 bits per axis comfortably covers whole-slide images
/// (~100,000 pixels per side).
pub const ORDER: u32 = 17;

/// Side length of the Hilbert grid (`2^ORDER`).
pub const GRID: u32 = 1 << ORDER;

/// Maps an `(x, y)` cell of the `GRID × GRID` Hilbert grid to its distance
/// along the curve. Coordinates outside the grid are clamped.
///
/// This is the classic iterative rotate-and-flip formulation.
pub fn xy_to_d(x: u32, y: u32) -> u64 {
    let mut x = x.min(GRID - 1);
    let mut y = y.min(GRID - 1);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = GRID / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant (reflection is about the full grid here,
        // matching the standard iterative formulation).
        if ry == 0 {
            if rx == 1 {
                x = GRID - 1 - x;
                y = GRID - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Maps a distance along the curve back to its `(x, y)` cell. Inverse of
/// [`xy_to_d`] for distances below `GRID * GRID`.
pub fn d_to_xy(d: u64) -> (u32, u32) {
    let mut rx: u64;
    let mut ry: u64;
    let mut t = d;
    let mut x: u64 = 0;
    let mut y: u64 = 0;
    let mut s: u64 = 1;
    while s < u64::from(GRID) {
        rx = 1 & (t / 2);
        ry = 1 & (t ^ rx);
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s - 1 - x;
                y = s - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += s * rx;
        y += s * ry;
        t /= 4;
        s *= 2;
    }
    (x as u32, y as u32)
}

/// Hilbert value of an arbitrary signed pixel coordinate. Negative
/// coordinates (polygons may be generated near tile borders with small
/// negative offsets) are shifted into the positive quadrant before mapping.
pub fn hilbert_value(x: i32, y: i32) -> u64 {
    // Shift by half the grid so that typical coordinates around the origin
    // land inside the curve's domain, then clamp.
    let shift = (GRID / 2) as i64;
    let ux = (i64::from(x) + shift).clamp(0, i64::from(GRID - 1)) as u32;
    let uy = (i64::from(y) + shift).clamp(0, i64::from(GRID - 1)) as u32;
    xy_to_d(ux, uy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for d in 0..4096u64 {
            let (x, y) = d_to_xy(d);
            assert_eq!(xy_to_d(x, y), d, "round trip failed at d={d}");
        }
    }

    #[test]
    fn curve_visits_adjacent_cells() {
        // Successive curve positions differ by exactly one grid step: this is
        // the locality property that makes the ordering useful for packing.
        let mut prev = d_to_xy(0);
        for d in 1..4096u64 {
            let cur = d_to_xy(d);
            let dist = (i64::from(cur.0) - i64::from(prev.0)).abs()
                + (i64::from(cur.1) - i64::from(prev.1)).abs();
            assert_eq!(dist, 1, "discontinuity between d={} and d={}", d - 1, d);
            prev = cur;
        }
    }

    #[test]
    fn distinct_cells_have_distinct_values() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for x in 0..64u32 {
            for y in 0..64u32 {
                assert!(seen.insert(xy_to_d(x, y)));
            }
        }
    }

    #[test]
    fn hilbert_value_clamps_out_of_range_coordinates() {
        // Must not panic or wrap for extreme inputs.
        let _ = hilbert_value(i32::MIN, i32::MAX);
        let _ = hilbert_value(i32::MAX, i32::MIN);
        assert_eq!(hilbert_value(0, 0), hilbert_value(0, 0));
    }

    #[test]
    fn nearby_points_tend_to_have_nearby_values() {
        // Locality is statistical, not absolute; check that the average curve
        // distance of adjacent pixels is far smaller than that of far-apart
        // pixels.
        let mut near = 0f64;
        let mut far = 0f64;
        let samples = 200;
        for i in 0..samples {
            let x = (i * 37) % 1000;
            let y = (i * 91) % 1000;
            let base = hilbert_value(x, y) as f64;
            near += (hilbert_value(x + 1, y) as f64 - base).abs();
            far += (hilbert_value(x + 5000, y + 5000) as f64 - base).abs();
        }
        assert!(near / samples as f64 * 10.0 < far / samples as f64);
    }
}
