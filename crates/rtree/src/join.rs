//! MBR-intersection join between two rectangle sets.
//!
//! This is the *filter* stage primitive (paper §4.1): given the MBRs of the
//! polygons produced by two segmentation runs over the same tile, produce
//! every index pair whose MBRs intersect. Only those candidate pairs are
//! handed to the aggregator (PixelBox) for exact area computation.

use crate::tree::HilbertRTree;
use sccg_geometry::Rect;

/// Computes all pairs `(i, j)` such that `left[i]` intersects `right[j]`,
/// by bulk-loading a Hilbert R-tree over the smaller side and probing it with
/// the other side. Pairs are returned in probe order (sorted by the outer
/// index), matching the deterministic order expected by the aggregator.
pub fn mbr_join(left: &[Rect], right: &[Rect]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    if left.is_empty() || right.is_empty() {
        return out;
    }
    // Index the smaller side to keep build cost low.
    if right.len() <= left.len() {
        let tree = HilbertRTree::bulk_load(
            right
                .iter()
                .enumerate()
                .map(|(j, r)| (*r, j as u32))
                .collect(),
        );
        for (i, l) in left.iter().enumerate() {
            tree.search(l, |_, &j| out.push((i as u32, j)));
        }
    } else {
        let tree = HilbertRTree::bulk_load(
            left.iter()
                .enumerate()
                .map(|(i, r)| (*r, i as u32))
                .collect(),
        );
        for (j, r) in right.iter().enumerate() {
            tree.search(r, |_, &i| out.push((i, j as u32)));
        }
        out.sort_unstable();
    }
    out
}

/// Quadratic reference join used to validate [`mbr_join`] in tests and to
/// quantify the benefit of indexing in benchmarks.
pub fn naive_mbr_join(left: &[Rect], right: &[Rect]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for (i, l) in left.iter().enumerate() {
        for (j, r) in right.iter().enumerate() {
            if l.intersects(r) {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_grids() -> (Vec<Rect>, Vec<Rect>) {
        // Two overlapping grids of 3x3 squares; the second grid is shifted by
        // one pixel so each square overlaps up to four of the other grid.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                a.push(Rect::new(i * 4, j * 4, i * 4 + 3, j * 4 + 3));
                b.push(Rect::new(i * 4 + 1, j * 4 + 1, i * 4 + 4, j * 4 + 4));
            }
        }
        (a, b)
    }

    #[test]
    fn join_matches_naive_on_shifted_grids() {
        let (a, b) = shifted_grids();
        let mut fast = mbr_join(&a, &b);
        let mut naive = naive_mbr_join(&a, &b);
        fast.sort_unstable();
        naive.sort_unstable();
        assert_eq!(fast, naive);
        assert!(!fast.is_empty());
    }

    #[test]
    fn join_handles_asymmetric_sizes() {
        let (a, b) = shifted_grids();
        let small = &b[..7];
        let mut fast = mbr_join(&a, small);
        let mut naive = naive_mbr_join(&a, small);
        fast.sort_unstable();
        naive.sort_unstable();
        assert_eq!(fast, naive);

        let mut fast_rev = mbr_join(small, &a);
        let mut naive_rev = naive_mbr_join(small, &a);
        fast_rev.sort_unstable();
        naive_rev.sort_unstable();
        assert_eq!(fast_rev, naive_rev);
    }

    #[test]
    fn empty_inputs_produce_empty_joins() {
        let (a, _) = shifted_grids();
        assert!(mbr_join(&a, &[]).is_empty());
        assert!(mbr_join(&[], &a).is_empty());
        assert!(mbr_join(&[], &[]).is_empty());
    }

    #[test]
    fn disjoint_sets_produce_empty_join() {
        let a = vec![Rect::new(0, 0, 5, 5)];
        let b = vec![Rect::new(100, 100, 105, 105)];
        assert!(mbr_join(&a, &b).is_empty());
    }

    #[test]
    fn identical_sets_self_join() {
        let (a, _) = shifted_grids();
        let pairs = mbr_join(&a, &a);
        // Squares are disjoint within one grid, so the self-join is exactly
        // the diagonal.
        assert_eq!(pairs.len(), a.len());
        for (i, j) in pairs {
            assert_eq!(i, j);
        }
    }
}
