//! Packed Hilbert R-tree with bulk loading.

use crate::hilbert::hilbert_value;
use sccg_geometry::Rect;

/// Default maximum number of entries per node. The paper's polygons are very
/// small and numerous, so a moderately wide fanout keeps the tree shallow
/// without bloating node scans.
pub const DEFAULT_FANOUT: usize = 16;

/// A bulk-loaded, immutable Hilbert R-tree mapping rectangles to payloads.
///
/// Construction sorts the entries by the Hilbert value of their MBR centre
/// and packs them left-to-right into leaves of `fanout` entries, then builds
/// internal levels the same way — the classic "Hilbert-packed" bulk load of
/// Kamel & Faloutsos. Lookups descend only into subtrees whose bounding
/// rectangle intersects the query window.
#[derive(Debug, Clone)]
pub struct HilbertRTree<T> {
    fanout: usize,
    /// Leaf entries in Hilbert order.
    entries: Vec<(Rect, T)>,
    /// All internal nodes, level by level, root last. Each node stores its
    /// bounding rectangle and the index range of its children in the level
    /// below (or in `entries` for level 0).
    levels: Vec<Vec<Node>>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    mbr: Rect,
    /// Start index of this node's children in the level below.
    child_start: usize,
    /// One-past-the-end index of this node's children.
    child_end: usize,
}

/// Structural statistics of a built tree, exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of indexed entries.
    pub entries: usize,
    /// Number of levels above the leaves (0 for an empty tree).
    pub height: usize,
    /// Total number of internal nodes across all levels.
    pub nodes: usize,
}

impl<T> HilbertRTree<T> {
    /// Bulk loads a tree with the default fanout.
    pub fn bulk_load(items: Vec<(Rect, T)>) -> Self {
        Self::bulk_load_with_fanout(items, DEFAULT_FANOUT)
    }

    /// Bulk loads a tree with an explicit fanout (minimum 2).
    pub fn bulk_load_with_fanout(mut items: Vec<(Rect, T)>, fanout: usize) -> Self {
        let fanout = fanout.max(2);
        // Sort by Hilbert value of the MBR centre.
        items.sort_by_key(|(rect, _)| {
            let (cx, cy) = rect.center_pixel();
            hilbert_value(cx, cy)
        });

        let mut levels: Vec<Vec<Node>> = Vec::new();
        if !items.is_empty() {
            // Level 0: group leaf entries.
            let mut level: Vec<Node> = items
                .chunks(fanout)
                .scan(0usize, |start, chunk| {
                    let child_start = *start;
                    *start += chunk.len();
                    let mbr = chunk.iter().fold(Rect::EMPTY, |acc, (r, _)| acc.union(r));
                    Some(Node {
                        mbr,
                        child_start,
                        child_end: *start,
                    })
                })
                .collect();
            levels.push(level.clone());
            // Higher levels until a single root remains.
            while level.len() > 1 {
                let next: Vec<Node> = level
                    .chunks(fanout)
                    .scan(0usize, |start, chunk| {
                        let child_start = *start;
                        *start += chunk.len();
                        let mbr = chunk.iter().fold(Rect::EMPTY, |acc, n| acc.union(&n.mbr));
                        Some(Node {
                            mbr,
                            child_start,
                            child_end: *start,
                        })
                    })
                    .collect();
                levels.push(next.clone());
                level = next;
            }
        }

        HilbertRTree {
            fanout,
            entries: items,
            levels,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the tree indexes no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bounding rectangle of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn root_mbr(&self) -> Rect {
        self.levels
            .last()
            .and_then(|l| l.first())
            .map(|n| n.mbr)
            .unwrap_or(Rect::EMPTY)
    }

    /// Structural statistics.
    pub fn stats(&self) -> TreeStats {
        TreeStats {
            entries: self.entries.len(),
            height: self.levels.len(),
            nodes: self.levels.iter().map(|l| l.len()).sum(),
        }
    }

    /// Calls `visit` for every entry whose rectangle intersects `query`.
    pub fn search<'a, F: FnMut(&'a Rect, &'a T)>(&'a self, query: &Rect, mut visit: F) {
        if self.entries.is_empty() || query.is_empty() {
            return;
        }
        let top = self.levels.len() - 1;
        // Manual stack of (level, node index) to avoid recursion.
        let mut stack: Vec<(usize, usize)> = Vec::with_capacity(self.levels.len() * self.fanout);
        for (i, node) in self.levels[top].iter().enumerate() {
            if node.mbr.intersects(query) {
                stack.push((top, i));
            }
        }
        while let Some((level, idx)) = stack.pop() {
            let node = self.levels[level][idx];
            if level == 0 {
                for (rect, value) in &self.entries[node.child_start..node.child_end] {
                    if rect.intersects(query) {
                        visit(rect, value);
                    }
                }
            } else {
                for (child_idx, child) in self.levels[level - 1][node.child_start..node.child_end]
                    .iter()
                    .enumerate()
                {
                    if child.mbr.intersects(query) {
                        stack.push((level - 1, node.child_start + child_idx));
                    }
                }
            }
        }
    }

    /// Convenience wrapper collecting matching payload references.
    pub fn query(&self, query: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.search(query, |_, v| out.push(v));
        out
    }

    /// Iterates over all entries in Hilbert order.
    pub fn entries(&self) -> impl Iterator<Item = &(Rect, T)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_rects(n: i32) -> Vec<(Rect, usize)> {
        // n x n unit squares spaced 2 apart so none intersect each other.
        let mut v = Vec::new();
        let mut id = 0usize;
        for i in 0..n {
            for j in 0..n {
                v.push((Rect::new(i * 2, j * 2, i * 2 + 1, j * 2 + 1), id));
                id += 1;
            }
        }
        v
    }

    #[test]
    fn empty_tree_behaves() {
        let tree: HilbertRTree<u32> = HilbertRTree::bulk_load(vec![]);
        assert!(tree.is_empty());
        assert_eq!(tree.query(&Rect::new(0, 0, 10, 10)), Vec::<&u32>::new());
        assert_eq!(
            tree.stats(),
            TreeStats {
                entries: 0,
                height: 0,
                nodes: 0
            }
        );
        assert!(tree.root_mbr().is_empty());
    }

    #[test]
    fn single_entry() {
        let tree = HilbertRTree::bulk_load(vec![(Rect::new(5, 5, 8, 9), 42u32)]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.query(&Rect::new(0, 0, 6, 6)), vec![&42]);
        assert!(tree.query(&Rect::new(0, 0, 5, 5)).is_empty());
        assert_eq!(tree.root_mbr(), Rect::new(5, 5, 8, 9));
    }

    #[test]
    fn point_queries_find_exactly_one_square() {
        let tree = HilbertRTree::bulk_load(grid_rects(20));
        for i in 0..20 {
            for j in 0..20 {
                let q = Rect::new(i * 2, j * 2, i * 2 + 1, j * 2 + 1);
                let found = tree.query(&q);
                assert_eq!(found.len(), 1);
            }
        }
    }

    #[test]
    fn window_query_matches_brute_force() {
        let items = grid_rects(30);
        let tree = HilbertRTree::bulk_load(items.clone());
        let windows = [
            Rect::new(0, 0, 10, 10),
            Rect::new(5, 7, 23, 31),
            Rect::new(-5, -5, 3, 3),
            Rect::new(100, 100, 200, 200),
            Rect::new(0, 0, 60, 60),
        ];
        for w in windows {
            let mut expected: Vec<usize> = items
                .iter()
                .filter(|(r, _)| r.intersects(&w))
                .map(|(_, id)| *id)
                .collect();
            let mut got: Vec<usize> = tree.query(&w).into_iter().copied().collect();
            expected.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expected, "window {w:?}");
        }
    }

    #[test]
    fn tree_height_grows_logarithmically() {
        let tree = HilbertRTree::bulk_load_with_fanout(grid_rects(32), 8);
        let stats = tree.stats();
        assert_eq!(stats.entries, 1024);
        // 1024 entries / fanout 8 = 128 leaves, 16, 2, 1 -> height 4.
        assert_eq!(stats.height, 4);
        assert!(stats.nodes >= 128);
    }

    #[test]
    fn root_mbr_covers_all_entries() {
        let items = grid_rects(10);
        let tree = HilbertRTree::bulk_load(items.clone());
        let root = tree.root_mbr();
        for (r, _) in &items {
            assert!(root.contains_rect(r));
        }
    }

    #[test]
    fn degenerate_fanout_is_clamped() {
        let tree = HilbertRTree::bulk_load_with_fanout(grid_rects(4), 0);
        assert_eq!(tree.len(), 16);
        assert_eq!(tree.query(&Rect::new(0, 0, 8, 8)).len(), 16);
    }

    #[test]
    fn overlapping_entries_are_all_reported() {
        let items: Vec<(Rect, usize)> = (0..50)
            .map(|i| (Rect::new(0, 0, 10 + i, 10 + i), i as usize))
            .collect();
        let tree = HilbertRTree::bulk_load(items);
        assert_eq!(tree.query(&Rect::new(5, 5, 6, 6)).len(), 50);
    }
}
