//! Property tests: the Hilbert R-tree and the MBR join must agree with
//! brute force on arbitrary rectangle sets.

use proptest::prelude::*;
use sccg_geometry::Rect;
use sccg_rtree::{mbr_join, naive_mbr_join, HilbertRTree};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (-200i32..200, -200i32..200, 1i32..40, 1i32..40)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tree_query_agrees_with_linear_scan(
        rects in prop::collection::vec(arb_rect(), 0..200),
        query in arb_rect(),
        fanout in 2usize..20,
    ) {
        let items: Vec<(Rect, usize)> = rects.iter().copied().enumerate().map(|(i, r)| (r, i)).collect();
        let tree = HilbertRTree::bulk_load_with_fanout(items, fanout);
        let mut got: Vec<usize> = tree.query(&query).into_iter().copied().collect();
        let mut expected: Vec<usize> = rects
            .iter()
            .enumerate()
            .filter(|(_, r)| r.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn join_agrees_with_naive(
        left in prop::collection::vec(arb_rect(), 0..60),
        right in prop::collection::vec(arb_rect(), 0..60),
    ) {
        let mut fast = mbr_join(&left, &right);
        let mut naive = naive_mbr_join(&left, &right);
        fast.sort_unstable();
        naive.sort_unstable();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn join_is_symmetric(
        left in prop::collection::vec(arb_rect(), 0..50),
        right in prop::collection::vec(arb_rect(), 0..50),
    ) {
        let mut forward = mbr_join(&left, &right);
        let mut backward: Vec<(u32, u32)> = mbr_join(&right, &left)
            .into_iter()
            .map(|(a, b)| (b, a))
            .collect();
        forward.sort_unstable();
        backward.sort_unstable();
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn tree_stats_are_consistent(rects in prop::collection::vec(arb_rect(), 1..300), fanout in 2usize..12) {
        let items: Vec<(Rect, u32)> = rects.iter().copied().enumerate().map(|(i, r)| (r, i as u32)).collect();
        let tree = HilbertRTree::bulk_load_with_fanout(items, fanout);
        let stats = tree.stats();
        prop_assert_eq!(stats.entries, rects.len());
        prop_assert!(stats.height >= 1);
        // Height bound: ceil(log_fanout(n)) + 1 is a generous upper bound.
        let mut cap = 1usize;
        let mut h = 0usize;
        while cap < rects.len() {
            cap *= fanout;
            h += 1;
        }
        prop_assert!(stats.height <= h.max(1) + 1);
        // Root MBR covers every entry.
        let root = tree.root_mbr();
        for r in &rects {
            prop_assert!(root.contains_rect(r));
        }
    }
}
