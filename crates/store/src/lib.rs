//! Out-of-core slide storage: an on-disk columnar tile format with demand
//! paging.
//!
//! Whole-slide images are on the order of 100,000 × 100,000 pixels and carry
//! hundreds of thousands of segmented nuclei per slide (paper §1); holding
//! every registered slide's decoded polygons in memory caps how many slides
//! a comparison service can serve. This crate moves registered slides to
//! disk and pages tiles back in on demand:
//!
//! * [`mod@format`] — the columnar file format: FNV-1a–checksummed per-tile
//!   blocks of offset-indexed polygon records, a footer index mapping each
//!   tile to `(offset, len, polygon_count, checksum)`, and a trailer that
//!   locates and checksums the footer. [`SlideFileWriter`] streams tiles to
//!   disk one at a time (O(largest tile) memory); [`SlideFile`] validates
//!   the index at open and serves verified single-tile reads.
//! * [`pager`] — [`TileStorage`], a bounded LRU of resident decoded tiles
//!   over a [`SlideFile`]. Peak memory is O(residency bound × tile),
//!   independent of slide size; [`PagerStats`] reports hits, misses,
//!   coalesced (single-flight) faults, hit rate and peak residency. The
//!   pager also exposes the scheduler-facing locality surface: recency-
//!   neutral residency probes ([`ResidencySnapshot`]), per-tile fault
//!   affinity, and a never-evicting [`TileStorage::prefetch`].
//!
//! Failure semantics: a corrupt or truncated tile block fails *that tile's*
//! reads with [`sccg::SccgError::Storage`] — queries over other tiles, and
//! the process, are unaffected. A per-tile circuit breaker
//! ([`pager::QUARANTINE_THRESHOLD`]) quarantines tiles that fail reads
//! repeatedly instead of re-reading a known-bad block on every query.
//! Writers are crash-safe: [`SlideFileWriter`] streams into a
//! `.partial` temp file and publishes the final path with one atomic
//! rename, so an interrupted registration never leaves a half-written
//! slide where a reader could open it — [`recover_dir`] sweeps orphaned
//! partials at startup. An optional [`sccg::FaultInjector`] can be armed
//! on both reads ([`SlideFile::set_faults`]) and writes
//! ([`SlideFileWriter::create_with_faults`]) for deterministic failure
//! testing; when absent, the hooks are a no-op.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod pager;

pub use format::{
    decode_tile, encode_tile, fnv1a_64, partial_path, recover_dir, SlideFile, SlideFileWriter,
    TileIndexEntry, FORMAT_VERSION, HEADER_MAGIC, PARTIAL_SUFFIX, TRAILER_MAGIC,
};
pub use pager::{PagerStats, ResidencySnapshot, TileStorage, QUARANTINE_THRESHOLD};
