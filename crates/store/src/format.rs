//! The on-disk columnar tile format.
//!
//! One slide is one file of *blocks* — one block per tile — followed by a
//! footer index that maps each tile to its block. All integers are
//! little-endian; every block and the footer carry an FNV-1a 64 checksum
//! (the same process-stable fingerprint idiom the serving layer uses for
//! cache keys), so a bit flip anywhere in a block is caught at read time and
//! fails *that tile's* reads with [`SccgError::Storage`] instead of
//! corrupting query results or crashing the process.
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────────┐
//! │ header   magic "SCCGTILE" (8) · version u32 · reserved u32       │ 16 B
//! ├──────────────────────────────────────────────────────────────────┤
//! │ block 0  ┐ columnar tile payload (see below)                     │
//! │ block 1  │ one block per tile, byte-addressed by the footer      │
//! │   …      ┘                                                       │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ footer   tile_count u32                                          │
//! │          per tile: offset u64 · len u64 · polygons u32 ·         │
//! │                    checksum u64                    (28 B each)   │
//! ├──────────────────────────────────────────────────────────────────┤
//! │ trailer  footer_offset u64 · footer_checksum u64 ·               │ 24 B
//! │          magic "SCCGINDX" (8)                                    │
//! └──────────────────────────────────────────────────────────────────┘
//! ```
//!
//! A block stores its polygon records in *columns*, not row-by-row:
//!
//! ```text
//! polygon_count u32
//! ids            u64 × n      (record identifiers)
//! vertex_counts  u32 × n      (per-polygon chain lengths)
//! xs             i32 × Σ counts   (all x coordinates, chain-concatenated)
//! ys             i32 × Σ counts   (all y coordinates, chain-concatenated)
//! ```
//!
//! Columnar layout keeps the vertex data contiguous (the decode hot loop is
//! two straight `i32` scans) and makes the record codec trivially
//! round-trippable: decode rebuilds each vertex chain in order, so the
//! decoded records are bit-identical to what was encoded — id, vertex order,
//! tile and polygon counts. The footer is read once at open; tile reads are
//! one seek + one contiguous read each, which is what the demand pager
//! ([`crate::TileStorage`]) amortizes behind its LRU.

use sccg::sync::lock;
use sccg::{FaultInjector, SccgError};
use sccg_geometry::text::PolygonRecord;
use sccg_geometry::{Point, RectilinearPolygon};
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Magic bytes opening every slide file.
pub const HEADER_MAGIC: &[u8; 8] = b"SCCGTILE";
/// Magic bytes closing every slide file (the trailer).
pub const TRAILER_MAGIC: &[u8; 8] = b"SCCGINDX";
/// Format version stamped into (and required from) the header.
pub const FORMAT_VERSION: u32 = 1;
/// Suffix of the temporary file a [`SlideFileWriter`] streams into before
/// the atomic rename in [`finish`](SlideFileWriter::finish). A file with
/// this suffix is by definition an incomplete slide: a crash mid-write
/// leaves one behind, and [`recover_dir`] removes it at startup.
pub const PARTIAL_SUFFIX: &str = ".partial";

const HEADER_BYTES: u64 = 16;
const TRAILER_BYTES: u64 = 24;
const INDEX_ENTRY_BYTES: usize = 28;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice. Any single-byte change changes the digest
/// (xor-then-multiply-by-odd-prime is injective in the running state), which
/// is exactly the containment the per-block checksums need.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// One tile's entry in the footer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileIndexEntry {
    /// Byte offset of the tile's block from the start of the file.
    pub offset: u64,
    /// Length of the block in bytes.
    pub len: u64,
    /// Number of polygon records in the block.
    pub polygon_count: u32,
    /// FNV-1a 64 of the block's bytes.
    pub checksum: u64,
}

fn storage_error(detail: impl Into<String>) -> SccgError {
    SccgError::Storage {
        detail: detail.into(),
    }
}

fn io_error(context: &str, path: &Path, err: std::io::Error) -> SccgError {
    storage_error(format!("{context} {}: {err}", path.display()))
}

/// The temporary path a writer streams into before the atomic rename to
/// `path`: the final name with [`PARTIAL_SUFFIX`] appended.
pub fn partial_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(PARTIAL_SUFFIX);
    PathBuf::from(name)
}

/// Startup recovery scan: removes every orphaned `*.partial` file under
/// `dir` (incomplete slides left behind by a crash mid-registration) and
/// returns the paths it removed. A missing directory is an empty scan, not
/// an error, so recovery can run before the first registration ever
/// happens.
pub fn recover_dir(dir: &Path) -> Result<Vec<PathBuf>, SccgError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(io_error("scan", dir, err)),
    };
    let mut removed = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| io_error("scan", dir, e))?.path();
        let is_partial = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(PARTIAL_SUFFIX));
        if is_partial {
            std::fs::remove_file(&path).map_err(|e| io_error("remove partial", &path, e))?;
            removed.push(path);
        }
    }
    Ok(removed)
}

/// Encodes one tile's records as a columnar block (see the module docs).
pub fn encode_tile(records: &[PolygonRecord]) -> Vec<u8> {
    let total_vertices: usize = records.iter().map(|r| r.polygon.vertex_count()).sum();
    let mut out = Vec::with_capacity(4 + records.len() * 12 + total_vertices * 8);
    out.extend_from_slice(&(records.len() as u32).to_le_bytes());
    for record in records {
        out.extend_from_slice(&record.id.to_le_bytes());
    }
    for record in records {
        out.extend_from_slice(&(record.polygon.vertex_count() as u32).to_le_bytes());
    }
    for record in records {
        for v in record.polygon.vertices() {
            out.extend_from_slice(&v.x.to_le_bytes());
        }
    }
    for record in records {
        for v in record.polygon.vertices() {
            out.extend_from_slice(&v.y.to_le_bytes());
        }
    }
    out
}

/// Cursor over a block's bytes; every read is bounds-checked so a truncated
/// or miscounted block decodes to a typed error, never a panic.
struct BlockReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BlockReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SccgError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                storage_error(format!(
                    "block truncated: wanted {n} bytes at offset {}, block is {} bytes",
                    self.pos,
                    self.bytes.len()
                ))
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SccgError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SccgError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> Result<i32, SccgError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

/// Decodes a columnar block back into its polygon records. The decoded
/// records are bit-identical to what [`encode_tile`] consumed: same ids,
/// same vertex chains in the same order.
pub fn decode_tile(bytes: &[u8]) -> Result<Vec<PolygonRecord>, SccgError> {
    let mut reader = BlockReader { bytes, pos: 0 };
    let polygon_count = reader.u32()? as usize;
    let mut ids = Vec::with_capacity(polygon_count);
    for _ in 0..polygon_count {
        ids.push(reader.u64()?);
    }
    let mut vertex_counts = Vec::with_capacity(polygon_count);
    for _ in 0..polygon_count {
        vertex_counts.push(reader.u32()? as usize);
    }
    let total: usize = vertex_counts.iter().sum();
    let mut xs = Vec::with_capacity(total);
    for _ in 0..total {
        xs.push(reader.i32()?);
    }
    let mut ys = Vec::with_capacity(total);
    for _ in 0..total {
        ys.push(reader.i32()?);
    }
    if reader.pos != bytes.len() {
        return Err(storage_error(format!(
            "block has {} trailing bytes after the last column",
            bytes.len() - reader.pos
        )));
    }
    let mut records = Vec::with_capacity(polygon_count);
    let mut cursor = 0usize;
    for (id, count) in ids.into_iter().zip(vertex_counts) {
        let vertices: Vec<Point> = (cursor..cursor + count)
            .map(|i| Point::new(xs[i], ys[i]))
            .collect();
        cursor += count;
        let polygon = RectilinearPolygon::new(vertices).map_err(|e| {
            storage_error(format!("record {id} decodes to an invalid polygon: {e}"))
        })?;
        records.push(PolygonRecord { id, polygon });
    }
    Ok(records)
}

/// Streaming writer of one slide file: append tiles one at a time, then
/// [`finish`](SlideFileWriter::finish). Nothing but the footer index (28
/// bytes per tile) is retained in memory, so registration of an
/// arbitrarily large slide runs in O(largest tile), not O(slide).
///
/// **Crash safety.** The writer never touches the final path until the
/// slide is complete: all writes stream into `<path>.partial`, and
/// `finish` flushes, then atomically renames the partial onto `path`. A
/// crash, a write error, or dropping the writer without finishing leaves
/// *no* file at the final path — only a `.partial` that the drop removes
/// (or, after a hard crash, [`recover_dir`] removes at startup). Readers
/// therefore only ever see complete, validated slides.
#[derive(Debug)]
pub struct SlideFileWriter {
    file: Option<BufWriter<File>>,
    path: PathBuf,
    partial: PathBuf,
    index: Vec<TileIndexEntry>,
    offset: u64,
    faults: Option<Arc<FaultInjector>>,
    completed: bool,
}

impl SlideFileWriter {
    /// Creates the slide writer for `path`, streaming into `<path>.partial`
    /// until [`finish`](SlideFileWriter::finish) renames it into place.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, SccgError> {
        Self::create_with_faults(path, None)
    }

    /// [`create`](SlideFileWriter::create) with an optional fault injector:
    /// every write operation (header, each tile append, the footer/trailer
    /// flush, the final rename) consults the injector first, so a scheduled
    /// write error can strike at any point of a streaming registration.
    pub fn create_with_faults(
        path: impl Into<PathBuf>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Self, SccgError> {
        let path = path.into();
        let partial = partial_path(&path);
        let mut writer = SlideFileWriter {
            file: None,
            path,
            partial,
            index: Vec::new(),
            offset: HEADER_BYTES,
            faults,
            completed: false,
        };
        writer.write_op()?;
        let file =
            File::create(&writer.partial).map_err(|e| io_error("create", &writer.partial, e))?;
        let mut file = BufWriter::new(file);
        let mut header = Vec::with_capacity(HEADER_BYTES as usize);
        header.extend_from_slice(HEADER_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u32.to_le_bytes());
        file.write_all(&header)
            .map_err(|e| io_error("write header of", &writer.partial, e))?;
        writer.file = Some(file);
        Ok(writer)
    }

    fn write_op(&self) -> Result<(), SccgError> {
        match &self.faults {
            Some(injector) => injector.on_write(),
            None => Ok(()),
        }
    }

    fn file_mut(&mut self) -> &mut BufWriter<File> {
        self.file.as_mut().expect("writer file open until finish")
    }

    /// Encodes `records` as the next tile's block, appends it and indexes
    /// it. Returns the tile's index within the slide.
    pub fn append_tile(&mut self, records: &[PolygonRecord]) -> Result<usize, SccgError> {
        self.write_op()?;
        let block = encode_tile(records);
        let partial = self.partial.clone();
        self.file_mut()
            .write_all(&block)
            .map_err(|e| io_error("append tile block to", &partial, e))?;
        let entry = TileIndexEntry {
            offset: self.offset,
            len: block.len() as u64,
            polygon_count: records.len() as u32,
            checksum: fnv1a_64(&block),
        };
        self.offset += entry.len;
        self.index.push(entry);
        Ok(self.index.len() - 1)
    }

    /// Number of tiles appended so far.
    pub fn tile_count(&self) -> usize {
        self.index.len()
    }

    /// Writes the footer index and trailer, flushes, atomically renames the
    /// partial file onto the final path, and reopens it for reading as a
    /// [`SlideFile`]. On any error the final path is left untouched (it
    /// does not exist) and the partial is removed when the writer drops.
    pub fn finish(mut self) -> Result<SlideFile, SccgError> {
        self.write_op()?;
        let footer_offset = self.offset;
        let mut footer = Vec::with_capacity(4 + self.index.len() * INDEX_ENTRY_BYTES);
        footer.extend_from_slice(&(self.index.len() as u32).to_le_bytes());
        for entry in &self.index {
            footer.extend_from_slice(&entry.offset.to_le_bytes());
            footer.extend_from_slice(&entry.len.to_le_bytes());
            footer.extend_from_slice(&entry.polygon_count.to_le_bytes());
            footer.extend_from_slice(&entry.checksum.to_le_bytes());
        }
        let footer_checksum = fnv1a_64(&footer);
        let partial = self.partial.clone();
        self.file_mut()
            .write_all(&footer)
            .map_err(|e| io_error("write footer of", &partial, e))?;
        let mut trailer = Vec::with_capacity(TRAILER_BYTES as usize);
        trailer.extend_from_slice(&footer_offset.to_le_bytes());
        trailer.extend_from_slice(&footer_checksum.to_le_bytes());
        trailer.extend_from_slice(TRAILER_MAGIC);
        self.file_mut()
            .write_all(&trailer)
            .map_err(|e| io_error("write trailer of", &partial, e))?;
        self.file_mut()
            .flush()
            .map_err(|e| io_error("flush", &partial, e))?;
        drop(self.file.take());
        // The atomic commit point: before the rename a reader sees no file
        // at the final path, after it a complete validated slide.
        self.write_op()?;
        std::fs::rename(&self.partial, &self.path)
            .map_err(|e| io_error("rename partial onto", &self.path, e))?;
        self.completed = true;
        let mut file = SlideFile::open(&self.path)?;
        file.faults = self.faults.clone();
        Ok(file)
    }
}

impl Drop for SlideFileWriter {
    fn drop(&mut self) {
        if !self.completed {
            // Close the handle first so the remove succeeds everywhere.
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.partial);
        }
    }
}

/// A finished slide file, opened for demand reads. The footer index is
/// validated (magic, version, footer checksum) once at open; each
/// [`read_tile`](SlideFile::read_tile) is one seek + one contiguous read,
/// verified against the tile's block checksum before decoding.
#[derive(Debug)]
pub struct SlideFile {
    /// Reads seek, so the handle lives behind a mutex; the pager above this
    /// keeps hot tiles resident precisely so this lock stays cold.
    file: Mutex<File>,
    path: PathBuf,
    index: Vec<TileIndexEntry>,
    file_bytes: u64,
    faults: Option<Arc<FaultInjector>>,
}

impl SlideFile {
    /// Opens and validates a slide file written by [`SlideFileWriter`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, SccgError> {
        let path = path.into();
        let mut file = File::open(&path).map_err(|e| io_error("open", &path, e))?;
        let file_bytes = file
            .metadata()
            .map_err(|e| io_error("stat", &path, e))?
            .len();
        if file_bytes < HEADER_BYTES + 4 + TRAILER_BYTES {
            return Err(storage_error(format!(
                "{}: {file_bytes} bytes is too short to be a slide file",
                path.display()
            )));
        }

        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|e| io_error("read header of", &path, e))?;
        if &header[..8] != HEADER_MAGIC {
            return Err(storage_error(format!(
                "{}: bad header magic (not a slide file)",
                path.display()
            )));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(storage_error(format!(
                "{}: format version {version} is not {FORMAT_VERSION}",
                path.display()
            )));
        }

        let mut trailer = [0u8; TRAILER_BYTES as usize];
        file.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))
            .map_err(|e| io_error("seek trailer of", &path, e))?;
        file.read_exact(&mut trailer)
            .map_err(|e| io_error("read trailer of", &path, e))?;
        if &trailer[16..24] != TRAILER_MAGIC {
            return Err(storage_error(format!(
                "{}: bad trailer magic (truncated or not a slide file)",
                path.display()
            )));
        }
        let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().unwrap());
        let footer_checksum = u64::from_le_bytes(trailer[8..16].try_into().unwrap());
        let footer_end = file_bytes - TRAILER_BYTES;
        if footer_offset < HEADER_BYTES || footer_offset > footer_end {
            return Err(storage_error(format!(
                "{}: footer offset {footer_offset} is outside the file",
                path.display()
            )));
        }

        let mut footer = vec![0u8; (footer_end - footer_offset) as usize];
        file.seek(SeekFrom::Start(footer_offset))
            .map_err(|e| io_error("seek footer of", &path, e))?;
        file.read_exact(&mut footer)
            .map_err(|e| io_error("read footer of", &path, e))?;
        if fnv1a_64(&footer) != footer_checksum {
            return Err(storage_error(format!(
                "{}: footer checksum mismatch (index is corrupt)",
                path.display()
            )));
        }
        let index = Self::parse_footer(&footer, footer_offset, &path)?;

        Ok(SlideFile {
            file: Mutex::new(file),
            path,
            index,
            file_bytes,
            faults: None,
        })
    }

    /// Attaches a fault injector: subsequent [`SlideFile::read_tile`]
    /// calls consult it for scheduled read errors, virtual slow reads,
    /// and block corruption. A `None`-free production file pays one
    /// pointer test per read.
    pub fn set_faults(&mut self, faults: Option<Arc<FaultInjector>>) {
        self.faults = faults;
    }

    fn parse_footer(
        footer: &[u8],
        footer_offset: u64,
        path: &Path,
    ) -> Result<Vec<TileIndexEntry>, SccgError> {
        let mut reader = BlockReader {
            bytes: footer,
            pos: 0,
        };
        let count = reader.u32()? as usize;
        if footer.len() != 4 + count * INDEX_ENTRY_BYTES {
            return Err(storage_error(format!(
                "{}: footer declares {count} tiles but is {} bytes",
                path.display(),
                footer.len()
            )));
        }
        let mut index = Vec::with_capacity(count);
        let mut expected_offset = HEADER_BYTES;
        for i in 0..count {
            let entry = TileIndexEntry {
                offset: reader.u64()?,
                len: reader.u64()?,
                polygon_count: reader.u32()?,
                checksum: reader.u64()?,
            };
            // Blocks are written back to back: a gap or overlap means the
            // index (or the file) is corrupt even if its checksum holds.
            if entry.offset != expected_offset
                || entry.offset.checked_add(entry.len).is_none()
                || entry.offset + entry.len > footer_offset
            {
                return Err(storage_error(format!(
                    "{}: tile {i} block [{}, +{}) is inconsistent with the file layout",
                    path.display(),
                    entry.offset,
                    entry.len
                )));
            }
            expected_offset = entry.offset + entry.len;
            index.push(entry);
        }
        Ok(index)
    }

    /// Number of tiles the slide holds.
    pub fn tile_count(&self) -> usize {
        self.index.len()
    }

    /// Total polygon records across all tiles (from the index; no block
    /// reads).
    pub fn total_polygons(&self) -> usize {
        self.index.iter().map(|e| e.polygon_count as usize).sum()
    }

    /// The footer index, one entry per tile.
    pub fn index(&self) -> &[TileIndexEntry] {
        &self.index
    }

    /// Total size of the file on disk in bytes.
    pub fn bytes_on_disk(&self) -> u64 {
        self.file_bytes
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads, verifies and decodes one tile's block.
    ///
    /// A corrupt block (checksum mismatch), a truncated read or an undecodable
    /// payload fails with [`SccgError::Storage`] naming the tile — the error
    /// is contained to reads of this tile; every other tile stays readable.
    pub fn read_tile(&self, tile: usize) -> Result<Vec<PolygonRecord>, SccgError> {
        let entry = *self.index.get(tile).ok_or_else(|| {
            storage_error(format!(
                "tile {tile} is out of range ({} tiles on disk)",
                self.index.len()
            ))
        })?;
        if let Some(injector) = &self.faults {
            injector.on_tile_read(tile as u64)?;
        }
        let mut block = vec![0u8; entry.len as usize];
        {
            let mut file = lock(&self.file);
            file.seek(SeekFrom::Start(entry.offset))
                .map_err(|e| io_error("seek block of", &self.path, e))?;
            file.read_exact(&mut block)
                .map_err(|e| io_error("read block of", &self.path, e))?;
        }
        if let Some(injector) = &self.faults {
            injector.corrupt_tile_bytes(tile as u64, &mut block);
        }
        if fnv1a_64(&block) != entry.checksum {
            return Err(storage_error(format!(
                "tile {tile}: block checksum mismatch ({} bytes at offset {})",
                entry.len, entry.offset
            )));
        }
        let records =
            decode_tile(&block).map_err(|e| storage_error(format!("tile {tile}: {e}")))?;
        if records.len() != entry.polygon_count as usize {
            return Err(storage_error(format!(
                "tile {tile}: decoded {} records, index says {}",
                records.len(),
                entry.polygon_count
            )));
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::text::parse_polygon_file;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sccg-store-format-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.sccgt", std::process::id()))
    }

    fn sample_tiles() -> Vec<Vec<PolygonRecord>> {
        vec![
            parse_polygon_file("0 4 0 0 10 0 10 10 0 10\n1 4 5 5 9 5 9 9 5 9\n").unwrap(),
            Vec::new(), // an empty tile is legal
            parse_polygon_file("7 6 0 0 4 0 4 2 2 2 2 4 0 4\n").unwrap(),
        ]
    }

    fn write_sample(tag: &str) -> (PathBuf, Vec<Vec<PolygonRecord>>) {
        let path = temp_path(tag);
        let tiles = sample_tiles();
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for tile in &tiles {
            writer.append_tile(tile).unwrap();
        }
        let file = writer.finish().unwrap();
        assert_eq!(file.tile_count(), tiles.len());
        (path, tiles)
    }

    #[test]
    fn round_trips_every_tile_bit_identically() {
        let (path, tiles) = write_sample("round-trip");
        let file = SlideFile::open(&path).unwrap();
        assert_eq!(file.tile_count(), 3);
        assert_eq!(file.total_polygons(), 3);
        assert!(file.bytes_on_disk() > 0);
        for (i, expected) in tiles.iter().enumerate() {
            assert_eq!(&file.read_tile(i).unwrap(), expected, "tile {i}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_tiles_and_codec_defects_are_typed_errors() {
        let (path, _) = write_sample("bounds");
        let file = SlideFile::open(&path).unwrap();
        assert!(matches!(file.read_tile(3), Err(SccgError::Storage { .. })));
        // A declared count larger than the payload must not panic.
        let mut bogus = (3u32).to_le_bytes().to_vec();
        bogus.extend_from_slice(&7u64.to_le_bytes());
        assert!(matches!(
            decode_tile(&bogus),
            Err(SccgError::Storage { .. })
        ));
        // Trailing bytes after the last column are rejected too.
        let mut padded = encode_tile(&[]);
        padded.push(0);
        assert!(matches!(
            decode_tile(&padded),
            Err(SccgError::Storage { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupting_a_block_fails_only_that_tile() {
        let (path, tiles) = write_sample("contained");
        let file = SlideFile::open(&path).unwrap();
        let target = file.index()[0];
        drop(file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[target.offset as usize + 4] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let file = SlideFile::open(&path).unwrap();
        let err = file.read_tile(0).unwrap_err();
        assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("checksum")),
            "{err:?}"
        );
        // The other tiles are untouched and still read back exactly.
        assert_eq!(&file.read_tile(1).unwrap(), &tiles[1]);
        assert_eq!(&file.read_tile(2).unwrap(), &tiles[2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_bad_magic_and_footer_corruption_fail_open() {
        let (path, _) = write_sample("open-failures");
        let original = std::fs::read(&path).unwrap();

        // Truncated behind the trailer.
        std::fs::write(&path, &original[..original.len() - 9]).unwrap();
        assert!(matches!(
            SlideFile::open(&path),
            Err(SccgError::Storage { .. })
        ));

        // Wrong header magic.
        let mut bad = original.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            SlideFile::open(&path),
            Err(SccgError::Storage { .. })
        ));

        // Unsupported version.
        let mut bad = original.clone();
        bad[8] = 99;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            SlideFile::open(&path),
            Err(SccgError::Storage { .. })
        ));

        // A flipped footer byte breaks the footer checksum.
        let mut bad = original.clone();
        let footer_offset = u64::from_le_bytes(
            original[original.len() - 24..original.len() - 16]
                .try_into()
                .unwrap(),
        );
        bad[footer_offset as usize + 1] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = SlideFile::open(&path).unwrap_err();
        assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("footer")),
            "{err:?}"
        );

        // A missing file is an error, not a panic.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            SlideFile::open(&path),
            Err(SccgError::Storage { .. })
        ));
    }

    #[test]
    fn writer_streams_into_a_partial_and_renames_atomically() {
        let path = temp_path("atomic-rename");
        let partial = partial_path(&path);
        let _ = std::fs::remove_file(&path);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        writer.append_tile(&sample_tiles()[0]).unwrap();
        assert!(partial.exists(), "writes stream into the partial");
        assert!(!path.exists(), "the final path appears only at finish");
        let file = writer.finish().unwrap();
        assert!(path.exists());
        assert!(!partial.exists(), "the partial was renamed away");
        assert_eq!(file.tile_count(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn dropping_an_unfinished_writer_removes_the_partial() {
        let path = temp_path("abandoned");
        let partial = partial_path(&path);
        let _ = std::fs::remove_file(&path);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        writer.append_tile(&sample_tiles()[0]).unwrap();
        assert!(partial.exists());
        drop(writer);
        assert!(!partial.exists(), "drop cleans up the partial");
        assert!(!path.exists(), "the final path was never created");
    }

    #[test]
    fn recover_dir_removes_orphaned_partials_only() {
        let dir = std::env::temp_dir().join(format!("sccg-recover-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let orphan = dir.join("slide-000003.sccgt.partial");
        let keep = dir.join("slide-000001.sccgt");
        std::fs::write(&orphan, b"half a slide").unwrap();
        std::fs::write(&keep, b"not actually scanned for validity").unwrap();
        let removed = recover_dir(&dir).unwrap();
        assert_eq!(removed, vec![orphan.clone()]);
        assert!(!orphan.exists());
        assert!(keep.exists(), "complete slides are untouched");
        assert_eq!(recover_dir(&dir).unwrap(), Vec::<PathBuf>::new());
        std::fs::remove_dir_all(&dir).unwrap();
        // A directory that does not exist yet is an empty scan.
        assert_eq!(recover_dir(&dir).unwrap(), Vec::<PathBuf>::new());
    }

    #[test]
    fn injected_write_errors_fail_the_writer_and_leave_nothing_behind() {
        use sccg::FaultPlan;
        // Op 0 is the header write, ops 1..=3 the tile appends, op 4 the
        // footer/trailer flush, op 5 the rename — fail each in turn.
        for op in 0..=5u64 {
            let path = temp_path(&format!("write-fault-{op}"));
            let partial = partial_path(&path);
            let _ = std::fs::remove_file(&path);
            let injector = Arc::new(FaultInjector::new(FaultPlan::new(1).fail_write_op(op)));
            let result = (|| -> Result<SlideFile, SccgError> {
                let mut writer = SlideFileWriter::create_with_faults(&path, Some(injector))?;
                for tile in sample_tiles() {
                    writer.append_tile(&tile)?;
                }
                writer.finish()
            })();
            let err = result.expect_err("the scheduled write fault must surface");
            assert!(matches!(err, SccgError::Storage { .. }), "{err:?}");
            assert!(!path.exists(), "op {op}: final path must not exist");
            assert!(!partial.exists(), "op {op}: partial must be cleaned up");
        }
    }

    #[test]
    fn injected_read_faults_and_corruption_surface_as_typed_errors() {
        use sccg::{FaultInjector, FaultPlan};
        let (path, tiles) = write_sample("injected-reads");
        let plan = FaultPlan::new(42)
            .fail_read(0, 1)
            .slow_read(2, 1_000)
            .corrupt_tile(2);
        let injector = Arc::new(FaultInjector::new(plan));
        let mut file = SlideFile::open(&path).unwrap();
        file.set_faults(Some(Arc::clone(&injector)));
        // Tile 0: one scheduled read error, then reads recover.
        let err = file.read_tile(0).unwrap_err();
        assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("injected")),
            "{err:?}"
        );
        assert_eq!(&file.read_tile(0).unwrap(), &tiles[0]);
        // Tile 2: corruption flips a block byte, so the checksum fails and
        // the slow-read latency is charged virtually (no wall clock).
        let err = file.read_tile(2).unwrap_err();
        assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("checksum")),
            "{err:?}"
        );
        assert!(injector.virtual_delay_nanos() >= 1_000);
        // Tile 1 is untouched by the whole schedule.
        assert_eq!(&file.read_tile(1).unwrap(), &tiles[1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fnv1a_matches_the_reference_vector() {
        // Classic FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }
}
