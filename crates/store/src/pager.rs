//! Demand paging over a [`SlideFile`]: a bounded LRU of resident decoded
//! tiles.
//!
//! The serving layer shards a whole-slide query into per-tile jobs; with the
//! slide on disk, each job *faults its tile in* through [`TileStorage`]
//! instead of holding the whole slide in memory. The pager keeps at most
//! `residency_bound` decoded tiles resident (the generic
//! [`sccg::collections::LruCache`] shared with the serving layer's response
//! cache), so peak memory is O(bound × tile), independent of slide size —
//! the out-of-core discipline the paper's pipeline applies to its buffers
//! (§4.1), applied to storage.
//!
//! Failure containment is inherited from the format layer: a corrupt or
//! truncated tile fails *its own* fetch with [`sccg::SccgError::Storage`]
//! and is never cached, so other tiles keep paging normally and a later
//! fetch of a repaired tile retries the disk read.

use crate::format::SlideFile;
use sccg::collections::LruCache;
use sccg::sync::lock;
use sccg::SccgError;
use sccg_geometry::text::PolygonRecord;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing a pager's behaviour since creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagerStats {
    /// Fetches served from the resident set.
    pub hits: u64,
    /// Fetches that had to read and decode a block from disk.
    pub misses: u64,
    /// `hits / (hits + misses)`, or 0.0 before the first fetch.
    pub hit_rate: f64,
    /// Decoded tiles currently resident.
    pub resident: usize,
    /// Maximum number of tiles ever resident at once.
    pub peak_resident: usize,
    /// The configured residency bound.
    pub residency_bound: usize,
    /// Size of the backing slide file in bytes.
    pub bytes_on_disk: u64,
}

/// A paged view of one on-disk slide: fetches fault tiles in on demand and
/// keep at most `residency_bound` of them decoded in memory.
#[derive(Debug)]
pub struct TileStorage {
    file: SlideFile,
    resident: Mutex<LruCache<usize, Arc<Vec<PolygonRecord>>>>,
    residency_bound: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    peak_resident: AtomicU64,
}

impl TileStorage {
    /// Wraps an opened slide file in a pager holding at most
    /// `residency_bound` decoded tiles (clamped to at least 1 — a pager that
    /// can hold nothing can serve nothing).
    pub fn new(file: SlideFile, residency_bound: usize) -> Self {
        let residency_bound = residency_bound.max(1);
        TileStorage {
            file,
            resident: Mutex::new(LruCache::new(residency_bound)),
            residency_bound,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }
    }

    /// Number of tiles in the backing slide.
    pub fn tile_count(&self) -> usize {
        self.file.tile_count()
    }

    /// Total polygon records across all tiles (from the footer index).
    pub fn total_polygons(&self) -> usize {
        self.file.total_polygons()
    }

    /// Size of the backing slide file on disk in bytes.
    pub fn bytes_on_disk(&self) -> u64 {
        self.file.bytes_on_disk()
    }

    /// The configured residency bound.
    pub fn residency_bound(&self) -> usize {
        self.residency_bound
    }

    /// The backing slide file.
    pub fn file(&self) -> &SlideFile {
        &self.file
    }

    /// Returns the tile's decoded records, faulting them in from disk on a
    /// miss. Shared `Arc`s mean concurrent shards of the same tile decode
    /// once and an eviction never invalidates records a query still holds.
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] for an out-of-range index or a corrupt,
    /// truncated or unreadable block. Failed fetches are not cached.
    pub fn fetch(&self, tile: usize) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        if let Some(records) = lock(&self.resident).get(&tile) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(records);
        }
        // Read outside the cache lock: a slow or failing disk read must not
        // stall hits on other tiles. Two concurrent misses of one tile may
        // both decode it; the second insert simply refreshes the entry.
        let records = Arc::new(self.file.read_tile(tile)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let resident_now = {
            let mut resident = lock(&self.resident);
            resident.insert(tile, Arc::clone(&records));
            resident.len() as u64
        };
        self.peak_resident
            .fetch_max(resident_now, Ordering::Relaxed);
        Ok(records)
    }

    /// Current pager counters.
    pub fn stats(&self) -> PagerStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let total = hits + misses;
        PagerStats {
            hits,
            misses,
            hit_rate: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
            resident: lock(&self.resident).len(),
            peak_resident: self.peak_resident.load(Ordering::Relaxed) as usize,
            residency_bound: self.residency_bound,
            bytes_on_disk: self.file.bytes_on_disk(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::SlideFileWriter;
    use sccg_geometry::text::parse_polygon_file;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sccg-store-pager-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.sccgt", std::process::id()))
    }

    fn tile(id: u64) -> Vec<PolygonRecord> {
        let base = (id as i32) * 100;
        parse_polygon_file(&format!(
            "{id} 4 {x0} {y0} {x1} {y0} {x1} {y1} {x0} {y1}\n",
            x0 = base,
            y0 = base,
            x1 = base + 10,
            y1 = base + 10,
        ))
        .unwrap()
    }

    fn build(tag: &str, tiles: usize, bound: usize) -> (TileStorage, PathBuf) {
        let path = temp_path(tag);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for i in 0..tiles {
            writer.append_tile(&tile(i as u64)).unwrap();
        }
        (TileStorage::new(writer.finish().unwrap(), bound), path)
    }

    #[test]
    fn residency_never_exceeds_the_bound() {
        let (pager, path) = build("bound", 8, 3);
        for round in 0..2 {
            for i in 0..8 {
                let records = pager.fetch(i).unwrap();
                assert_eq!(records.as_ref(), &tile(i as u64), "round {round} tile {i}");
                assert!(pager.stats().resident <= 3);
            }
        }
        let stats = pager.stats();
        assert!(stats.peak_resident <= 3);
        assert_eq!(stats.hits + stats.misses, 16);
        // Sequential scans over a working set larger than the bound are the
        // LRU's worst case: every fetch misses.
        assert_eq!(stats.misses, 16);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refetches_within_the_bound_hit() {
        let (pager, path) = build("hits", 2, 4);
        for _ in 0..3 {
            pager.fetch(0).unwrap();
            pager.fetch(1).unwrap();
        }
        let stats = pager.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4);
        assert!((stats.hit_rate - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.peak_resident, 2);
        assert!(stats.bytes_on_disk > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_bound_is_clamped_and_out_of_range_is_typed() {
        let (pager, path) = build("clamp", 1, 0);
        assert_eq!(pager.residency_bound(), 1);
        assert_eq!(pager.fetch(0).unwrap().as_ref(), &tile(0));
        assert!(matches!(pager.fetch(1), Err(SccgError::Storage { .. })));
        // The failed fetch was not cached and did not disturb residency.
        assert_eq!(pager.stats().resident, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evicted_tiles_stay_valid_for_holders() {
        let (pager, path) = build("arc", 4, 1);
        let held = pager.fetch(0).unwrap();
        for i in 1..4 {
            pager.fetch(i).unwrap();
        }
        // Tile 0 has long been evicted; the held Arc still reads correctly.
        assert_eq!(held.as_ref(), &tile(0));
        std::fs::remove_file(&path).unwrap();
    }
}
