//! Demand paging over a [`SlideFile`]: a bounded LRU of resident decoded
//! tiles.
//!
//! The serving layer shards a whole-slide query into per-tile jobs; with the
//! slide on disk, each job *faults its tile in* through [`TileStorage`]
//! instead of holding the whole slide in memory. The pager keeps at most
//! `residency_bound` decoded tiles resident (the generic
//! [`sccg::collections::LruCache`] shared with the serving layer's response
//! cache), so peak memory is O(bound × tile), independent of slide size —
//! the out-of-core discipline the paper's pipeline applies to its buffers
//! (§4.1), applied to storage.
//!
//! Three properties matter to the scheduler sitting above this pager:
//!
//! * **Single-flight faults** — concurrent misses of one tile coalesce: the
//!   first miss reads and decodes the block, every other caller waits on
//!   the in-flight fault and shares the result (counted in
//!   [`PagerStats::coalesced_faults`]). One tile is never decoded twice
//!   concurrently.
//! * **Residency visibility** — [`TileStorage::is_resident`] and
//!   [`TileStorage::residency_snapshot`] expose which tiles are decoded
//!   *without* touching recency, so a placement policy can order work
//!   against the resident set without perturbing eviction.
//! * **Fault affinity** — the pager remembers which engine last faulted
//!   each tile ([`TileStorage::last_faulter`]), giving the scheduler a
//!   cheap signal for which worker's activity pulled the data in.
//!
//! [`TileStorage::prefetch`] faults a tile in *only into free capacity*:
//! it never evicts, so a prefetcher running ahead of compute cannot push
//! out tiles the current queries still need.
//!
//! Failure containment is inherited from the format layer: a corrupt or
//! truncated tile fails *its own* fetch with [`sccg::SccgError::Storage`]
//! and is never cached, so other tiles keep paging normally and a later
//! fetch of a repaired tile retries the disk read. A per-tile **circuit
//! breaker** bounds how often that retry happens: after
//! [`QUARANTINE_THRESHOLD`] *consecutive* failed reads, the tile is
//! quarantined and further fetches fail fast with a typed error instead of
//! re-reading a block known to be bad on every query that touches it. One
//! successful read (a repaired tile) closes the breaker again.

use crate::format::SlideFile;
use sccg::collections::LruCache;
use sccg::sync::lock;
use sccg::SccgError;
use sccg_geometry::text::PolygonRecord;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Sentinel in the affinity table for "no engine has faulted this tile".
const NO_AFFINITY: usize = usize::MAX;

/// Consecutive failed disk reads of one tile after which its circuit
/// breaker opens: further fetches fail fast without touching the disk until
/// a successful read resets the count. Three strikes distinguishes a
/// persistently bad block from a transient I/O hiccup.
pub const QUARANTINE_THRESHOLD: u32 = 3;

/// Counters describing a pager's behaviour since creation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PagerStats {
    /// Fetches served from the resident set.
    pub hits: u64,
    /// Fetches that had to read and decode a block from disk.
    pub misses: u64,
    /// Fetches that joined another caller's in-flight disk read instead of
    /// issuing their own (single-flight coalescing). Not counted as hits or
    /// misses: the read they shared is the one miss.
    pub coalesced_faults: u64,
    /// `hits / (hits + misses)`, or 0.0 before the first fetch.
    pub hit_rate: f64,
    /// Decoded tiles currently resident.
    pub resident: usize,
    /// Maximum number of tiles ever resident at once.
    pub peak_resident: usize,
    /// The configured residency bound.
    pub residency_bound: usize,
    /// Size of the backing slide file in bytes.
    pub bytes_on_disk: u64,
    /// Tiles whose circuit breaker is currently open (at least
    /// [`QUARANTINE_THRESHOLD`] consecutive failed reads, no success since).
    pub quarantined_tiles: usize,
}

/// A point-in-time view of which tiles a pager holds decoded, indexable
/// without locks. Taken once per placement decision ([`TileStorage::
/// residency_snapshot`]) so ordering a query's shards costs one pass over
/// the resident set, not one lock acquisition per shard probe.
#[derive(Debug, Clone)]
pub struct ResidencySnapshot {
    resident: Vec<bool>,
    count: usize,
}

impl ResidencySnapshot {
    /// Whether `tile` was resident when the snapshot was taken.
    /// Out-of-range indices are simply not resident.
    pub fn is_resident(&self, tile: usize) -> bool {
        self.resident.get(tile).copied().unwrap_or(false)
    }

    /// Number of resident tiles in the snapshot.
    pub fn resident_count(&self) -> usize {
        self.count
    }

    /// Number of tiles in the backing slide.
    pub fn tile_count(&self) -> usize {
        self.resident.len()
    }
}

/// One in-flight disk fault: the owner publishes the read's outcome here
/// and every coalesced waiter blocks on `ready` until it lands.
#[derive(Debug, Default)]
struct FaultSlot {
    result: Mutex<Option<Result<Arc<Vec<PolygonRecord>>, SccgError>>>,
    ready: Condvar,
}

/// A paged view of one on-disk slide: fetches fault tiles in on demand and
/// keep at most `residency_bound` of them decoded in memory.
#[derive(Debug)]
pub struct TileStorage {
    file: SlideFile,
    resident: Mutex<LruCache<usize, Arc<Vec<PolygonRecord>>>>,
    /// Tiles with a disk read in flight, for single-flight coalescing.
    in_flight: Mutex<HashMap<usize, Arc<FaultSlot>>>,
    /// Which engine last faulted each tile in (`NO_AFFINITY` = none yet).
    affinity: Vec<AtomicUsize>,
    /// Consecutive failed disk reads per tile; at `QUARANTINE_THRESHOLD`
    /// the tile's circuit breaker is open and fetches fail fast.
    failures: Vec<AtomicU32>,
    residency_bound: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    peak_resident: AtomicU64,
}

impl TileStorage {
    /// Wraps an opened slide file in a pager holding at most
    /// `residency_bound` decoded tiles (clamped to at least 1 — a pager that
    /// can hold nothing can serve nothing).
    pub fn new(file: SlideFile, residency_bound: usize) -> Self {
        let residency_bound = residency_bound.max(1);
        let affinity = (0..file.tile_count())
            .map(|_| AtomicUsize::new(NO_AFFINITY))
            .collect();
        let failures = (0..file.tile_count()).map(|_| AtomicU32::new(0)).collect();
        TileStorage {
            file,
            resident: Mutex::new(LruCache::new(residency_bound)),
            in_flight: Mutex::new(HashMap::new()),
            affinity,
            failures,
            residency_bound,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            peak_resident: AtomicU64::new(0),
        }
    }

    /// Number of tiles in the backing slide.
    pub fn tile_count(&self) -> usize {
        self.file.tile_count()
    }

    /// Total polygon records across all tiles (from the footer index).
    pub fn total_polygons(&self) -> usize {
        self.file.total_polygons()
    }

    /// Size of the backing slide file on disk in bytes.
    pub fn bytes_on_disk(&self) -> u64 {
        self.file.bytes_on_disk()
    }

    /// The configured residency bound.
    pub fn residency_bound(&self) -> usize {
        self.residency_bound
    }

    /// The backing slide file.
    pub fn file(&self) -> &SlideFile {
        &self.file
    }

    /// Whether `tile` is currently resident, without touching recency —
    /// probing residency must not change what gets evicted.
    pub fn is_resident(&self, tile: usize) -> bool {
        lock(&self.resident).contains(&tile)
    }

    /// A point-in-time residency view over every tile, taken in one pass
    /// under the cache lock. Recency-neutral like [`TileStorage::is_resident`].
    pub fn residency_snapshot(&self) -> ResidencySnapshot {
        let resident = lock(&self.resident);
        let flags: Vec<bool> = (0..self.file.tile_count())
            .map(|tile| resident.contains(&tile))
            .collect();
        let count = flags.iter().filter(|&&r| r).count();
        ResidencySnapshot {
            resident: flags,
            count,
        }
    }

    /// The engine that last faulted `tile` in (as tagged through
    /// [`TileStorage::fetch_tagged`]), or `None` if the tile has never been
    /// fault-tagged or the index is out of range.
    pub fn last_faulter(&self, tile: usize) -> Option<usize> {
        let engine = self.affinity.get(tile)?.load(Ordering::Relaxed);
        (engine != NO_AFFINITY).then_some(engine)
    }

    /// Whether `tile`'s circuit breaker is open: at least
    /// [`QUARANTINE_THRESHOLD`] consecutive disk reads of it failed and
    /// none has succeeded since. Fetches of a quarantined tile fail fast
    /// without disk I/O; out-of-range indices are never quarantined (they
    /// fail typed on their own).
    pub fn is_quarantined(&self, tile: usize) -> bool {
        self.failures
            .get(tile)
            .is_some_and(|count| count.load(Ordering::Relaxed) >= QUARANTINE_THRESHOLD)
    }

    /// Records the outcome of a disk read of `tile` against its circuit
    /// breaker: success closes it, failure moves it one strike closer to
    /// quarantine.
    fn record_read_outcome(&self, tile: usize, ok: bool) {
        if let Some(count) = self.failures.get(tile) {
            if ok {
                count.store(0, Ordering::Relaxed);
            } else {
                count.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The fail-fast error a quarantined tile's fetch returns.
    fn quarantine_error(tile: usize) -> SccgError {
        SccgError::Storage {
            detail: format!(
                "tile {tile}: quarantined after {QUARANTINE_THRESHOLD} consecutive failed reads"
            ),
        }
    }

    /// Returns the tile's decoded records, faulting them in from disk on a
    /// miss. Shared `Arc`s mean an eviction never invalidates records a
    /// query still holds, and concurrent misses of one tile are
    /// *single-flight*: one caller reads and decodes, the rest wait on the
    /// in-flight fault and share the result.
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] for an out-of-range index or a corrupt,
    /// truncated or unreadable block. Failed fetches are not cached, and
    /// coalesced waiters of a failed fault receive the owner's error.
    pub fn fetch(&self, tile: usize) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        self.fetch_tagged(tile, None)
    }

    /// Like [`TileStorage::fetch`], additionally recording `engine` as the
    /// tile's last faulter when this call performs the disk read — the
    /// affinity signal [`TileStorage::last_faulter`] reports.
    pub fn fetch_tagged(
        &self,
        tile: usize,
        engine: Option<usize>,
    ) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        if let Some(records) = lock(&self.resident).get(&tile) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(records);
        }
        if self.is_quarantined(tile) {
            // Circuit breaker open: a block known to be bad is not re-read
            // on every query that touches it.
            return Err(Self::quarantine_error(tile));
        }
        let (slot, owner) = self.join_or_own(tile);
        if !owner {
            // Another caller's disk read is in flight: wait for it to
            // publish instead of decoding the same block twice.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            return Self::await_fault(&slot);
        }
        // This call owns the fault. The resident set may have gained the
        // tile between the miss above and slot insertion (a prior fault
        // published and retired); re-checking here makes "one concurrent
        // miss, one disk read" exact rather than probabilistic.
        if let Some(records) = lock(&self.resident).get(&tile) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.publish(tile, &slot, Ok(Arc::clone(&records)));
            return Ok(records);
        }
        // Read outside every lock: a slow or failing disk read must not
        // stall hits on other tiles or faults of other tiles.
        let outcome = self.file.read_tile(tile).map(Arc::new);
        self.record_read_outcome(tile, outcome.is_ok());
        if let Ok(records) = &outcome {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let (Some(engine), Some(cell)) = (engine, self.affinity.get(tile)) {
                cell.store(engine, Ordering::Relaxed);
            }
            let resident_now = {
                let mut resident = lock(&self.resident);
                resident.insert(tile, Arc::clone(records));
                resident.len() as u64
            };
            self.peak_resident
                .fetch_max(resident_now, Ordering::Relaxed);
        }
        self.publish(tile, &slot, outcome.clone());
        outcome
    }

    /// Faults `tile` in *only if the pager has free capacity*: a prefetch
    /// must warm the resident set, never churn it, so it refuses to evict.
    /// Returns `Ok(true)` when this call performed a disk read, `Ok(false)`
    /// when the tile was already resident, a fault for it was already in
    /// flight, or the pager is full.
    ///
    /// The read is counted as a pager miss like any demand fault — prefetch
    /// moves disk reads earlier, it must not hide them from the hit-rate
    /// accounting.
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] as for [`TileStorage::fetch`]; callers
    /// treating prefetch as advisory may ignore it (the demand fetch will
    /// surface the same error).
    pub fn prefetch(&self, tile: usize) -> Result<bool, SccgError> {
        if self.is_quarantined(tile) {
            // Prefetch is advisory: warming a quarantined tile would only
            // re-read a bad block, so skip it rather than error.
            return Ok(false);
        }
        {
            let resident = lock(&self.resident);
            if resident.contains(&tile) || resident.len() >= self.residency_bound {
                return Ok(false);
            }
        }
        let slot = {
            let mut in_flight = lock(&self.in_flight);
            if in_flight.contains_key(&tile) {
                // A demand fetch is already reading it; adding a second
                // waiter gains nothing.
                return Ok(false);
            }
            let slot = Arc::new(FaultSlot::default());
            in_flight.insert(tile, Arc::clone(&slot));
            slot
        };
        let outcome = self.file.read_tile(tile).map(Arc::new);
        self.record_read_outcome(tile, outcome.is_ok());
        if let Ok(records) = &outcome {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let resident_now = {
                let mut resident = lock(&self.resident);
                // Demand faults may have filled the pager meanwhile; a full
                // pager means this prefetch arrived too late to help, and
                // inserting anyway would evict a tile someone is using.
                if resident.len() < self.residency_bound {
                    resident.insert(tile, Arc::clone(records));
                }
                resident.len() as u64
            };
            self.peak_resident
                .fetch_max(resident_now, Ordering::Relaxed);
        }
        let failed = outcome.as_ref().err().cloned();
        self.publish(tile, &slot, outcome);
        match failed {
            Some(error) => Err(error),
            None => Ok(true),
        }
    }

    /// Takes or creates the fault slot for `tile`. Returns the slot and
    /// whether this caller owns the read.
    fn join_or_own(&self, tile: usize) -> (Arc<FaultSlot>, bool) {
        let mut in_flight = lock(&self.in_flight);
        match in_flight.get(&tile) {
            Some(slot) => (Arc::clone(slot), false),
            None => {
                let slot = Arc::new(FaultSlot::default());
                in_flight.insert(tile, Arc::clone(&slot));
                (slot, true)
            }
        }
    }

    /// Owner side of a fault: publish the outcome, wake every waiter, and
    /// retire the slot. Residency was already updated (if at all) before
    /// this point, so a fetch racing the retirement finds the tile
    /// resident.
    fn publish(
        &self,
        tile: usize,
        slot: &Arc<FaultSlot>,
        outcome: Result<Arc<Vec<PolygonRecord>>, SccgError>,
    ) {
        *lock(&slot.result) = Some(outcome);
        slot.ready.notify_all();
        lock(&self.in_flight).remove(&tile);
    }

    /// Waiter side of a fault: block until the owner publishes.
    fn await_fault(slot: &Arc<FaultSlot>) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        let mut result = lock(&slot.result);
        loop {
            if let Some(outcome) = result.as_ref() {
                return outcome.clone();
            }
            result = slot
                .ready
                .wait(result)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Current pager counters.
    pub fn stats(&self) -> PagerStats {
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let total = hits + misses;
        PagerStats {
            hits,
            misses,
            coalesced_faults: self.coalesced.load(Ordering::Relaxed),
            hit_rate: if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            },
            resident: lock(&self.resident).len(),
            peak_resident: self.peak_resident.load(Ordering::Relaxed) as usize,
            residency_bound: self.residency_bound,
            bytes_on_disk: self.file.bytes_on_disk(),
            quarantined_tiles: self
                .failures
                .iter()
                .filter(|count| count.load(Ordering::Relaxed) >= QUARANTINE_THRESHOLD)
                .count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::SlideFileWriter;
    use sccg_geometry::text::parse_polygon_file;
    use std::path::PathBuf;
    use std::sync::Barrier;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sccg-store-pager-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.sccgt", std::process::id()))
    }

    fn tile(id: u64) -> Vec<PolygonRecord> {
        let base = (id as i32) * 100;
        parse_polygon_file(&format!(
            "{id} 4 {x0} {y0} {x1} {y0} {x1} {y1} {x0} {y1}\n",
            x0 = base,
            y0 = base,
            x1 = base + 10,
            y1 = base + 10,
        ))
        .unwrap()
    }

    fn build(tag: &str, tiles: usize, bound: usize) -> (TileStorage, PathBuf) {
        let path = temp_path(tag);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for i in 0..tiles {
            writer.append_tile(&tile(i as u64)).unwrap();
        }
        (TileStorage::new(writer.finish().unwrap(), bound), path)
    }

    fn build_with_faults(
        tag: &str,
        tiles: usize,
        bound: usize,
        plan: sccg::FaultPlan,
    ) -> (TileStorage, PathBuf, Arc<sccg::FaultInjector>) {
        let path = temp_path(tag);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for i in 0..tiles {
            writer.append_tile(&tile(i as u64)).unwrap();
        }
        let injector = Arc::new(sccg::FaultInjector::new(plan));
        let mut file = writer.finish().unwrap();
        file.set_faults(Some(Arc::clone(&injector)));
        (TileStorage::new(file, bound), path, injector)
    }

    #[test]
    fn residency_never_exceeds_the_bound() {
        let (pager, path) = build("bound", 8, 3);
        for round in 0..2 {
            for i in 0..8 {
                let records = pager.fetch(i).unwrap();
                assert_eq!(records.as_ref(), &tile(i as u64), "round {round} tile {i}");
                assert!(pager.stats().resident <= 3);
            }
        }
        let stats = pager.stats();
        assert!(stats.peak_resident <= 3);
        assert_eq!(stats.hits + stats.misses, 16);
        // Sequential scans over a working set larger than the bound are the
        // LRU's worst case: every fetch misses.
        assert_eq!(stats.misses, 16);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn refetches_within_the_bound_hit() {
        let (pager, path) = build("hits", 2, 4);
        for _ in 0..3 {
            pager.fetch(0).unwrap();
            pager.fetch(1).unwrap();
        }
        let stats = pager.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.coalesced_faults, 0);
        assert!((stats.hit_rate - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(stats.resident, 2);
        assert_eq!(stats.peak_resident, 2);
        assert!(stats.bytes_on_disk > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_bound_is_clamped_and_out_of_range_is_typed() {
        let (pager, path) = build("clamp", 1, 0);
        assert_eq!(pager.residency_bound(), 1);
        assert_eq!(pager.fetch(0).unwrap().as_ref(), &tile(0));
        assert!(matches!(pager.fetch(1), Err(SccgError::Storage { .. })));
        // The failed fetch was not cached and did not disturb residency.
        assert_eq!(pager.stats().resident, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn evicted_tiles_stay_valid_for_holders() {
        let (pager, path) = build("arc", 4, 1);
        let held = pager.fetch(0).unwrap();
        for i in 1..4 {
            pager.fetch(i).unwrap();
        }
        // Tile 0 has long been evicted; the held Arc still reads correctly.
        assert_eq!(held.as_ref(), &tile(0));
        std::fs::remove_file(&path).unwrap();
    }

    /// The single-flight satellite: many threads missing the same tile at
    /// once must produce exactly one disk read — every other caller either
    /// joined the in-flight fault (coalesced) or arrived after it published
    /// (a resident hit). Before coalescing, each racing thread decoded the
    /// block independently.
    #[test]
    fn concurrent_misses_of_one_tile_read_disk_once() {
        const THREADS: usize = 8;
        let (pager, path) = build("single-flight", 1, 2);
        let pager = Arc::new(pager);
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let pager = Arc::clone(&pager);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    assert_eq!(pager.fetch(0).unwrap().as_ref(), &tile(0));
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("fetch thread");
        }
        let stats = pager.stats();
        assert_eq!(
            stats.misses, 1,
            "exactly one disk read for {THREADS} racers"
        );
        assert_eq!(
            stats.hits + stats.coalesced_faults,
            (THREADS - 1) as u64,
            "every other caller shared it: {stats:?}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// Residency probes see the resident set without perturbing it: a
    /// probed-but-unfetched tile must still be the one evicted.
    #[test]
    fn residency_probes_are_recency_neutral() {
        let (pager, path) = build("probe", 4, 2);
        pager.fetch(0).unwrap();
        pager.fetch(1).unwrap();
        for _ in 0..10 {
            assert!(pager.is_resident(0));
        }
        let snapshot = pager.residency_snapshot();
        assert!(snapshot.is_resident(0) && snapshot.is_resident(1));
        assert!(!snapshot.is_resident(2) && !snapshot.is_resident(99));
        assert_eq!(snapshot.resident_count(), 2);
        assert_eq!(snapshot.tile_count(), 4);
        // Tile 0 is LRU despite the probes: fetching 2 must evict it.
        pager.fetch(2).unwrap();
        assert!(!pager.is_resident(0));
        assert!(pager.is_resident(1) && pager.is_resident(2));
        std::fs::remove_file(&path).unwrap();
    }

    /// Affinity remembers the tagged engine of the last *fault*, not of
    /// hits, and untagged fetches leave it unchanged.
    #[test]
    fn affinity_tracks_the_last_faulting_engine() {
        let (pager, path) = build("affinity", 3, 1);
        assert_eq!(pager.last_faulter(0), None);
        pager.fetch_tagged(0, Some(2)).unwrap();
        assert_eq!(pager.last_faulter(0), Some(2));
        // A hit by another engine does not steal the affinity.
        pager.fetch_tagged(0, Some(1)).unwrap();
        assert_eq!(pager.last_faulter(0), Some(2));
        // Evict tile 0 (bound 1), then an untagged re-fault keeps the tag.
        pager.fetch_tagged(1, Some(0)).unwrap();
        pager.fetch(0).unwrap();
        assert_eq!(pager.last_faulter(0), Some(2));
        // A tagged re-fault by a different engine replaces it.
        pager.fetch_tagged(2, None).unwrap();
        pager.fetch_tagged(0, Some(1)).unwrap();
        assert_eq!(pager.last_faulter(0), Some(1));
        assert_eq!(pager.last_faulter(99), None);
        std::fs::remove_file(&path).unwrap();
    }

    /// Prefetch fills free capacity only — it reads ahead but never evicts
    /// what demand fetches made resident.
    #[test]
    fn prefetch_never_evicts() {
        let (pager, path) = build("prefetch", 4, 2);
        pager.fetch(0).unwrap();
        assert!(pager.prefetch(1).unwrap(), "free slot: prefetch reads");
        assert!(pager.is_resident(0) && pager.is_resident(1));
        assert!(!pager.prefetch(1).unwrap(), "already resident: no read");
        // Pager is full now: further prefetches refuse rather than evict.
        assert!(!pager.prefetch(2).unwrap());
        assert!(!pager.prefetch(3).unwrap());
        assert!(pager.is_resident(0) && pager.is_resident(1));
        let stats = pager.stats();
        assert_eq!(stats.misses, 2, "the prefetch read counts as a miss");
        // The prefetched tile serves a later demand fetch as a hit.
        pager.fetch(1).unwrap();
        assert_eq!(pager.stats().hits, 1);
        std::fs::remove_file(&path).unwrap();
    }

    /// The circuit breaker: `QUARANTINE_THRESHOLD` consecutive failed reads
    /// open it — further fetches fail fast *without touching the disk* —
    /// and prefetch skips the tile instead of erroring.
    #[test]
    fn repeated_read_failures_quarantine_the_tile() {
        let plan = sccg::FaultPlan::new(7).fail_read(0, 100);
        let (pager, path, injector) = build_with_faults("quarantine", 2, 2, plan);
        for strike in 0..QUARANTINE_THRESHOLD {
            assert!(!pager.is_quarantined(0), "strike {strike}");
            let err = pager.fetch(0).unwrap_err();
            assert!(
                matches!(&err, SccgError::Storage { detail } if detail.contains("injected")),
                "strike {strike}: {err:?}"
            );
        }
        assert!(pager.is_quarantined(0));
        assert_eq!(pager.stats().quarantined_tiles, 1);
        // The breaker is open: the fetch fails fast and the disk (here the
        // injector standing in front of it) is not consulted again.
        let reads_before = injector.stats().read_errors;
        let err = pager.fetch(0).unwrap_err();
        assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("quarantined")),
            "{err:?}"
        );
        assert_eq!(injector.stats().read_errors, reads_before);
        assert!(!pager.prefetch(0).unwrap(), "prefetch skips quarantined");
        assert_eq!(injector.stats().read_errors, reads_before);
        // Healthy tiles keep paging normally.
        assert_eq!(pager.fetch(1).unwrap().as_ref(), &tile(1));
        std::fs::remove_file(&path).unwrap();
    }

    /// One successful read closes the breaker: failures below the threshold
    /// never quarantine, and the consecutive count resets on success.
    #[test]
    fn a_successful_read_resets_the_breaker() {
        let strikes = QUARANTINE_THRESHOLD as u64 - 1;
        let plan = sccg::FaultPlan::new(7).fail_read(0, strikes);
        let (pager, path, _injector) = build_with_faults("breaker-reset", 1, 1, plan);
        for _ in 0..strikes {
            pager.fetch(0).unwrap_err();
        }
        assert!(!pager.is_quarantined(0), "one strike short of quarantine");
        assert_eq!(pager.fetch(0).unwrap().as_ref(), &tile(0));
        assert_eq!(pager.stats().quarantined_tiles, 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// The fault-injection satellite for single-flight: a failing fetch
    /// must not poison the slot. Racing threads each get either the typed
    /// error (owner or coalesced waiter of a failed fault) or the decoded
    /// tile, nobody hangs, and once the scheduled faults are consumed a
    /// later fetch retries cleanly.
    #[test]
    fn failing_fetch_does_not_poison_the_single_flight_slot() {
        const THREADS: usize = 8;
        let strikes = QUARANTINE_THRESHOLD as u64 - 1;
        let plan = sccg::FaultPlan::new(11).fail_read(0, strikes);
        let (pager, path, injector) = build_with_faults("fault-flight", 1, 2, plan);
        let pager = Arc::new(pager);
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let pager = Arc::clone(&pager);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    match pager.fetch(0) {
                        Ok(records) => assert_eq!(records.as_ref(), &tile(0)),
                        Err(SccgError::Storage { detail }) => {
                            assert!(detail.contains("injected"), "{detail}")
                        }
                        Err(other) => panic!("unexpected error: {other:?}"),
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("fetch thread must not hang or panic");
        }
        // Whatever subset of the schedule the race consumed, the slot was
        // retired on every failure, so retries make progress and succeed
        // once the schedule drains — within `strikes` further attempts.
        let mut retries = 0;
        let records = loop {
            match pager.fetch(0) {
                Ok(records) => break records,
                Err(SccgError::Storage { detail }) => {
                    assert!(detail.contains("injected"), "{detail}");
                    retries += 1;
                    assert!(
                        retries <= strikes,
                        "slot poisoned: retries stopped draining"
                    );
                }
                Err(other) => panic!("unexpected error: {other:?}"),
            }
        };
        assert_eq!(records.as_ref(), &tile(0));
        assert!(pager.is_resident(0));
        assert!(!pager.is_quarantined(0));
        assert_eq!(injector.stats().read_errors, strikes);
        std::fs::remove_file(&path).unwrap();
    }

    /// A coalesced waiter of a failed fault receives the owner's typed
    /// error, and nothing is cached.
    #[test]
    fn prefetch_out_of_range_is_typed() {
        let (pager, path) = build("prefetch-err", 1, 2);
        assert!(matches!(pager.prefetch(9), Err(SccgError::Storage { .. })));
        assert_eq!(pager.stats().misses, 0, "failed reads are not misses");
        assert!(pager.prefetch(0).unwrap());
        std::fs::remove_file(&path).unwrap();
    }
}
