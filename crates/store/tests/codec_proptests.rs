//! Property-based tests for the columnar tile codec.
//!
//! Two properties carry the storage subsystem's correctness story:
//!
//! 1. **Round trip** — any tile of valid rectilinear polygon records
//!    encodes and decodes back bit-identically (ids, vertex chains, record
//!    order). This is what makes the on-disk query path's results
//!    interchangeable with the in-memory path's.
//! 2. **Corruption detection** — flipping any single byte of an encoded
//!    block changes its FNV-1a checksum, so every such corruption is caught
//!    at read time and surfaces as a typed [`SccgError::Storage`], never as
//!    silently wrong polygons.

// The vendored proptest shim's `proptest!` macro expands bodies token by
// token; these test bodies are long enough to overflow the default limit.
#![recursion_limit = "1024"]

use proptest::prelude::*;
use sccg::SccgError;
use sccg_geometry::text::PolygonRecord;
use sccg_geometry::{Point, RectilinearPolygon};
use sccg_store::{decode_tile, encode_tile, fnv1a_64, SlideFile, SlideFileWriter};
use std::path::PathBuf;

/// A random rectilinear "staircase" polygon (always simple and valid),
/// offset anywhere in the i32-safe window.
fn staircase_polygon() -> impl Strategy<Value = RectilinearPolygon> {
    (2usize..8).prop_flat_map(|steps| {
        (
            prop::collection::vec(1i32..6, steps),
            prop::collection::vec(1i32..6, steps),
            -1000i32..1000,
            -1000i32..1000,
        )
            .prop_map(|(dxs, dys, ox, oy)| {
                let total_h: i32 = dys.iter().sum();
                let mut vertices = vec![Point::new(ox, oy), Point::new(ox, oy + total_h)];
                let mut x = ox;
                let mut y = oy + total_h;
                for (dx, dy) in dxs.iter().zip(dys.iter()) {
                    x += dx;
                    vertices.push(Point::new(x, y));
                    y -= dy;
                    vertices.push(Point::new(x, y));
                }
                RectilinearPolygon::new(vertices).expect("staircase is valid")
            })
    })
}

/// A random tile: up to a dozen records with arbitrary ids.
fn tile() -> impl Strategy<Value = Vec<PolygonRecord>> {
    prop::collection::vec(((0u64..u64::MAX), staircase_polygon()), 0..12).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(id, polygon)| PolygonRecord { id, polygon })
            .collect()
    })
}

fn temp_path(tag: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join("sccg-store-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{seed}.sccgt", std::process::id()))
}

proptest! {
    // encode → decode is the identity on arbitrary tiles.
    #[test]
    fn encode_decode_round_trips(records in tile()) {
        let block = encode_tile(&records);
        let decoded = decode_tile(&block).expect("encoded block decodes");
        prop_assert_eq!(decoded, records);
    }

    // Flipping any one byte of a block changes its FNV-1a digest: the
    // write-time checksum always catches a single-byte corruption.
    #[test]
    fn every_single_byte_flip_changes_the_checksum(
        records in tile(),
        flip in (0u8..255),
    ) {
        let block = encode_tile(&records);
        let clean = fnv1a_64(&block);
        let flip = if flip == 0 { 1 } else { flip };
        let mut corrupt = block;
        for i in 0..corrupt.len() {
            corrupt[i] ^= flip;
            prop_assert_ne!(fnv1a_64(&corrupt), clean);
            corrupt[i] ^= flip;
        }
    }

    // End to end through the file layer: write a slide, flip one byte
    // inside a tile block on disk, and the read of that tile (and only
    // that tile) fails with the typed storage error.
    #[test]
    fn on_disk_bit_flips_surface_as_typed_storage_errors(
        tiles in prop::collection::vec(tile(), 1..4),
        seed in (0u64..u64::MAX),
        byte in (0u8..255),
    ) {
        let path = temp_path("bitflip", seed);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for records in &tiles {
            writer.append_tile(records).unwrap();
        }
        let file = writer.finish().unwrap();

        // Pick a victim tile with a non-empty block and a byte inside it.
        let victim = (seed as usize) % tiles.len();
        let entry = file.index()[victim];
        drop(file);
        let mut bytes = std::fs::read(&path).unwrap();
        let within = (byte as u64) % entry.len;
        let pos = (entry.offset + within) as usize;
        let flip = if byte == 0 { 0xA5 } else { byte };
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();

        let file = SlideFile::open(&path).unwrap();
        let err = file.read_tile(victim).unwrap_err();
        prop_assert!(
            matches!(&err, SccgError::Storage { detail } if detail.contains("checksum")),
            "expected a checksum failure, got {:?}", err
        );
        // Containment: every other tile still reads back bit-identically.
        for (i, expected) in tiles.iter().enumerate() {
            if i != victim {
                prop_assert_eq!(&file.read_tile(i).unwrap(), expected);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    // The full file layer round trip: stream tiles out, read them back.
    #[test]
    fn slide_files_round_trip_through_disk(
        tiles in prop::collection::vec(tile(), 0..5),
        seed in (0u64..u64::MAX),
    ) {
        let path = temp_path("roundtrip", seed);
        let mut writer = SlideFileWriter::create(&path).unwrap();
        for records in &tiles {
            writer.append_tile(records).unwrap();
        }
        let file = writer.finish().unwrap();
        prop_assert_eq!(file.tile_count(), tiles.len());
        for (i, expected) in tiles.iter().enumerate() {
            prop_assert_eq!(&file.read_tile(i).unwrap(), expected);
        }
        std::fs::remove_file(&path).unwrap();
    }
}
