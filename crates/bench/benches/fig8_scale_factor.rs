//! Figure 8: PixelOnly vs PixelBox-NoSep vs PixelBox across scale factors.
//!
//! Criterion measures host-side execution of the simulated kernel; the
//! simulated GPU seconds per variant are printed by `reproduce -- fig8`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sccg::pixelbox::GpuBackend;
use sccg::pixelbox::{ComputeBackend, PixelBoxConfig, Variant};
use sccg_bench::representative_pairs;
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let base = PixelBoxConfig::paper_default();
    let mut group = c.benchmark_group("fig8_variants_vs_scale");
    group.sample_size(10);
    for scale in [1, 3, 5] {
        let pairs = representative_pairs(120, scale);
        for (name, variant) in [
            ("pixel_only", Variant::PixelOnly),
            ("pixelbox_nosep", Variant::NoSep),
            ("pixelbox", Variant::Full),
        ] {
            group.bench_with_input(BenchmarkId::new(name, scale), &pairs, |bench, pairs| {
                bench.iter(|| gpu.compute_batch(pairs, &base.with_variant(variant)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
