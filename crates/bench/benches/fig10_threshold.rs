//! Figure 10: sensitivity of PixelBox to the pixelization threshold T.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sccg::pixelbox::GpuBackend;
use sccg::pixelbox::{ComputeBackend, PixelBoxConfig};
use sccg_bench::representative_pairs;
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let pairs = representative_pairs(120, 4);
    let mut group = c.benchmark_group("fig10_threshold_sensitivity");
    group.sample_size(10);
    for threshold in [64u32, 512, 2048, 8192] {
        let config = PixelBoxConfig::paper_default().with_threshold(threshold);
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &pairs,
            |bench, pairs| bench.iter(|| gpu.compute_batch(pairs, &config)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
