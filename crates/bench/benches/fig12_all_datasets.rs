//! Figure 12: SCCG vs PostGIS-M over the 18-data-set study (modelled per
//! data set; this bench measures the functional cross-comparison of one
//! catalog data set end to end plus the model evaluation over the catalog).

use criterion::{criterion_group, criterion_main, Criterion};
use sccg::pipeline::model::{PipelineModel, PlatformConfig, Scheme, TileStats};
use sccg::prelude::*;
use sccg_datagen::{catalog, generate_dataset};

fn bench(c: &mut Criterion) {
    let dataset = generate_dataset(&catalog()[0]);
    let engine = CrossComparison::new(EngineConfig::default());
    let mut group = c.benchmark_group("fig12_datasets");
    group.sample_size(10);
    group.bench_function("cross_compare_dataset_1_functional", |bench| {
        bench.iter(|| {
            dataset
                .tiles
                .iter()
                .map(|tile| engine.compare_records(&tile.first, &tile.second).similarity)
                .sum::<f64>()
        })
    });
    let stats: Vec<Vec<TileStats>> = catalog()
        .iter()
        .take(6)
        .map(|spec| TileStats::from_dataset(&generate_dataset(spec)))
        .collect();
    group.bench_function("speedup_model_first_6_datasets", |bench| {
        bench.iter(|| {
            let sccg_model = PipelineModel::new(PlatformConfig::config_i());
            let postgis_model = PipelineModel::new(PlatformConfig::postgis_m_platform());
            stats
                .iter()
                .map(|tiles| {
                    postgis_model.sdbms_parallel(tiles)
                        / sccg_model.simulate(Scheme::Pipelined, tiles, true)
                })
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
