//! Table 1: execution schemes (PostGIS-S / NoPipe-S / NoPipe-M / Pipelined).
//!
//! The scheme makespans are produced by the deterministic performance model
//! (`reproduce -- table1`); this bench measures the *functional* pipelined
//! framework end to end (parse → build → filter → aggregate on the simulated
//! GPU), with and without migration threads.

use criterion::{criterion_group, criterion_main, Criterion};
use sccg::pipeline::{ParseTask, Pipeline, PipelineConfig};
use sccg::pixelbox::{AggregationDevice, SplitPolicy};
use sccg_bench::system_dataset;

fn bench(c: &mut Criterion) {
    let dataset = system_dataset();
    let tasks: Vec<ParseTask> = dataset
        .tiles
        .iter()
        .map(ParseTask::from_tile_pair)
        .collect();
    let mut group = c.benchmark_group("table1_pipeline_functional");
    group.sample_size(10);
    group.bench_function("pipelined_no_migration", |bench| {
        bench.iter(|| {
            Pipeline::new(PipelineConfig::default().with_migration(false)).run(tasks.clone())
        })
    });
    group.bench_function("pipelined_with_migration", |bench| {
        bench.iter(|| {
            Pipeline::new(PipelineConfig::default().with_migration(true)).run(tasks.clone())
        })
    });
    // The streaming entry point with a deliberately tiny buffer: same
    // answer, O(buffer) resident tiles — measures the backpressure overhead
    // of the event-driven executor against the batch runs above.
    group.bench_function("pipelined_streaming_capacity_2", |bench| {
        bench.iter(|| {
            Pipeline::new(
                PipelineConfig::default()
                    .with_migration(true)
                    .with_buffer_capacity(2),
            )
            .run_streaming(tasks.iter().cloned())
        })
    });
    // The hybrid aggregator, with the split pinned at the seed vs steered by
    // the adaptive controller (the AggregationDevice::Hybrid default).
    for (label, split_policy) in [
        ("pipelined_hybrid_static", SplitPolicy::Static),
        ("pipelined_hybrid_adaptive", SplitPolicy::Adaptive),
    ] {
        group.bench_function(label, |bench| {
            bench.iter(|| {
                Pipeline::new(
                    PipelineConfig::default()
                        .with_migration(true)
                        .with_device(AggregationDevice::Hybrid)
                        .with_split_policy(split_policy),
                )
                .run(tasks.clone())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
