//! Figure 2: SDBMS cross-comparing query, unoptimized vs optimized plan.
//!
//! Regenerates the per-operator decomposition via `reproduce -- fig2`; this
//! bench measures the end-to-end single-core query time of both plans.

use criterion::{criterion_group, criterion_main, Criterion};
use sccg_bench::representative_tile;
use sccg_sdbms::{execute_cross_comparison, PolygonTable, QueryPlan};

fn bench(c: &mut Criterion) {
    let tile = representative_tile(250);
    let a = PolygonTable::new("first", tile.first.clone());
    let b = PolygonTable::new("second", tile.second.clone());
    let mut group = c.benchmark_group("fig2_sdbms_query");
    group.sample_size(10);
    group.bench_function("unoptimized_fig1a", |bench| {
        bench.iter(|| execute_cross_comparison(&a, &b, QueryPlan::Unoptimized))
    });
    group.bench_function("optimized_fig1b", |bench| {
        bench.iter(|| execute_cross_comparison(&a, &b, QueryPlan::Optimized))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
