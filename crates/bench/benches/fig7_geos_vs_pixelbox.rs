//! Figure 7: GEOS-style exact overlay vs PixelBox-CPU-S vs PixelBox (GPU
//! sim), plus the hybrid CPU+GPU split — all dispatched through
//! [`ComputeBackend`].

use criterion::{criterion_group, criterion_main, Criterion};
use sccg::pixelbox::{ComputeBackend, CpuBackend, GpuBackend, HybridBackend, PixelBoxConfig};
use sccg_bench::representative_pairs;
use sccg_clip::pair_areas;
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let pairs = representative_pairs(400, 1);
    let config = PixelBoxConfig::paper_default();
    let cpu_single = CpuBackend::new(1);
    let gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let hybrid = HybridBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())), 1, 0.5);
    let mut group = c.benchmark_group("fig7_area_computation");
    group.sample_size(10);
    group.bench_function("geos_exact_overlay_1core", |bench| {
        bench.iter(|| -> i64 {
            pairs
                .iter()
                .map(|p| pair_areas(&p.p, &p.q).intersection)
                .sum()
        })
    });
    group.bench_function("pixelbox_cpu_single_core", |bench| {
        bench.iter(|| cpu_single.compute_batch(&pairs, &config))
    });
    group.bench_function("pixelbox_gpu_simulated", |bench| {
        bench.iter(|| gpu.compute_batch(&pairs, &config))
    });
    group.bench_function("pixelbox_hybrid_50_50", |bench| {
        bench.iter(|| hybrid.compute_batch(&pairs, &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
