//! Figure 11: dynamic task migration benefit on Config-I/II/III (modelled).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sccg::pipeline::model::{PipelineModel, PlatformConfig, Scheme};
use sccg_bench::{dataset_tile_stats, system_dataset};

fn bench(c: &mut Criterion) {
    let tiles = dataset_tile_stats(&system_dataset());
    let mut group = c.benchmark_group("fig11_migration_model");
    group.sample_size(20);
    for (name, platform) in [
        ("config_i", PlatformConfig::config_i()),
        ("config_ii", PlatformConfig::config_ii()),
        ("config_iii", PlatformConfig::config_iii()),
    ] {
        let model = PipelineModel::new(platform);
        group.bench_with_input(BenchmarkId::from_parameter(name), &tiles, |bench, tiles| {
            bench.iter(|| {
                let without = model.simulate(Scheme::Pipelined, tiles, false);
                let with = model.simulate(Scheme::Pipelined, tiles, true);
                (without, with)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
