//! Figure 9: implementation optimizations (bank conflicts, unrolling, shared
//! memory) on the simulated GPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sccg::pixelbox::GpuBackend;
use sccg::pixelbox::{ComputeBackend, OptimizationFlags, PixelBoxConfig};
use sccg_bench::representative_pairs;
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let base = PixelBoxConfig::paper_default();
    let pairs = representative_pairs(120, 3);
    let variants: [(&str, OptimizationFlags); 4] = [
        ("noopt", OptimizationFlags::none()),
        (
            "nbc",
            OptimizationFlags {
                avoid_bank_conflicts: true,
                unroll_loops: false,
                shared_memory_vertices: false,
            },
        ),
        (
            "nbc_ur",
            OptimizationFlags {
                avoid_bank_conflicts: true,
                unroll_loops: true,
                shared_memory_vertices: false,
            },
        ),
        ("nbc_ur_sm", OptimizationFlags::all()),
    ];
    let mut group = c.benchmark_group("fig9_optimizations");
    group.sample_size(10);
    for (name, opts) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &pairs, |bench, pairs| {
            bench.iter(|| gpu.compute_batch(pairs, &base.with_opts(opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
