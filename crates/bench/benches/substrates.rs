//! Ablation micro-benchmarks of the substrates: Hilbert R-tree join vs naive
//! join, exact overlay vs Monte-Carlo estimation, text parsing throughput,
//! and the hybrid CPU/GPU split — static fractions vs the adaptive
//! controller, on deliberately asymmetric substrate speeds (a single CPU
//! worker against the simulated GTX 580).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sccg::pixelbox::algorithm::{compute_pair, compute_pair_reference};
use sccg::pixelbox::{ComputeBackend, HybridBackend, PixelBoxConfig, SplitConfig};
use sccg_bench::{dense_l_pair, filtered_pairs, representative_tile};
use sccg_clip::{monte_carlo_areas, pair_areas};
use sccg_geometry::edge_table::{
    overlap_len_in, overlap_len_in_scalar, span_len_in, span_len_in_scalar, LANES,
};
use sccg_geometry::text::{parse_polygon_file, write_polygon_file};
use sccg_geometry::Rect;
use sccg_gpu_sim::{Device, DeviceConfig};
use sccg_rtree::{mbr_join, naive_mbr_join};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let tile = representative_tile(300);
    let left: Vec<Rect> = tile.first.iter().map(|r| r.polygon.mbr()).collect();
    let right: Vec<Rect> = tile.second.iter().map(|r| r.polygon.mbr()).collect();
    let text = write_polygon_file(&tile.first);
    let p = &tile.first[0].polygon;
    let q = &tile.second[0].polygon;

    let mut group = c.benchmark_group("substrates");
    group.sample_size(20);
    group.bench_function("mbr_join_hilbert_rtree", |bench| {
        bench.iter(|| mbr_join(&left, &right))
    });
    group.bench_function("mbr_join_naive", |bench| {
        bench.iter(|| naive_mbr_join(&left, &right))
    });
    group.bench_function("exact_overlay_pair", |bench| {
        bench.iter(|| pair_areas(p, q))
    });
    group.bench_function("monte_carlo_pair_10k_samples", |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            monte_carlo_areas(p, q, 10_000, &mut rng)
        })
    });
    group.bench_function("parse_polygon_file", |bench| {
        bench.iter(|| parse_polygon_file(&text).unwrap())
    });

    // Dense pixelization ablation: two large overlapping L-shapes with the
    // threshold far above the region size, so the whole joint MBR is
    // finished by the pixelization kernel. The `scanline` row is the
    // interval fast path, the `per_pixel_seed` row the retained seed loop —
    // same areas, same trace, different cost (the fast path's acceptance
    // target is ≥ 100× on this shape; the observed gap is far larger).
    let dense = dense_l_pair(512);
    let dense_threshold = 1u32 << 30; // threshold ≫ region: pixelize at once
    group.bench_function("pixelize_dense_scanline", |bench| {
        bench.iter(|| compute_pair(&dense, dense_threshold, 64, sccg::pixelbox::Variant::Full))
    });
    group.sample_size(10);
    group.bench_function("pixelize_dense_per_pixel_seed", |bench| {
        bench.iter(|| {
            compute_pair_reference(&dense, dense_threshold, 64, sccg::pixelbox::Variant::Full)
        })
    });
    group.sample_size(20);

    // Interval-merge kernel ablation: the lane-chunked branchless kernels vs
    // their early-break scalar references, on crossing lists wide enough to
    // span several lane chunks (the kernels are proven bit-identical by the
    // lane-boundary proptests; these rows track the cost gap).
    let wide_a: Vec<i32> = (0..(4 * LANES as i32 + 2)).map(|i| 3 * i).collect();
    let wide_b: Vec<i32> = (0..(4 * LANES as i32 + 2)).map(|i| 3 * i + 1).collect();
    let (lo, hi) = (4, 3 * (4 * LANES as i32 + 2) - 4);
    group.bench_function("interval_merge_scalar", |bench| {
        bench.iter(|| {
            span_len_in_scalar(&wide_a, lo, hi) + overlap_len_in_scalar(&wide_a, &wide_b, lo, hi)
        })
    });
    group.bench_function("interval_merge_lanes", |bench| {
        bench.iter(|| span_len_in(&wide_a, lo, hi) + overlap_len_in(&wide_a, &wide_b, lo, hi))
    });

    // Hybrid split ablation: the same pair stream chunked into batches, run
    // through static GPU fractions and the adaptive controller. The backend
    // (and so the controller's learned state) persists across iterations, so
    // the adaptive rows report converged behavior; the acceptance target is
    // adaptive wall-clock ≤ the best static fraction within 10%.
    let pairs = filtered_pairs(&tile);
    let pixelbox = PixelBoxConfig::paper_default();
    for (label, split) in [
        ("hybrid_split_static_0.25", SplitConfig::fixed(0.25)),
        ("hybrid_split_static_0.50", SplitConfig::fixed(0.50)),
        ("hybrid_split_static_0.75", SplitConfig::fixed(0.75)),
        ("hybrid_split_adaptive", SplitConfig::adaptive(0.5)),
    ] {
        let backend =
            HybridBackend::with_split(Arc::new(Device::new(DeviceConfig::gtx580())), 1, split);
        group.bench_function(label, |bench| {
            bench.iter(|| {
                let mut computed = 0usize;
                for chunk in pairs.chunks(64) {
                    computed += backend.compute_batch(chunk, &pixelbox).areas.len();
                }
                computed
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
