//! Regenerates every table and figure of the paper's evaluation section,
//! plus demos of the serving layer (`serve`), the out-of-core slide storage
//! (`store`), the locality-aware shard scheduler (`locality`), the
//! fault-injection chaos smoke (`chaos`), the bounded-memory streaming
//! executor (`stream`), and the JSON perf baseline (`bench`, which writes
//! `BENCH_pixelbox.json`).
//!
//! ```text
//! cargo run -p sccg-bench --release --bin reproduce -- all
//! cargo run -p sccg-bench --release --bin reproduce -- fig8 fig10 table1
//! cargo run -p sccg-bench --release --bin reproduce -- serve store stream bench
//! ```
//!
//! Each experiment prints the same rows/series the paper reports. Absolute
//! numbers differ from the paper (the GPU is simulated and the data sets are
//! synthetic); the *shapes* — who wins, by roughly what factor, where the
//! crossovers fall — are the reproduction target (see EXPERIMENTS.md).

use sccg::pipeline::model::{HybridSplitMode, PipelineModel, PlatformConfig, Scheme};
use sccg::pipeline::{ParseTask, Pipeline, PipelineConfig, PipelineReport};
use sccg::pixelbox::{
    AggregationDevice, ComputeBackend, CpuBackend, GpuBackend, HybridBackend, OptimizationFlags,
    PixelBoxConfig, Variant,
};
use sccg::EngineConfig;
use sccg_bench::{dataset_tile_stats, representative_pairs, study_datasets, system_dataset};
use sccg_clip::pair_areas;
use sccg_datagen::generate_tile_pair;
use sccg_gpu_sim::{Device, DeviceConfig};
use sccg_sdbms::{execute_cross_comparison, PolygonTable, QueryPlan};
use sccg_serve::{
    json, ComparisonService, PlacementPolicy, QueryPriority, QueryRequest, QueryResponse,
    ServiceConfig, SlideStore,
};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("SCCG reproduction — regenerating paper tables and figures");
    println!("==========================================================");

    if want("fig2") {
        figure2();
    }
    if want("fig7") {
        figure7();
    }
    if want("fig8") {
        figure8();
    }
    if want("fig9") {
        figure9();
    }
    if want("fig10") {
        figure10();
    }
    if want("table1") {
        table1();
    }
    if want("fig11") {
        figure11();
    }
    if want("fig12") {
        figure12();
    }
    if want("serve") {
        serve();
    }
    if want("store") {
        store_smoke();
    }
    if want("locality") {
        locality();
    }
    if want("chaos") {
        chaos();
    }
    if want("stream") {
        stream();
    }
    if want("bench") {
        bench_baseline();
    }
    // Deliberately not part of `all`: the gate reads what `bench` appended,
    // so CI runs it as a separate step right after the bench step.
    if args.iter().any(|a| a == "trajectory-gate") {
        trajectory_gate();
    }
}

/// Checks the latest `BENCH_trajectory.json` entry against the best recorded
/// rates (see [`sccg_bench::trajectory::check_gate`]) and exits non-zero on a
/// regression.
fn trajectory_gate() {
    use sccg_bench::trajectory::{check_gate, read_trajectory, TRAJECTORY_PATH};

    println!("\n[Gate] perf trajectory ({TRAJECTORY_PATH})");
    let entries = match read_trajectory(std::path::Path::new(TRAJECTORY_PATH)) {
        Ok(entries) => entries,
        Err(err) => {
            eprintln!("  FAIL: {err}");
            std::process::exit(1);
        }
    };
    match check_gate(&entries) {
        Ok(lines) => {
            let latest = entries
                .iter()
                .rev()
                .find(|e| !e.substrates.is_empty())
                .expect("gate passed on a trajectory with bench entries");
            println!(
                "  latest entry \"{}\" vs {} recorded entr{}:",
                latest.label,
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" }
            );
            for line in lines {
                println!("  {line}");
            }
            println!("  gate passed");
        }
        Err(err) => {
            eprintln!("  FAIL: {err}");
            std::process::exit(1);
        }
    }
}

fn gpu_backend() -> GpuBackend {
    GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())))
}

/// Figure 2: execution-time decomposition of the cross-comparing queries in
/// the SDBMS on a single core.
fn figure2() {
    println!("\n[Figure 2] SDBMS query time decomposition (single core)");
    let tile = generate_tile_pair(&sccg_datagen::TileSpec {
        target_polygons: 400,
        width: 2048,
        height: 2048,
        seed: 2,
        ..Default::default()
    });
    let a = PolygonTable::new("oligoastroiii_1_1", tile.first);
    let b = PolygonTable::new("oligoastroiii_1_2", tile.second);
    let labels = [
        "Index Build",
        "Index Search",
        "ST_Intersects",
        "Area_Of_Intersection",
        "Area_Of_Union",
        "ST_Area",
        "Other",
    ];
    for (name, plan) in [
        ("unoptimized (Fig 1a)", QueryPlan::Unoptimized),
        ("optimized   (Fig 1b)", QueryPlan::Optimized),
    ] {
        let result = execute_cross_comparison(&a, &b, plan);
        println!(
            "  {name}: total {:.3} s, {} candidate pairs, similarity {:.4}",
            result.profile.total(),
            result.candidate_pairs,
            result.similarity
        );
        for (label, pct) in labels.iter().zip(result.profile.percentages()) {
            println!("    {label:<22} {pct:5.1} %");
        }
    }
}

/// Figure 7: GEOS vs PixelBox-CPU-S vs PixelBox.
fn figure7() {
    println!("\n[Figure 7] GEOS vs PixelBox-CPU-S vs PixelBox (simulated GPU)");
    let pairs = representative_pairs(1500, 1);
    println!("  workload: {} MBR-intersecting polygon pairs", pairs.len());
    let config = PixelBoxConfig::paper_default();

    let started = Instant::now();
    let geos: Vec<_> = pairs.iter().map(|p| pair_areas(&p.p, &p.q)).collect();
    let geos_seconds = started.elapsed().as_secs_f64();

    let started = Instant::now();
    let cpu = CpuBackend::new(1).compute_batch(&pairs, &config);
    let cpu_seconds = started.elapsed().as_secs_f64();

    let gpu = gpu_backend().compute_batch(&pairs, &config);
    let gpu_seconds = gpu.total_simulated_seconds();

    let hybrid_backend = HybridBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())), 1, 0.5);
    let hybrid = hybrid_backend.compute_batch(&pairs, &config);
    assert_eq!(
        geos.iter().map(|a| a.intersection).sum::<i64>(),
        cpu.areas.iter().map(|a| a.intersection).sum::<i64>()
    );
    assert_eq!(
        cpu.areas, gpu.areas,
        "PixelBox CPU and GPU must agree exactly"
    );
    assert_eq!(cpu.areas, hybrid.areas, "hybrid split must agree exactly");

    println!("  GEOS (exact overlay, 1 core):   {geos_seconds:10.4} s   speedup 1.0x");
    println!(
        "  PixelBox-CPU-S (1 core):        {cpu_seconds:10.4} s   speedup {:.1}x",
        geos_seconds / cpu_seconds
    );
    println!(
        "  PixelBox (simulated GTX 580):   {gpu_seconds:10.4} s   speedup {:.1}x  (simulated time)",
        geos_seconds / gpu_seconds
    );
    println!(
        "  PixelBox-Hybrid (50/50 split):  {:10.4} s of simulated GPU time for half the batch",
        hybrid.total_simulated_seconds()
    );
}

/// Figure 8: PixelOnly vs PixelBox-NoSep vs PixelBox across scale factors.
fn figure8() {
    println!("\n[Figure 8] Algorithm variants vs polygon scale factor (simulated GPU seconds)");
    let engine = gpu_backend();
    let base = PixelBoxConfig::paper_default();
    println!("  SF   PixelOnly    PixelBox-NoSep    PixelBox");
    for scale in 1..=5 {
        let pairs = representative_pairs(250, scale);
        let mut row = vec![format!("  {scale}  ")];
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let result = engine.compute_batch(&pairs, &base.with_variant(variant));
            row.push(format!("{:12.6}", result.kernel_seconds()));
        }
        println!("{}", row.join("  "));
    }
}

/// Figure 9: effect of the implementation optimizations.
fn figure9() {
    println!("\n[Figure 9] Implementation optimizations (speedup over PixelBox-NoOpt)");
    let engine = gpu_backend();
    let base = PixelBoxConfig::paper_default();
    let variants: [(&str, OptimizationFlags); 4] = [
        ("PixelBox-NoOpt", OptimizationFlags::none()),
        (
            "PixelBox-NBC",
            OptimizationFlags {
                avoid_bank_conflicts: true,
                unroll_loops: false,
                shared_memory_vertices: false,
            },
        ),
        (
            "PixelBox-NBC-UR",
            OptimizationFlags {
                avoid_bank_conflicts: true,
                unroll_loops: true,
                shared_memory_vertices: false,
            },
        ),
        ("PixelBox-NBC-UR-SM", OptimizationFlags::all()),
    ];
    println!("  scale factor:      SF1      SF3      SF5");
    let mut rows = vec![vec![0.0f64; 3]; variants.len()];
    for (col, scale) in [1, 3, 5].into_iter().enumerate() {
        let pairs = representative_pairs(250, scale);
        let mut baseline = 0.0;
        for (row, (_, opts)) in variants.iter().enumerate() {
            let result = engine.compute_batch(&pairs, &base.with_opts(*opts));
            if row == 0 {
                baseline = result.kernel_seconds();
            }
            rows[row][col] = baseline / result.kernel_seconds();
        }
    }
    for ((name, _), row) in variants.iter().zip(rows) {
        println!(
            "  {name:<20} {:7.2}x {:7.2}x {:7.2}x",
            row[0], row[1], row[2]
        );
    }
}

/// Figure 10: sensitivity to the pixelization threshold T.
fn figure10() {
    println!(
        "\n[Figure 10] Pixelization threshold sensitivity (block size 64, simulated GPU seconds)"
    );
    let engine = gpu_backend();
    let thresholds = [64u32, 128, 256, 512, 1024, 2048, 4096, 8192, 16384];
    print!("  T:        ");
    for t in thresholds {
        print!("{t:>9}");
    }
    println!();
    for scale in [1, 2, 3, 4, 5] {
        let pairs = representative_pairs(250, scale);
        print!("  SF{scale}      ");
        for t in thresholds {
            let config = PixelBoxConfig::paper_default().with_threshold(t);
            let result = engine.compute_batch(&pairs, &config);
            print!("{:9.5}", result.kernel_seconds());
        }
        println!();
    }
    println!("  (the paper's best region is T in [n^2/8, n^2] = [512, 4096] for 64-thread blocks)");
}

fn scheme_rows(tiles: &[sccg::pipeline::model::TileStats]) -> Vec<(&'static str, f64)> {
    let model = PipelineModel::new(PlatformConfig::config_i());
    let postgis = model.sdbms_single_core(tiles);
    vec![
        ("PostGIS-S", postgis),
        ("NoPipe-S", model.simulate(Scheme::NoPipeS, tiles, false)),
        (
            "NoPipe-M",
            model.simulate(Scheme::NoPipeM { streams: 4 }, tiles, false),
        ),
        ("Pipelined", model.simulate(Scheme::Pipelined, tiles, false)),
    ]
}

/// Table 1: speedups of the execution schemes over PostGIS-S, plus the
/// hybrid-aggregator variants (static fractions vs the adaptive controller).
fn table1() {
    println!("\n[Table 1] Execution schemes, speedup over PostGIS-S (modelled, Config-I)");
    let dataset = system_dataset();
    let tiles = dataset_tile_stats(&dataset);
    let rows = scheme_rows(&tiles);
    let baseline = rows[0].1;
    for (name, seconds) in rows {
        println!(
            "  {name:<10} {:10.3} s   speedup {:7.2}x",
            seconds,
            baseline / seconds
        );
    }

    // The hybrid-aggregator comparison runs over a longer stream (the data
    // set cycled 4x, as when several slides are processed back to back) so
    // the adaptive controller's convergence transient — warm-up at the seed,
    // then clamped steps toward the balanced split — amortizes the way it
    // would in production, instead of dominating a 3-batch run.
    println!("  hybrid aggregator (GPU + spare CPU workers), 4x tile stream, modelled:");
    let model = PipelineModel::new(PlatformConfig::config_i());
    let stream: Vec<_> = std::iter::repeat_n(tiles.iter().copied(), 4)
        .flatten()
        .collect();
    let mut best_static = f64::INFINITY;
    for fraction in [0.25, 0.5, 0.75] {
        let report = model.simulate_pipelined_hybrid(&stream, HybridSplitMode::Static(fraction));
        best_static = best_static.min(report.aggregation_seconds);
        println!(
            "  Hybrid static {fraction:.2}   aggregation {:8.3} s   total {:8.3} s",
            report.aggregation_seconds, report.seconds
        );
    }
    let adaptive = model.simulate_pipelined_hybrid(&stream, HybridSplitMode::Adaptive);
    println!(
        "  Hybrid adaptive    aggregation {:8.3} s   total {:8.3} s   ({:.2}x best static, GPU \
         fraction 0.50 → {:.2} over {} batches)",
        adaptive.aggregation_seconds,
        adaptive.seconds,
        adaptive.aggregation_seconds / best_static,
        adaptive.trace.last_fraction().unwrap_or(0.5),
        adaptive.trace.len()
    );
}

/// Serving-layer demo: a `SlideStore` + `ComparisonService` answering
/// concurrent mixed-device whole-slide queries, with response caching,
/// admission control and pooled hybrid split telemetry exported as JSON —
/// then the same service fronted by the wire protocol: a loopback
/// `WireServer` driven by the load generator (≥4 concurrent clients),
/// streamed responses checked bit-identical to the in-process fold, and the
/// measured qps/p50/p99 appended to `BENCH_trajectory.json`.
fn serve() {
    println!("\n[Serve] SlideStore + ComparisonService (sharded engine pool)");
    let dataset = sccg_datagen::generate_dataset(&sccg_datagen::DatasetSpec {
        name: "serve-demo".into(),
        tiles: 12,
        polygons_per_tile: 80,
        tile_size: 512,
        seed: 12,
        nucleus_radius: 6,
    });
    let store = SlideStore::new();
    let first = store.register_slide(
        "serve-demo-algo-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "serve-demo-algo-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );

    let bound = 2;
    let service = Arc::new(
        ComparisonService::new(
            store,
            ServiceConfig::default()
                .with_engines(vec![
                    EngineConfig::default(),
                    EngineConfig::default().with_device(AggregationDevice::Cpu),
                    EngineConfig::default().with_device(AggregationDevice::Hybrid),
                    EngineConfig::default().with_device(AggregationDevice::Hybrid),
                ])
                .with_max_in_flight(bound),
        )
        .expect("service starts"),
    );
    println!(
        "  engine pool {:?}, admission bound {bound}, {} tiles per slide",
        service.engine_devices(),
        dataset.tiles.len()
    );

    // Concurrent mixed-device queries: unrestricted, CPU-pinned,
    // hybrid-pinned, and a high-priority tile subset.
    let started = Instant::now();
    let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
        let requests = vec![
            ("any-device ", QueryRequest::new(first, second)),
            (
                "cpu-pinned ",
                QueryRequest::new(first, second).on_device(AggregationDevice::Cpu),
            ),
            (
                "hybrid     ",
                QueryRequest::new(first, second).on_device(AggregationDevice::Hybrid),
            ),
            (
                "subset/high",
                QueryRequest::new(first, second)
                    .tiles(vec![0, 1, 2, 3])
                    .priority(QueryPriority::High),
            ),
        ];
        let handles: Vec<_> = requests
            .into_iter()
            .map(|(label, request)| {
                let service = &service;
                scope.spawn(move || (label, service.submit(request).unwrap().wait().unwrap()))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                let (label, response) = handle.join().expect("query thread");
                println!(
                    "  {label}  J' {:.6}  {:>2} shards  backends {:?}",
                    response.similarity(),
                    response.shards,
                    response.backends_used()
                );
                response
            })
            .collect()
    });
    println!(
        "  {} concurrent queries in {:.3} s",
        responses.len(),
        started.elapsed().as_secs_f64()
    );
    assert_eq!(
        responses[0].summary, responses[1].summary,
        "sharding and device choice never change the answer"
    );

    // Resubmission: served from the cache, no backend work.
    let batches_before = service.stats().backend_batches;
    let repeat = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert!(repeat.cache_hit && service.stats().backend_batches == batches_before);
    println!("  resubmission: cache hit (backend batches still {batches_before})");

    let stats = service.stats();
    println!("  stats: {}", json::stats_to_json(&stats));
    println!("  response: {}", json::response_to_json(&repeat));
    if let Some(trace) = service.split_trace() {
        println!(
            "  pooled split trace ({} hybrid batches): {}",
            trace.len(),
            json::split_trace_to_json(&trace)
        );
    }

    // The same service fronted by the framed wire protocol over loopback:
    // the load generator drives concurrent streaming clients, and every
    // decoded response must be bit-identical to the in-process fold above
    // (floats travel as IEEE-754 bit patterns, so this is exact equality).
    use sccg_net::{LoadGenConfig, NetConfig, WireRequestSpec, WireResponse, WireServer};
    println!("\n[Serve] Wire front-end: loopback WireServer + load generator");
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("wire server starts");
    let clients = 4usize;
    let queries_per_client = 6usize;
    let load = LoadGenConfig::new(vec![WireRequestSpec::new(first, second)])
        .with_clients(clients)
        .with_queries_per_client(queries_per_client);
    let report = sccg_net::run_loadgen(server.local_addr(), &load).expect("load run completes");

    let baseline = {
        let mut wire = WireResponse::of_response(&repeat);
        wire.cache_hit = false;
        wire
    };
    for outcome in &report.outcomes {
        let mut over_wire = outcome.outcome.response.clone();
        over_wire.cache_hit = false;
        assert_eq!(
            over_wire, baseline,
            "streamed wire response must be bit-identical to the in-process response"
        );
    }
    println!(
        "  {} clients x {} streaming queries over {}: all {} responses bit-identical \
         ({} tile frames streamed)",
        clients,
        queries_per_client,
        server.local_addr(),
        report.queries,
        report.tile_frames
    );
    println!(
        "  {{\"wire_loadgen\": {{\"clients\": {clients}, \"queries\": {}, \"qps\": {:.1}, \
         \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \"max_ms\": {:.3}}}}}",
        report.queries, report.qps, report.p50_ms, report.p99_ms, report.mean_ms, report.max_ms
    );

    // Track the serving-layer numbers alongside the bench trajectory; the
    // perf gate knows to skip serve-only entries when judging substrates.
    use sccg_bench::trajectory::{append_entry, ServeMetrics, TrajectoryEntry, TRAJECTORY_PATH};
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = append_entry(
        std::path::Path::new(TRAJECTORY_PATH),
        TrajectoryEntry {
            label: "serve".to_string(),
            unix_seconds,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: Some(ServeMetrics {
                clients: clients as u64,
                queries: report.queries as u64,
                qps: report.qps,
                p50_ms: report.p50_ms,
                p99_ms: report.p99_ms,
            }),
            store: None,
            locality: None,
            chaos: None,
        },
    )
    .expect("append serve metrics to BENCH_trajectory.json");
    println!(
        "  appended serve metrics to {TRAJECTORY_PATH} ({} entries)",
        entries.len()
    );
}

/// `store`: out-of-core storage smoke. Streams a dataset larger than the
/// pager's residency bound onto disk through `SlideStore::with_spill`, runs
/// a whole-slide query against it and against an in-memory twin of the same
/// tiles, and asserts the answers are bit-identical while peak residency
/// stayed within the bound — the paper's bounded-buffer discipline (§4.1)
/// applied to storage. Then measures cold-read (every fetch decodes its
/// block from disk) and warm-read (working set within the bound) tile rates
/// against a standalone pager and appends them to `BENCH_trajectory.json`;
/// the perf gate skips store-only entries just as it skips serve-only ones.
fn store_smoke() {
    use sccg_bench::trajectory::{append_entry, StoreMetrics, TrajectoryEntry, TRAJECTORY_PATH};
    use sccg_geometry::text::write_polygon_file;
    use sccg_store::{SlideFileWriter, TileStorage};

    println!("\n[Store] Out-of-core slide storage (columnar tile format + demand pager)");
    const TILES: u32 = 24;
    const RESIDENCY_BOUND: usize = 6;
    let dataset = sccg_datagen::generate_dataset(&sccg_datagen::DatasetSpec {
        name: "store-smoke".into(),
        tiles: TILES,
        polygons_per_tile: 64,
        tile_size: 512,
        seed: 77,
        nucleus_radius: 6,
    });
    let first_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.first))
        .collect();
    let second_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.second))
        .collect();

    // The in-memory twin: the classic whole-slide-resident registration.
    let memory_store = SlideStore::new();
    let mem_first = memory_store
        .register_slide_text("store-smoke-a", &first_texts)
        .expect("register in-memory slide");
    let mem_second = memory_store
        .register_slide_text("store-smoke-b", &second_texts)
        .expect("register in-memory slide");

    // The out-of-core path: registration streams tile-by-tile onto disk
    // (never holding the whole slide), queries fault tiles back in through a
    // pager bounded well below the slide size.
    let dir = std::env::temp_dir().join(format!("sccg-store-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_store = SlideStore::with_spill(&dir, RESIDENCY_BOUND).expect("create spill dir");
    let disk_first = disk_store
        .register_slide_streaming("store-smoke-a", first_texts)
        .expect("stream slide to disk");
    let disk_second = disk_store
        .register_slide_streaming("store-smoke-b", second_texts)
        .expect("stream slide to disk");
    let registered = disk_store.storage_stats();
    println!(
        "  {} tiles/slide streamed to disk ({} bytes across {} files), residency bound \
         {RESIDENCY_BOUND} tiles/slide",
        TILES, registered.bytes_on_disk, registered.disk_slides
    );
    assert!(
        TILES as usize > RESIDENCY_BOUND,
        "the smoke must page: dataset no larger than the residency bound"
    );

    let memory_service =
        ComparisonService::new(memory_store, ServiceConfig::default()).expect("service starts");
    let disk_service = ComparisonService::new(disk_store.clone(), ServiceConfig::default())
        .expect("service starts");
    let mem = memory_service
        .submit(QueryRequest::new(mem_first, mem_second))
        .unwrap()
        .wait()
        .expect("in-memory query");
    let disk = disk_service
        .submit(QueryRequest::new(disk_first, disk_second))
        .unwrap()
        .wait()
        .expect("disk-backed query");
    assert_eq!(
        mem.summary, disk.summary,
        "disk-backed whole-slide query must be bit-identical to the in-memory path"
    );
    assert_eq!(mem.tiles.len(), disk.tiles.len());
    for (m, d) in mem.tiles.iter().zip(&disk.tiles) {
        assert_eq!(m.tile, d.tile);
        assert_eq!(m.summary, d.summary, "tile {} diverged", m.tile);
        assert_eq!(m.candidate_pairs, d.candidate_pairs);
    }
    let storage = disk_service.store().storage_stats();
    assert!(
        storage.peak_resident_tiles <= 2 * RESIDENCY_BOUND,
        "peak residency {} exceeded the bound {}",
        storage.peak_resident_tiles,
        2 * RESIDENCY_BOUND
    );
    println!(
        "  whole-slide query: J' {:.6} — bit-identical to the in-memory path; peak resident \
         {} tiles (bound {} across both slides), pager hit rate {:.3}",
        disk.similarity(),
        storage.peak_resident_tiles,
        2 * RESIDENCY_BOUND,
        storage.pager_hit_rate
    );

    // Cold vs warm read rates against a standalone pager over one slide:
    // a full sequential scan misses every fetch (the scan is longer than the
    // bound), then repeated passes over a bound-sized working set hit.
    let rates_path = dir.join("rates.sccgt");
    let mut writer = SlideFileWriter::create(&rates_path).expect("create rates slide");
    for tile in &dataset.tiles {
        writer.append_tile(&tile.first).expect("append tile");
    }
    let file = writer.finish().expect("finish rates slide");
    let pager = TileStorage::new(file, RESIDENCY_BOUND);

    let started = Instant::now();
    for tile in 0..pager.tile_count() {
        pager.fetch(tile).expect("cold fetch");
    }
    let cold_seconds = started.elapsed().as_secs_f64();
    let cold_tiles_per_sec = pager.tile_count() as f64 / cold_seconds;

    const WARM_PASSES: usize = 64;
    let working_set = RESIDENCY_BOUND.min(pager.tile_count());
    for tile in 0..working_set {
        pager.fetch(tile).expect("prime fetch"); // fault the working set in
    }
    let started = Instant::now();
    for _ in 0..WARM_PASSES {
        for tile in 0..working_set {
            pager.fetch(tile).expect("warm fetch");
        }
    }
    let warm_seconds = started.elapsed().as_secs_f64();
    let warm_tiles_per_sec = (WARM_PASSES * working_set) as f64 / warm_seconds;
    let pager_stats = pager.stats();
    assert!(pager_stats.peak_resident <= RESIDENCY_BOUND);
    println!(
        "  cold read {cold_tiles_per_sec:10.0} tiles/s   warm read {warm_tiles_per_sec:10.0} \
         tiles/s   pager hit rate {:.3} ({} hits / {} misses)",
        pager_stats.hit_rate, pager_stats.hits, pager_stats.misses
    );

    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = append_entry(
        std::path::Path::new(TRAJECTORY_PATH),
        TrajectoryEntry {
            label: "store".to_string(),
            unix_seconds,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: Some(StoreMetrics {
                cold_tiles_per_sec,
                warm_tiles_per_sec,
                pager_hit_rate: pager_stats.hit_rate,
            }),
            locality: None,
            chaos: None,
        },
    )
    .expect("append store metrics to BENCH_trajectory.json");
    println!(
        "  appended store metrics to {TRAJECTORY_PATH} ({} entries)",
        entries.len()
    );

    drop(disk_service);
    drop(pager);
    drop(disk_store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// `locality`: locality-aware scheduling smoke. Runs the identical
/// disk-backed whole-slide workload under both placement policies — the
/// historical round-robin dispatch and the residency-aware default — for
/// several repeated query rounds, checks every paged response bit-identical
/// to an in-memory twin (placement can reorder work but never change the
/// answer), and asserts the residency-aware run faulted *fewer* tiles from
/// disk: resident-first ordering turns the start of each round into pager
/// hits, and the background prefetcher overlaps upcoming faults with
/// compute. The miss gap and the scheduler counters are appended to
/// `BENCH_trajectory.json` as a `locality` entry (empty substrates, so the
/// perf gate skips it just as it skips serve- and store-only entries).
fn locality() {
    use sccg_bench::trajectory::{append_entry, LocalityMetrics, TrajectoryEntry, TRAJECTORY_PATH};
    use sccg_geometry::text::write_polygon_file;

    println!("\n[Locality] Residency-aware shard placement vs the round-robin baseline");
    const TILES: u32 = 12;
    const RESIDENCY_BOUND: usize = 4;
    const ROUNDS: usize = 4;
    let dataset = sccg_datagen::generate_dataset(&sccg_datagen::DatasetSpec {
        name: "locality-smoke".into(),
        tiles: TILES,
        polygons_per_tile: 48,
        tile_size: 512,
        seed: 91,
        nucleus_radius: 6,
    });
    let first_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.first))
        .collect();
    let second_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.second))
        .collect();

    // Both runs share this config: one CPU engine so dispatch order is the
    // only degree of freedom, a second executor thread so the prefetcher can
    // overlap with the worker, and no response cache so every round actually
    // recomputes (and therefore re-pages) the slide pair.
    let config = |policy: PlacementPolicy| {
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default().with_device(AggregationDevice::Cpu)
            ])
            .with_executor_threads(2)
            .with_cache_capacity(0)
            .with_placement(policy)
    };

    // The in-memory twin: the answer every paged round must reproduce.
    let memory_store = SlideStore::new();
    let mem_first = memory_store
        .register_slide_text("locality-a", &first_texts)
        .expect("register in-memory slide");
    let mem_second = memory_store
        .register_slide_text("locality-b", &second_texts)
        .expect("register in-memory slide");
    let memory_service = ComparisonService::new(memory_store, config(PlacementPolicy::RoundRobin))
        .expect("service starts");
    let baseline = memory_service
        .submit(QueryRequest::new(mem_first, mem_second))
        .unwrap()
        .wait()
        .expect("in-memory query");

    // One disk-backed run per policy: same tiles, same residency bound, same
    // repeated whole-slide query — only the placement differs.
    let run = |policy: PlacementPolicy| {
        let dir =
            std::env::temp_dir().join(format!("sccg-locality-{}-{:?}", std::process::id(), policy));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SlideStore::with_spill(&dir, RESIDENCY_BOUND).expect("create spill dir");
        let first = store
            .register_slide_streaming("locality-a", first_texts.clone())
            .expect("stream slide to disk");
        let second = store
            .register_slide_streaming("locality-b", second_texts.clone())
            .expect("stream slide to disk");
        let service = ComparisonService::new(store, config(policy)).expect("service starts");
        let mut responses = Vec::new();
        for _ in 0..ROUNDS {
            responses.push(
                service
                    .submit(QueryRequest::new(first, second))
                    .unwrap()
                    .wait()
                    .expect("disk-backed query"),
            );
        }
        let stats = service.stats();
        let storage = service.store().storage_stats();
        drop(service);
        let _ = std::fs::remove_dir_all(&dir);
        (responses, stats, storage)
    };
    let (rr_responses, rr_stats, rr_storage) = run(PlacementPolicy::RoundRobin);
    let (ra_responses, ra_stats, ra_storage) = run(PlacementPolicy::ResidencyAware);

    for (label, responses) in [
        ("round-robin", &rr_responses),
        ("residency-aware", &ra_responses),
    ] {
        for (round, response) in responses.iter().enumerate() {
            assert_eq!(
                response.summary, baseline.summary,
                "{label} round {round} diverged from the in-memory twin"
            );
            assert_eq!(response.tiles.len(), baseline.tiles.len());
            for (paged, mem) in response.tiles.iter().zip(&baseline.tiles) {
                assert_eq!(paged.tile, mem.tile);
                assert_eq!(paged.summary, mem.summary, "tile {} diverged", mem.tile);
                assert_eq!(paged.candidate_pairs, mem.candidate_pairs);
            }
        }
    }
    println!(
        "  {ROUNDS} whole-slide rounds per policy, {TILES} tiles/slide, residency bound \
         {RESIDENCY_BOUND}: all responses bit-identical to the in-memory twin"
    );
    println!(
        "  round-robin      {:4} pager misses  ({} hits)",
        rr_storage.pager_misses, rr_storage.pager_hits
    );
    println!(
        "  residency-aware  {:4} pager misses  ({} hits, {} faults avoided, {} affinity hits, \
         prefetch {} issued / {} used / {} wasted)",
        ra_storage.pager_misses,
        ra_storage.pager_hits,
        ra_stats.scheduler.faults_avoided,
        ra_stats.scheduler.affinity_hits,
        ra_stats.scheduler.prefetch_issued,
        ra_stats.scheduler.prefetch_used,
        ra_stats.scheduler.prefetch_wasted
    );
    println!("  stats: {}", json::stats_to_json(&ra_stats));
    assert!(
        ra_storage.pager_misses < rr_storage.pager_misses,
        "residency-aware placement must fault fewer tiles than round-robin ({} vs {})",
        ra_storage.pager_misses,
        rr_storage.pager_misses
    );
    assert!(
        ra_stats.scheduler.faults_avoided > 0,
        "resident-first ordering must dispatch some shards without touching disk"
    );
    assert!(
        ra_stats.scheduler.affinity_hits > 0,
        "some shards must land on the engine holding their tiles resident"
    );
    assert!(
        ra_stats.scheduler.prefetch_issued > 0,
        "the background prefetcher must have faulted tiles ahead of demand"
    );
    assert_eq!(rr_stats.scheduler.policy, "round-robin");
    assert_eq!(ra_stats.scheduler.policy, "residency-aware");

    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = append_entry(
        std::path::Path::new(TRAJECTORY_PATH),
        TrajectoryEntry {
            label: "locality".to_string(),
            unix_seconds,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: None,
            locality: Some(LocalityMetrics {
                policy: ra_stats.scheduler.policy.clone(),
                affinity_hits: ra_stats.scheduler.affinity_hits,
                prefetch_issued: ra_stats.scheduler.prefetch_issued,
                residency_aware_pager_misses: ra_storage.pager_misses,
                round_robin_pager_misses: rr_storage.pager_misses,
            }),
            chaos: None,
        },
    )
    .expect("append locality metrics to BENCH_trajectory.json");
    println!(
        "  appended locality metrics to {TRAJECTORY_PATH} ({} entries)",
        entries.len()
    );
}

/// `chaos`: the fault-injection smoke. Runs a disk-backed multi-client
/// wire workload under a seeded [`sccg::FaultPlan`] that kills an engine
/// worker mid-query, corrupts one tile on disk, charges virtual latency on
/// another, and resets one client's connection mid-stream — and asserts the
/// failure-containment contract end to end: every completed response is
/// bit-identical to a fault-free twin (engine attribution aside — a
/// re-dispatched shard legitimately moves engines), every failure is typed
/// (never a hang past its deadline), at least one shard was re-dispatched to
/// a survivor, and the corrupted tile trips the pager's circuit breaker.
/// The counters are appended to `BENCH_trajectory.json` as a `chaos` entry
/// (empty substrates, so the perf gate skips it).
fn chaos() {
    use sccg::{FaultInjector, FaultPlan, SccgError};
    use sccg_bench::trajectory::{append_entry, ChaosMetrics, TrajectoryEntry, TRAJECTORY_PATH};
    use sccg_geometry::text::write_polygon_file;
    use sccg_net::{ClientConfig, NetConfig, WireClient, WireError, WireRequestSpec, WireResponse};
    use std::time::Duration;

    println!("\n[Chaos] Fault-injection smoke: wire workload under a seeded fault plan");
    const TILES: u32 = 8;
    const RESIDENCY_BOUND: usize = 3;
    const CORRUPT_TILE: u64 = 7;
    const SLOW_TILE: u64 = 2;
    const CLIENTS: usize = 3;
    const QUERIES_PER_CLIENT: usize = 4;
    const HEALTHY_TILE_COUNT: usize = (TILES - 1) as usize;
    let dataset = sccg_datagen::generate_dataset(&sccg_datagen::DatasetSpec {
        name: "chaos-smoke".into(),
        tiles: TILES,
        polygons_per_tile: 48,
        tile_size: 512,
        seed: 1212,
        nucleus_radius: 6,
    });
    let first_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.first))
        .collect();
    let second_texts: Vec<String> = dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(&t.second))
        .collect();
    // The main workload stays off the corrupted tile; dedicated probes hit it.
    let healthy_tiles: Vec<u64> = (0..u64::from(TILES))
        .filter(|&t| t != CORRUPT_TILE)
        .collect();

    // The fault-free twin: an in-memory service computing the expected
    // response for the healthy-tile subset, bit-for-bit.
    let engines = || {
        vec![
            EngineConfig::default().with_device(AggregationDevice::Cpu),
            EngineConfig::default().with_device(AggregationDevice::Cpu),
        ]
    };
    let twin_store = SlideStore::new();
    let twin_first = twin_store
        .register_slide_text("chaos-a", &first_texts)
        .expect("register twin slide");
    let twin_second = twin_store
        .register_slide_text("chaos-b", &second_texts)
        .expect("register twin slide");
    let twin = ComparisonService::new(twin_store, ServiceConfig::default().with_engines(engines()))
        .expect("twin service starts");
    let expected = twin
        .submit(
            QueryRequest::new(twin_first, twin_second)
                .tiles(healthy_tiles.iter().map(|&t| t as usize).collect()),
        )
        .unwrap()
        .wait()
        .expect("fault-free twin query");
    let expected = WireResponse::of_response(&expected);

    // The seeded plan, shared by storage, serving and wire layers: worker 0
    // dies on its first popped shard, tile 7 corrupts on every disk read,
    // tile 2 charges virtual latency, and the server connection of wire
    // client 3 (one of the workload clients below) drops after two frames —
    // mid-stream of its first streaming query.
    let plan = FaultPlan::new(42)
        .kill_engine(0, 1)
        .corrupt_tile(CORRUPT_TILE)
        .slow_read(SLOW_TILE, 1_500_000)
        .reset_connection(3, 2);
    let injector = Arc::new(FaultInjector::new(plan));
    println!(
        "  plan: {}",
        injector.plan().to_text().trim_end().replace('\n', "; ")
    );

    let dir = std::env::temp_dir().join(format!("sccg-chaos-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        SlideStore::with_spill_and_faults(&dir, RESIDENCY_BOUND, Some(Arc::clone(&injector)))
            .expect("create spill dir");
    let first = store
        .register_slide_streaming("chaos-a", first_texts)
        .expect("stream slide to disk");
    let second = store
        .register_slide_streaming("chaos-b", second_texts)
        .expect("stream slide to disk");
    let service = Arc::new(
        ComparisonService::new(
            store,
            ServiceConfig::default()
                .with_engines(engines())
                .with_failure_threshold(1)
                .with_revival_cooldown(Duration::from_secs(3600))
                .with_cache_capacity(0)
                .with_faults(Arc::clone(&injector)),
        )
        .expect("chaos service starts"),
    );
    let server = sccg_net::WireServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_faults(Arc::clone(&injector)),
    )
    .expect("wire server starts");
    let addr = server.local_addr();

    // Only the engine/backend attribution may differ from the twin: a
    // re-dispatched shard legitimately completes on a different engine.
    let assert_identical = |label: &str, got: &WireResponse| {
        assert_eq!(got.summary, expected.summary, "{label}: summary diverged");
        assert_eq!(got.tiles.len(), expected.tiles.len(), "{label}: tile count");
        for (g, w) in got.tiles.iter().zip(&expected.tiles) {
            assert_eq!(g.tile, w.tile, "{label}: tile order");
            assert_eq!(
                g.candidate_pairs, w.candidate_pairs,
                "{label}: tile {}",
                g.tile
            );
            assert_eq!(g.summary, w.summary, "{label}: tile {} summary", g.tile);
        }
    };
    let healthy_spec = || {
        let mut spec = WireRequestSpec::new(first, second);
        spec.tiles = Some(healthy_tiles.clone());
        spec
    };

    // Probe 1 — deadlines: an already-expired deadline fails typed through
    // the wire (server answers wire code 12), and never hangs.
    let mut probe = WireClient::connect(addr, ClientConfig::default()).expect("probe connects");
    let mut spec = healthy_spec();
    spec.deadline_ms = Some(0);
    let started = Instant::now();
    let err = probe
        .query_blocking(&spec)
        .expect_err("deadline already expired");
    let waited = started.elapsed();
    assert!(
        matches!(err, WireError::DeadlineExceeded { deadline_ms: 0, .. }),
        "expected the typed deadline failure, got {err:?}"
    );
    assert!(
        waited < Duration::from_secs(5),
        "deadline wait took {waited:?}"
    );
    println!(
        "  deadline 0 ms: typed DeadlineExceeded in {:.0} ms, no hang",
        waited.as_secs_f64() * 1e3
    );

    // Probe 2 — corruption: every read of the corrupted tile fails with the
    // typed storage error over the wire, and the third consecutive failure
    // trips the pager's circuit breaker (the tile is quarantined).
    for round in 0..4 {
        let mut spec = WireRequestSpec::new(first, second);
        spec.tiles = Some(vec![CORRUPT_TILE]);
        let err = probe.query_blocking(&spec).expect_err("corrupted tile");
        assert!(
            matches!(&err, WireError::Remote(SccgError::Storage { .. })),
            "round {round}: expected a typed storage error, got {err:?}"
        );
    }
    let quarantined = service.store().storage_stats().quarantined_tiles;
    assert!(quarantined >= 1, "the corrupted tile must be quarantined");
    println!(
        "  corrupted tile {CORRUPT_TILE}: 4 typed storage failures over the wire, {} tile(s) \
         quarantined by the circuit breaker",
        quarantined
    );
    drop(probe);

    // The workload: concurrent streaming clients over the healthy tiles.
    // One of them is scheduled to lose its connection mid-stream; the typed
    // ResetMidStream error is the signal to retry on a fresh connection.
    let started = Instant::now();
    let (completed, retried): (u64, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let assert_identical = &assert_identical;
                let healthy_spec = &healthy_spec;
                scope.spawn(move || {
                    let mut client =
                        WireClient::connect(addr, ClientConfig::default()).expect("connects");
                    let mut completed = 0u64;
                    let mut retried = 0u64;
                    for _ in 0..QUERIES_PER_CLIENT {
                        match client.query_streaming(&healthy_spec(), |_, _| {}) {
                            Ok(outcome) => {
                                assert_identical("workload", &outcome.response);
                                completed += 1;
                            }
                            Err(WireError::ResetMidStream { tiles_received, .. }) => {
                                assert!(tiles_received < HEALTHY_TILE_COUNT);
                                // Retry on a fresh connection: the query is
                                // idempotent, the result must not change.
                                client = WireClient::connect(addr, ClientConfig::default())
                                    .expect("reconnects after reset");
                                let outcome = client
                                    .query_streaming(&healthy_spec(), |_, _| {})
                                    .expect("retry after reset succeeds");
                                assert_identical("retry-after-reset", &outcome.response);
                                completed += 1;
                                retried += 1;
                            }
                            Err(other) => panic!("workload query failed: {other}"),
                        }
                    }
                    (completed, retried)
                })
            })
            .collect();
        handles.into_iter().fold((0, 0), |(c, r), handle| {
            let (hc, hr) = handle.join().expect("workload client thread");
            (c + hc, r + hr)
        })
    });
    let elapsed = started.elapsed().as_secs_f64();
    let total_queries = (CLIENTS * QUERIES_PER_CLIENT) as u64;
    assert_eq!(
        completed, total_queries,
        "every workload query must resolve"
    );
    let qps = completed as f64 / elapsed;

    // The injected engine kill fires on worker 0's first popped shard —
    // virtually always during the workload above. Top up with in-process
    // rounds until it has, so the re-dispatch assertions are deterministic.
    let mut rounds = 0;
    while service.stats().redispatches == 0 {
        rounds += 1;
        assert!(rounds <= 50, "worker 0 never popped a shard");
        let response = service
            .submit(
                QueryRequest::new(first, second)
                    .tiles(healthy_tiles.iter().map(|&t| t as usize).collect()),
            )
            .unwrap()
            .wait()
            .expect("top-up round must survive the kill");
        assert_identical("top-up", &WireResponse::of_response(&response));
    }

    let stats = service.stats();
    let fault_stats = injector.stats();
    assert_eq!(fault_stats.engine_kills, 1, "the scheduled kill fired once");
    assert!(
        stats.redispatches >= 1,
        "the killed shard was re-dispatched"
    );
    assert!(!stats.engines[0].alive, "threshold 1: one kill is death");
    assert!(stats.engines[1].alive, "the survivor carried the workload");
    assert_eq!(
        fault_stats.connection_resets, 1,
        "the scheduled reset fired once"
    );
    assert_eq!(retried, 1, "exactly one client retried after the reset");
    assert!(
        injector.virtual_delay_nanos() > 0,
        "slow reads charge virtual latency (no real sleeps)"
    );
    println!(
        "  {CLIENTS} clients x {QUERIES_PER_CLIENT} streaming queries: all {completed} responses \
         bit-identical to the fault-free twin ({retried} retried after an injected reset)"
    );
    println!(
        "  engine 0 killed mid-shard and marked dead, {} shard(s) re-dispatched to the \
         survivor; {} ns of virtual slow-read latency charged",
        stats.redispatches,
        injector.virtual_delay_nanos()
    );
    println!("  stats: {}", json::stats_to_json(&stats));

    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = append_entry(
        std::path::Path::new(TRAJECTORY_PATH),
        TrajectoryEntry {
            label: "chaos".to_string(),
            unix_seconds,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: None,
            locality: None,
            chaos: Some(ChaosMetrics {
                queries: total_queries + retried + 5, // probes: 1 deadline + 4 corrupt
                completed,
                redispatches: stats.redispatches,
                engine_kills: fault_stats.engine_kills,
                connection_resets: fault_stats.connection_resets,
                quarantined_tiles: quarantined as u64,
                qps,
            }),
        },
    )
    .expect("append chaos metrics to BENCH_trajectory.json");
    println!(
        "  appended chaos metrics to {TRAJECTORY_PATH} ({} entries)",
        entries.len()
    );

    drop(server);
    drop(service);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Streaming-executor smoke: a large synthetic slide flows through
/// [`Pipeline::run_streaming`] with a deliberately tiny buffer, tiles
/// generated lazily so the full task list never exists in memory, and the
/// observed in-flight high-water mark is checked against the O(capacity)
/// analytic bound.
fn stream() {
    println!("\n[Stream] Bounded-memory streaming executor (async pipeline)");
    let tiles = 512u32;
    let config = PipelineConfig::default()
        .with_buffer_capacity(4)
        .with_parser_workers(2)
        .with_migration(true);
    let bound = PipelineReport::in_flight_bound(&config);
    let pipeline = Pipeline::new(config);

    let started = Instant::now();
    // The iterator is the "slide reader": each tile pair is synthesized on
    // demand, pulled only when the pipeline's bounded input buffer has room.
    let report = pipeline.run_streaming((0..tiles).map(|tile_id| {
        let tile = generate_tile_pair(&sccg_datagen::TileSpec {
            target_polygons: 48,
            width: 512,
            height: 512,
            seed: 9000 + u64::from(tile_id),
            ..Default::default()
        });
        ParseTask::from_tile_pair(&tile)
    }));
    let seconds = started.elapsed().as_secs_f64();

    println!(
        "  {tiles} tiles streamed in {seconds:.3} s  J' {:.6}  {} candidate pairs",
        report.similarity(),
        report.candidate_pairs
    );
    println!(
        "  peak in-flight tiles {} (bound {bound}, dataset {tiles}) — memory is O(buffer), \
         not O(dataset)",
        report.peak_in_flight_tiles
    );
    println!(
        "  migrated to CPU {}  migrated to GPU parser {}",
        report.migrated_to_cpu, report.migrated_to_gpu
    );
    assert_eq!(report.tiles, tiles as usize, "every tile processed");
    assert!(
        report.peak_in_flight_tiles <= bound,
        "peak {} exceeded the bound {bound}",
        report.peak_in_flight_tiles
    );
}

/// `bench`: the JSON performance baseline. Measures sustained pairs/sec and
/// per-batch wall-clock of every substrate (CPU-S, CPU, simulated GPU,
/// adaptive hybrid) on a fixed seeded dataset, plus the interval-scanline
/// pixelization fast path against the retained per-pixel seed loop, and
/// writes the `BENCH_pixelbox.json` snapshot and appends a timestamped entry
/// to `BENCH_trajectory.json` so the perf trajectory is tracked across PRs
/// (CI runs this as a smoke step, then `trajectory-gate` on the result).
fn bench_baseline() {
    use sccg::parallel::default_workers;
    use sccg::pixelbox::algorithm::{compute_pair, compute_pair_reference};
    use sccg::pixelbox::SplitConfig;
    use sccg_bench::dense_l_pair;

    println!("\n[Bench] JSON perf baseline (BENCH_pixelbox.json)");
    const POLYGONS: u32 = 400;
    const SCALE: i32 = 2;
    const ITERATIONS: usize = 10;
    let pairs = representative_pairs(POLYGONS, SCALE);
    let config = PixelBoxConfig::paper_default();
    let workers = default_workers();
    println!(
        "  workload: {} MBR-intersecting pairs (seeded, scale factor {SCALE}), {ITERATIONS} \
         timed batches per substrate (best batch reported), {workers} CPU workers",
        pairs.len()
    );

    // One warm-up batch (untimed: pool spawn, edge-table build, adaptive
    // warm-up) followed by `ITERATIONS` timed batches per substrate. The
    // reported wall-clock is the *best observed* batch: batches are
    // sub-millisecond, so a single scheduler hiccup poisons a mean, while
    // the minimum converges on the substrate's actual sustained cost.
    let time_substrate = |backend: &dyn ComputeBackend| -> (f64, f64) {
        let warmup = backend.compute_batch(&pairs, &config);
        assert_eq!(warmup.areas.len(), pairs.len());
        let mut simulated = 0.0;
        let mut wall = f64::INFINITY;
        for _ in 0..ITERATIONS {
            let started = Instant::now();
            simulated += backend
                .compute_batch(&pairs, &config)
                .total_simulated_seconds();
            wall = wall.min(started.elapsed().as_secs_f64());
        }
        (wall, simulated / ITERATIONS as f64)
    };

    let device = Arc::new(Device::new(DeviceConfig::gtx580()));
    let substrates: Vec<(&str, usize, Box<dyn ComputeBackend>)> = vec![
        ("cpu-s", 1, Box::new(CpuBackend::new(1))),
        ("cpu", workers, Box::new(CpuBackend::new(workers))),
        ("gpu", 0, Box::new(GpuBackend::new(Arc::clone(&device)))),
        (
            "hybrid-adaptive",
            workers,
            Box::new(HybridBackend::with_split(
                Arc::clone(&device),
                workers,
                SplitConfig::adaptive(0.5),
            )),
        ),
    ];
    let mut rows = String::new();
    let mut rates = Vec::new();
    for (name, cpu_workers, backend) in &substrates {
        let (wall, simulated) = time_substrate(backend.as_ref());
        let pairs_per_sec = pairs.len() as f64 / wall;
        rates.push(sccg_bench::trajectory::SubstrateRate {
            name: (*name).to_string(),
            pairs_per_sec,
        });
        println!(
            "  {name:<16} {wall:10.5} s/batch   {pairs_per_sec:12.0} pairs/s{}",
            if simulated > 0.0 {
                format!("   (simulated GPU {simulated:.5} s/batch)")
            } else {
                String::new()
            }
        );
        if !rows.is_empty() {
            rows.push(',');
        }
        rows.push_str(&format!(
            "\n    {{\"name\": \"{name}\", \"cpu_workers\": {cpu_workers}, \
             \"wall_seconds_per_batch\": {wall}, \"pairs_per_sec\": {pairs_per_sec}, \
             \"simulated_gpu_seconds_per_batch\": {simulated}}}"
        ));
    }

    // Fast-path ablation: dense pixelization (threshold ≫ region) with the
    // interval-scanline kernel vs the retained per-pixel seed loop.
    const DENSE_SIZE: i32 = 384;
    let dense = dense_l_pair(DENSE_SIZE);
    let dense_threshold = 1u32 << 30;
    let time_kernel = |f: &dyn Fn() -> sccg::pixelbox::PairAreas| -> f64 {
        let _ = f(); // warm-up (edge-table build for the scanline kernel)
        let started = Instant::now();
        for _ in 0..ITERATIONS {
            let _ = f();
        }
        started.elapsed().as_secs_f64() / ITERATIONS as f64
    };
    let scanline_seconds =
        time_kernel(&|| compute_pair(&dense, dense_threshold, 64, Variant::Full).0);
    let per_pixel_seconds =
        time_kernel(&|| compute_pair_reference(&dense, dense_threshold, 64, Variant::Full).0);
    let speedup = per_pixel_seconds / scanline_seconds;
    println!(
        "  pixelize_dense ({DENSE_SIZE}x{DENSE_SIZE} L-shapes): scanline {scanline_seconds:.6} s, \
         per-pixel seed {per_pixel_seconds:.6} s — {speedup:.1}x"
    );
    assert_eq!(
        compute_pair(&dense, dense_threshold, 64, Variant::Full),
        compute_pair_reference(&dense, dense_threshold, 64, Variant::Full),
        "fast path must stay bit-identical (areas and trace)"
    );
    assert!(
        speedup >= 100.0,
        "interval-scanline fast path must be at least 100x the per-pixel loop, got {speedup:.1}x"
    );

    let json = format!(
        "{{\n  \"schema\": \"sccg-bench-pixelbox/v1\",\n  \"dataset\": {{\"polygons\": \
         {POLYGONS}, \"scale_factor\": {SCALE}, \"pairs\": {pair_count}, \"seed\": \
         \"0x0A110B0C\"}},\n  \"pixelbox\": {{\"block_size\": {block}, \"threshold\": {t}, \
         \"variant\": \"Full\"}},\n  \"iterations_per_substrate\": {ITERATIONS},\n  \
         \"substrates\": [{rows}\n  ],\n  \"pixelize_dense\": {{\"region\": \
         \"{DENSE_SIZE}x{DENSE_SIZE}\", \"threshold\": {dense_threshold}, \
         \"scanline_seconds\": {scanline_seconds}, \"per_pixel_seconds\": {per_pixel_seconds}, \
         \"speedup\": {speedup}}}\n}}\n",
        pair_count = pairs.len(),
        block = config.block_size,
        t = config.threshold,
    );
    let path = "BENCH_pixelbox.json";
    std::fs::write(path, &json).expect("write BENCH_pixelbox.json");
    println!("  wrote {path}");

    // Append this run to the tracked trajectory; `trajectory-gate` (the CI
    // step after this one) fails the build if the run regressed below 0.8x
    // the best recorded rate for any substrate.
    use sccg_bench::trajectory::{append_entry, TrajectoryEntry, TRAJECTORY_PATH};
    let unix_seconds = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let entries = append_entry(
        std::path::Path::new(TRAJECTORY_PATH),
        TrajectoryEntry {
            label: "bench".to_string(),
            unix_seconds,
            substrates: rates,
            pixelize_dense_speedup: speedup,
            serve: None,
            store: None,
            locality: None,
            chaos: None,
        },
    )
    .expect("append to BENCH_trajectory.json");
    println!(
        "  appended to {TRAJECTORY_PATH} ({} entries)",
        entries.len()
    );
}

/// Figure 11: throughput benefit of dynamic task migration.
fn figure11() {
    println!("\n[Figure 11] Dynamic task migration: normalized throughput (modelled)");
    let dataset = system_dataset();
    let tiles = dataset_tile_stats(&dataset);
    for platform in [
        PlatformConfig::config_i(),
        PlatformConfig::config_ii(),
        PlatformConfig::config_iii(),
    ] {
        let model = PipelineModel::new(platform);
        let without = model.pipelined_throughput(&tiles, false);
        let with = model.pipelined_throughput(&tiles, true);
        println!("  {:<45} {:5.2}x", platform.name, with / without);
    }
}

/// Figure 12: SCCG vs PostGIS-M over the 18 data sets.
fn figure12() {
    println!(
        "\n[Figure 12] SCCG (Config-I, migration on) vs PostGIS-M speedup per data set (modelled)"
    );
    let sccg_model = PipelineModel::new(PlatformConfig::config_i());
    let postgis_model = PipelineModel::new(PlatformConfig::postgis_m_platform());
    let mut log_sum = 0.0f64;
    let datasets = study_datasets();
    for dataset in &datasets {
        let tiles = dataset_tile_stats(dataset);
        let sccg_seconds = sccg_model.simulate(Scheme::Pipelined, &tiles, true);
        let postgis_seconds = postgis_model.sdbms_parallel(&tiles);
        let speedup = postgis_seconds / sccg_seconds;
        log_sum += speedup.ln();
        println!(
            "  {:<20} polygons {:>7}  SCCG {:8.3} s  PostGIS-M {:9.3} s  speedup {:6.1}x",
            dataset.spec.name,
            dataset.first_polygon_count() + dataset.second_polygon_count(),
            sccg_seconds,
            postgis_seconds,
            speedup
        );
    }
    let geo_mean = (log_sum / datasets.len() as f64).exp();
    println!("  geometric mean speedup: {geo_mean:.1}x (paper reports >18x)");
}
