//! The tracked performance trajectory: `BENCH_trajectory.json`.
//!
//! `BENCH_pixelbox.json` is a *snapshot* — it is overwritten by every
//! `reproduce -- bench` run, so a slow erosion of throughput across PRs is
//! invisible in review. The trajectory file fixes that: every bench run
//! [appends](append_entry) a timestamped entry (schema
//! [`TRAJECTORY_SCHEMA`]), and the [gate](check_gate) — run by CI right
//! after the bench step — fails the build when the latest entry falls below
//! [`SUBSTRATE_FLOOR_RATIO`] of the *best ever recorded* pairs/sec for any
//! substrate, or when the `pixelize_dense` scanline-vs-per-pixel speedup
//! drops under [`DENSE_SPEEDUP_GATE`].
//!
//! The JSON handling is hand-rolled (a small recursive-descent reader and a
//! plain formatter): the workspace's vendored `serde` shim provides no
//! derive-based deserialization, and the format is five fields deep.

use std::fmt::Write as _;
use std::path::Path;

/// Schema identifier stamped into the trajectory file.
pub const TRAJECTORY_SCHEMA: &str = "sccg-bench-trajectory/v1";

/// Default location of the trajectory file, relative to the repo root.
pub const TRAJECTORY_PATH: &str = "BENCH_trajectory.json";

/// The regression floor: the latest entry must reach at least this fraction
/// of the best recorded `pairs_per_sec`, per substrate.
pub const SUBSTRATE_FLOOR_RATIO: f64 = 0.8;

/// Minimum `pixelize_dense` speedup (interval-scanline kernel over the
/// per-pixel seed loop) the latest entry must sustain.
pub const DENSE_SPEEDUP_GATE: f64 = 100.0;

/// Sustained throughput of one substrate in one bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct SubstrateRate {
    /// Substrate name (`cpu-s`, `cpu`, `gpu`, `hybrid-adaptive`).
    pub name: String,
    /// Pairs per wall-clock second over the timed batches.
    pub pairs_per_sec: f64,
}

/// Measured serving-layer load-generator metrics (`reproduce -- serve`):
/// N concurrent loopback wire clients against the `ComparisonService`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Concurrent loopback clients driven by the load generator.
    pub clients: u64,
    /// Total queries completed across all clients.
    pub queries: u64,
    /// Sustained queries per second over the run.
    pub qps: f64,
    /// Median end-to-end query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end query latency, milliseconds.
    pub p99_ms: f64,
}

/// Measured out-of-core storage metrics (`reproduce -- store`): whole-slide
/// queries paging a disk-backed dataset larger than the residency bound.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMetrics {
    /// Tiles per wall-clock second with a cold pager (every fetch reads and
    /// decodes its block from disk).
    pub cold_tiles_per_sec: f64,
    /// Tiles per wall-clock second re-reading a working set within the
    /// residency bound (served from the resident set).
    pub warm_tiles_per_sec: f64,
    /// The pager's overall hit rate across the run.
    pub pager_hit_rate: f64,
}

/// Measured locality-scheduling metrics (`reproduce -- locality`): the same
/// disk-backed workload dispatched under both placement policies, so the
/// entry records the pager-miss gap that residency-aware placement opens
/// over the round-robin baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalityMetrics {
    /// The placement policy the headline counters below were measured under.
    pub policy: String,
    /// Shards dispatched to the engine that last faulted their tiles.
    pub affinity_hits: u64,
    /// Tile faults issued ahead of demand by the background prefetcher.
    pub prefetch_issued: u64,
    /// Pager misses across the run under residency-aware placement.
    pub residency_aware_pager_misses: u64,
    /// Pager misses for the identical workload under round-robin placement.
    pub round_robin_pager_misses: u64,
}

/// Measured chaos-smoke metrics (`reproduce -- chaos`): a disk-backed wire
/// workload run under a seeded fault plan, recording how much went wrong on
/// purpose and that every query still resolved correctly or typed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosMetrics {
    /// Queries driven across all wire clients (including the retried ones).
    pub queries: u64,
    /// Queries that resolved bit-identically to the fault-free twin.
    pub completed: u64,
    /// Shards handed back to survivors after injected engine kills.
    pub redispatches: u64,
    /// Engine kills the injector fired.
    pub engine_kills: u64,
    /// Connection resets the injector fired.
    pub connection_resets: u64,
    /// Tiles quarantined by the pager's circuit breaker.
    pub quarantined_tiles: u64,
    /// Sustained queries per second over the chaos run.
    pub qps: f64,
}

/// One timestamped bench run. A `bench` run carries substrate rates and a
/// dense-pixelization speedup; a `serve` run carries only [`ServeMetrics`],
/// a `store` run only [`StoreMetrics`], a `locality` run only
/// [`LocalityMetrics`], and a `chaos` run only [`ChaosMetrics`] (empty
/// `substrates`, speedup 0) — the [gate](check_gate) knows to skip such
/// entries when looking for the run to check.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// Free-form label (`pr5-baseline`, `bench`, `serve`, `store`, …).
    pub label: String,
    /// Unix timestamp (seconds) of the run.
    pub unix_seconds: u64,
    /// Per-substrate sustained throughput.
    pub substrates: Vec<SubstrateRate>,
    /// The `pixelize_dense` scanline-vs-per-pixel speedup of the run.
    pub pixelize_dense_speedup: f64,
    /// Wire serving-layer metrics, when the run measured them.
    pub serve: Option<ServeMetrics>,
    /// Out-of-core storage metrics, when the run measured them.
    pub store: Option<StoreMetrics>,
    /// Locality-scheduling metrics, when the run measured them.
    pub locality: Option<LocalityMetrics>,
    /// Chaos-smoke metrics, when the run measured them.
    pub chaos: Option<ChaosMetrics>,
}

/// Reads the trajectory file. A missing file is an empty trajectory; a
/// present but malformed file (or a wrong schema) is an error, so a gate run
/// can never silently pass on garbage.
pub fn read_trajectory(path: &Path) -> Result<Vec<TrajectoryEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(err) => return Err(format!("read {}: {err}", path.display())),
    };
    let root = Value::parse(&text).map_err(|err| format!("{}: {err}", path.display()))?;
    let schema = root
        .get("schema")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{}: missing \"schema\"", path.display()))?;
    if schema != TRAJECTORY_SCHEMA {
        return Err(format!(
            "{}: schema \"{schema}\" is not \"{TRAJECTORY_SCHEMA}\"",
            path.display()
        ));
    }
    let entries = root
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{}: missing \"entries\" array", path.display()))?;
    entries
        .iter()
        .enumerate()
        .map(|(i, entry)| {
            parse_entry(entry).map_err(|err| format!("{}: entry {i}: {err}", path.display()))
        })
        .collect()
}

fn parse_entry(value: &Value) -> Result<TrajectoryEntry, String> {
    let field = |key: &str| value.get(key).ok_or_else(|| format!("missing \"{key}\""));
    let label = field("label")?
        .as_str()
        .ok_or("\"label\" is not a string")?
        .to_string();
    let unix_seconds = field("unix_seconds")?
        .as_f64()
        .ok_or("\"unix_seconds\" is not a number")? as u64;
    let pixelize_dense_speedup = field("pixelize_dense_speedup")?
        .as_f64()
        .ok_or("\"pixelize_dense_speedup\" is not a number")?;
    let substrates = field("substrates")?
        .as_array()
        .ok_or("\"substrates\" is not an array")?
        .iter()
        .map(|s| {
            Ok(SubstrateRate {
                name: s
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or("substrate missing \"name\"")?
                    .to_string(),
                pairs_per_sec: s
                    .get("pairs_per_sec")
                    .and_then(Value::as_f64)
                    .ok_or("substrate missing \"pairs_per_sec\"")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let serve = match value.get("serve") {
        None | Some(Value::Null) => None,
        Some(serve) => {
            let num = |key: &str| {
                serve
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("\"serve\" missing \"{key}\""))
            };
            Some(ServeMetrics {
                clients: num("clients")? as u64,
                queries: num("queries")? as u64,
                qps: num("qps")?,
                p50_ms: num("p50_ms")?,
                p99_ms: num("p99_ms")?,
            })
        }
    };
    let store = match value.get("store") {
        None | Some(Value::Null) => None,
        Some(store) => {
            let num = |key: &str| {
                store
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("\"store\" missing \"{key}\""))
            };
            Some(StoreMetrics {
                cold_tiles_per_sec: num("cold_tiles_per_sec")?,
                warm_tiles_per_sec: num("warm_tiles_per_sec")?,
                pager_hit_rate: num("pager_hit_rate")?,
            })
        }
    };
    let locality = match value.get("locality") {
        None | Some(Value::Null) => None,
        Some(locality) => {
            let num = |key: &str| {
                locality
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("\"locality\" missing \"{key}\""))
            };
            Some(LocalityMetrics {
                policy: locality
                    .get("policy")
                    .and_then(Value::as_str)
                    .ok_or("\"locality\" missing \"policy\"")?
                    .to_string(),
                affinity_hits: num("affinity_hits")? as u64,
                prefetch_issued: num("prefetch_issued")? as u64,
                residency_aware_pager_misses: num("residency_aware_pager_misses")? as u64,
                round_robin_pager_misses: num("round_robin_pager_misses")? as u64,
            })
        }
    };
    let chaos = match value.get("chaos") {
        None | Some(Value::Null) => None,
        Some(chaos) => {
            let num = |key: &str| {
                chaos
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("\"chaos\" missing \"{key}\""))
            };
            Some(ChaosMetrics {
                queries: num("queries")? as u64,
                completed: num("completed")? as u64,
                redispatches: num("redispatches")? as u64,
                engine_kills: num("engine_kills")? as u64,
                connection_resets: num("connection_resets")? as u64,
                quarantined_tiles: num("quarantined_tiles")? as u64,
                qps: num("qps")?,
            })
        }
    };
    Ok(TrajectoryEntry {
        label,
        unix_seconds,
        substrates,
        pixelize_dense_speedup,
        serve,
        store,
        locality,
        chaos,
    })
}

/// Appends `entry` to the trajectory at `path` (creating the file on first
/// use) and returns the full trajectory after the append.
pub fn append_entry(path: &Path, entry: TrajectoryEntry) -> Result<Vec<TrajectoryEntry>, String> {
    let mut entries = read_trajectory(path)?;
    entries.push(entry);
    std::fs::write(path, format_trajectory(&entries))
        .map_err(|err| format!("write {}: {err}", path.display()))?;
    Ok(entries)
}

/// Serializes a trajectory in the `sccg-bench-trajectory/v1` layout.
pub fn format_trajectory(entries: &[TrajectoryEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\n  \"schema\": \"{TRAJECTORY_SCHEMA}\",\n  \"entries\": ["
    );
    for (i, entry) in entries.iter().enumerate() {
        let mut substrates = String::new();
        for (j, s) in entry.substrates.iter().enumerate() {
            let _ = write!(
                substrates,
                "{}\n        {{\"name\": \"{}\", \"pairs_per_sec\": {}}}",
                if j == 0 { "" } else { "," },
                s.name,
                s.pairs_per_sec
            );
        }
        let serve = match &entry.serve {
            None => String::new(),
            Some(s) => format!(
                ",\n      \"serve\": {{\"clients\": {}, \"queries\": {}, \"qps\": {}, \
                 \"p50_ms\": {}, \"p99_ms\": {}}}",
                s.clients, s.queries, s.qps, s.p50_ms, s.p99_ms
            ),
        };
        let store = match &entry.store {
            None => String::new(),
            Some(s) => format!(
                ",\n      \"store\": {{\"cold_tiles_per_sec\": {}, \"warm_tiles_per_sec\": {}, \
                 \"pager_hit_rate\": {}}}",
                s.cold_tiles_per_sec, s.warm_tiles_per_sec, s.pager_hit_rate
            ),
        };
        let locality = match &entry.locality {
            None => String::new(),
            Some(l) => format!(
                ",\n      \"locality\": {{\"policy\": \"{}\", \"affinity_hits\": {}, \
                 \"prefetch_issued\": {}, \"residency_aware_pager_misses\": {}, \
                 \"round_robin_pager_misses\": {}}}",
                l.policy,
                l.affinity_hits,
                l.prefetch_issued,
                l.residency_aware_pager_misses,
                l.round_robin_pager_misses
            ),
        };
        let chaos = match &entry.chaos {
            None => String::new(),
            Some(c) => format!(
                ",\n      \"chaos\": {{\"queries\": {}, \"completed\": {}, \
                 \"redispatches\": {}, \"engine_kills\": {}, \"connection_resets\": {}, \
                 \"quarantined_tiles\": {}, \"qps\": {}}}",
                c.queries,
                c.completed,
                c.redispatches,
                c.engine_kills,
                c.connection_resets,
                c.quarantined_tiles,
                c.qps
            ),
        };
        let _ = write!(
            out,
            "    {{\n      \"label\": \"{}\",\n      \"unix_seconds\": {},\n      \
             \"pixelize_dense_speedup\": {},\n      \"substrates\": [{substrates}\n      \
             ]{serve}{store}{locality}{chaos}\n    }}{}\n",
            entry.label,
            entry.unix_seconds,
            entry.pixelize_dense_speedup,
            if i + 1 == entries.len() { "" } else { "," }
        );
    }
    out.push_str("  ]\n}\n");
    out
}

/// The regression gate. Checks the *latest bench* entry — the most recent
/// one with non-empty substrate rates, so a trailing serve-only entry is
/// never judged by gates it carries no data for — against the whole recorded
/// history: every substrate it reports must sustain at least
/// [`SUBSTRATE_FLOOR_RATIO`] of the best `pairs_per_sec` ever recorded for
/// that substrate, and its `pixelize_dense` speedup must be at least
/// [`DENSE_SPEEDUP_GATE`]. Returns one human-readable line per passed check,
/// or the first failure.
pub fn check_gate(entries: &[TrajectoryEntry]) -> Result<Vec<String>, String> {
    let latest = entries
        .iter()
        .rev()
        .find(|e| !e.substrates.is_empty())
        .ok_or("trajectory has no entries with substrate rates")?;
    let mut lines = Vec::new();
    for rate in &latest.substrates {
        let best = entries
            .iter()
            .flat_map(|e| &e.substrates)
            .filter(|s| s.name == rate.name)
            .map(|s| s.pairs_per_sec)
            .fold(f64::NEG_INFINITY, f64::max);
        let floor = best * SUBSTRATE_FLOOR_RATIO;
        // A NaN rate must fail, never slip past a comparison.
        if rate.pairs_per_sec.is_nan() || rate.pairs_per_sec < floor {
            return Err(format!(
                "substrate {}: latest {:.0} pairs/s is below {SUBSTRATE_FLOOR_RATIO} x best \
                 recorded {best:.0} (floor {floor:.0})",
                rate.name, rate.pairs_per_sec
            ));
        }
        lines.push(format!(
            "{:<16} {:12.0} pairs/s  (best {best:.0}, floor {floor:.0})",
            rate.name, rate.pairs_per_sec
        ));
    }
    if latest.pixelize_dense_speedup.is_nan() || latest.pixelize_dense_speedup < DENSE_SPEEDUP_GATE
    {
        return Err(format!(
            "pixelize_dense speedup {:.1}x is below the {DENSE_SPEEDUP_GATE}x gate",
            latest.pixelize_dense_speedup
        ));
    }
    lines.push(format!(
        "pixelize_dense   {:11.1}x  (gate {DENSE_SPEEDUP_GATE}x)",
        latest.pixelize_dense_speedup
    ));
    Ok(lines)
}

/// A parsed JSON value — just enough of the grammar for the bench files.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn parse(input: &str) -> Result<Value, String> {
        let mut reader = Reader {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let value = reader.value()?;
        reader.skip_ws();
        if reader.pos != reader.bytes.len() {
            return Err(format!("trailing data at byte {}", reader.pos));
        }
        Ok(value)
    }

    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent JSON reader over raw bytes. Strings support the `\"`,
/// `\\`, `\/`, `\n`, `\t`, `\r` escapes (no `\u`, which the bench files
/// never emit); numbers go through `str::parse::<f64>`.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b" \t\r\n".contains(b))
        {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    let escaped = match self.bytes.get(self.pos + 1) {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'r') => '\r',
                        _ => return Err(format!("unsupported escape at byte {}", self.pos)),
                    };
                    out.push(escaped);
                    self.pos += 2;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || b"+-.eE".contains(b))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, rates: &[(&str, f64)], dense: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: label.into(),
            unix_seconds: 1_785_059_034,
            substrates: rates
                .iter()
                .map(|&(name, pairs_per_sec)| SubstrateRate {
                    name: name.into(),
                    pairs_per_sec,
                })
                .collect(),
            pixelize_dense_speedup: dense,
            serve: None,
            store: None,
            locality: None,
            chaos: None,
        }
    }

    fn serve_entry(qps: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: "serve".into(),
            unix_seconds: 1_785_059_099,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: Some(ServeMetrics {
                clients: 4,
                queries: 32,
                qps,
                p50_ms: 1.25,
                p99_ms: 4.5,
            }),
            store: None,
            locality: None,
            chaos: None,
        }
    }

    fn store_entry(cold: f64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: "store".into(),
            unix_seconds: 1_785_059_123,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: Some(StoreMetrics {
                cold_tiles_per_sec: cold,
                warm_tiles_per_sec: cold * 8.0,
                pager_hit_rate: 0.75,
            }),
            locality: None,
            chaos: None,
        }
    }

    fn locality_entry(ra_misses: u64, rr_misses: u64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: "locality".into(),
            unix_seconds: 1_785_059_150,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: None,
            locality: Some(LocalityMetrics {
                policy: "residency-aware".into(),
                affinity_hits: 17,
                prefetch_issued: 9,
                residency_aware_pager_misses: ra_misses,
                round_robin_pager_misses: rr_misses,
            }),
            chaos: None,
        }
    }

    fn chaos_entry(completed: u64) -> TrajectoryEntry {
        TrajectoryEntry {
            label: "chaos".into(),
            unix_seconds: 1_785_059_180,
            substrates: Vec::new(),
            pixelize_dense_speedup: 0.0,
            serve: None,
            store: None,
            locality: None,
            chaos: Some(ChaosMetrics {
                queries: 24,
                completed,
                redispatches: 2,
                engine_kills: 1,
                connection_resets: 1,
                quarantined_tiles: 1,
                qps: 93.5,
            }),
        }
    }

    #[test]
    fn round_trips_through_the_formatter_and_reader() {
        let entries = vec![
            entry("pr5-baseline", &[("cpu-s", 1.3e6), ("gpu", 1.1e6)], 598.5),
            entry("bench", &[("cpu-s", 2.0e6), ("gpu", 1.5e6)], 700.25),
        ];
        let text = format_trajectory(&entries);
        let root = Value::parse(&text).unwrap();
        assert_eq!(
            root.get("schema").and_then(Value::as_str),
            Some(TRAJECTORY_SCHEMA)
        );
        let parsed: Vec<TrajectoryEntry> = root
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|e| parse_entry(e).unwrap())
            .collect();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn append_and_read_via_the_filesystem() {
        let dir = std::env::temp_dir().join("sccg-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("t-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(read_trajectory(&path).unwrap(), Vec::new());
        append_entry(&path, entry("first", &[("cpu", 1.0e6)], 400.0)).unwrap();
        let all = append_entry(&path, entry("second", &[("cpu", 1.2e6)], 500.0)).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(read_trajectory(&path).unwrap(), all);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn serve_entries_round_trip_and_never_trip_the_bench_gates() {
        let entries = vec![entry("bench", &[("cpu", 1.0e6)], 600.0), serve_entry(812.5)];
        let text = format_trajectory(&entries);
        let root = Value::parse(&text).unwrap();
        let parsed: Vec<TrajectoryEntry> = root
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|e| parse_entry(e).unwrap())
            .collect();
        assert_eq!(parsed, entries, "serve metrics survive the round trip");

        // The gate judges the bench entry, not the trailing serve-only entry
        // (whose empty substrates and 0 speedup would otherwise fail it).
        let lines = check_gate(&entries).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(
            check_gate(&[serve_entry(100.0)]).is_err(),
            "a trajectory with only serve entries has nothing to gate"
        );
    }

    #[test]
    fn store_entries_round_trip_and_never_trip_the_bench_gates() {
        let entries = vec![entry("bench", &[("cpu", 1.0e6)], 600.0), store_entry(96.5)];
        let text = format_trajectory(&entries);
        let root = Value::parse(&text).unwrap();
        let parsed: Vec<TrajectoryEntry> = root
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|e| parse_entry(e).unwrap())
            .collect();
        assert_eq!(parsed, entries, "store metrics survive the round trip");

        // A trailing store-only entry (empty substrates, 0 speedup) must not
        // be the entry the substrate/speedup gates judge.
        let lines = check_gate(&entries).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(
            check_gate(&[store_entry(10.0)]).is_err(),
            "a trajectory with only store entries has nothing to gate"
        );
    }

    #[test]
    fn locality_entries_round_trip_and_never_trip_the_bench_gates() {
        let entries = vec![
            entry("bench", &[("cpu", 1.0e6)], 600.0),
            locality_entry(40, 96),
        ];
        let text = format_trajectory(&entries);
        let root = Value::parse(&text).unwrap();
        let parsed: Vec<TrajectoryEntry> = root
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|e| parse_entry(e).unwrap())
            .collect();
        assert_eq!(parsed, entries, "locality metrics survive the round trip");

        // A trailing locality-only entry (empty substrates, 0 speedup) must
        // not be the entry the substrate/speedup gates judge: the gate skips
        // it and still checks the bench entry before it.
        let lines = check_gate(&entries).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(
            check_gate(&[locality_entry(40, 96)]).is_err(),
            "a trajectory with only locality entries has nothing to gate"
        );
    }

    #[test]
    fn chaos_entries_round_trip_and_never_trip_the_bench_gates() {
        let entries = vec![entry("bench", &[("cpu", 1.0e6)], 600.0), chaos_entry(24)];
        let text = format_trajectory(&entries);
        let root = Value::parse(&text).unwrap();
        let parsed: Vec<TrajectoryEntry> = root
            .get("entries")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|e| parse_entry(e).unwrap())
            .collect();
        assert_eq!(parsed, entries, "chaos metrics survive the round trip");

        // The regression this pins down: a trailing chaos-only entry (empty
        // substrates, 0 speedup) is skipped by the gate, which still judges
        // the bench entry before it — a chaos run in CI can never fail the
        // throughput gates it carries no data for.
        let lines = check_gate(&entries).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(
            check_gate(&[chaos_entry(24)]).is_err(),
            "a trajectory with only chaos entries has nothing to gate"
        );
    }

    #[test]
    fn gate_passes_at_or_above_the_floor() {
        let entries = vec![
            entry("best", &[("cpu", 1.0e6)], 600.0),
            entry("latest", &[("cpu", 0.85e6)], 150.0),
        ];
        let lines = check_gate(&entries).unwrap();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn gate_fails_below_the_substrate_floor() {
        let entries = vec![
            entry("best", &[("cpu", 1.0e6)], 600.0),
            entry("latest", &[("cpu", 0.5e6)], 600.0),
        ];
        let err = check_gate(&entries).unwrap_err();
        assert!(err.contains("cpu"), "{err}");
        assert!(err.contains("below"), "{err}");
    }

    #[test]
    fn gate_fails_below_the_dense_speedup_gate() {
        let entries = vec![entry("latest", &[("cpu", 1.0e6)], 42.0)];
        let err = check_gate(&entries).unwrap_err();
        assert!(err.contains("pixelize_dense"), "{err}");
    }

    #[test]
    fn gate_rejects_an_empty_trajectory_and_nan_rates() {
        assert!(check_gate(&[]).is_err());
        let entries = vec![
            entry("best", &[("cpu", 1.0e6)], 600.0),
            entry("latest", &[("cpu", f64::NAN)], 600.0),
        ];
        assert!(check_gate(&entries).is_err(), "NaN must not pass the gate");
    }

    #[test]
    fn malformed_files_and_wrong_schemas_are_errors() {
        assert!(Value::parse("{\"a\": }").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{} trailing").is_err());
        let dir = std::env::temp_dir().join("sccg-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bad-{}.json", std::process::id()));
        std::fs::write(&path, "{\"schema\": \"other/v9\", \"entries\": []}").unwrap();
        assert!(read_trajectory(&path).unwrap_err().contains("schema"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reads_the_snapshot_style_numbers_exactly() {
        let text = "{\"schema\": \"sccg-bench-trajectory/v1\", \"entries\": [{\"label\": \"x\", \
                    \"unix_seconds\": 1785059034, \"pixelize_dense_speedup\": 598.5469710272168, \
                    \"substrates\": [{\"name\": \"cpu-s\", \"pairs_per_sec\": \
                    1338154.717169617}]}]}";
        let dir = std::env::temp_dir().join("sccg-trajectory-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("snap-{}.json", std::process::id()));
        std::fs::write(&path, text).unwrap();
        let entries = read_trajectory(&path).unwrap();
        assert_eq!(entries[0].substrates[0].pairs_per_sec, 1338154.717169617);
        assert_eq!(entries[0].pixelize_dense_speedup, 598.5469710272168);
        assert_eq!(entries[0].unix_seconds, 1785059034);
        std::fs::remove_file(&path).unwrap();
    }
}
