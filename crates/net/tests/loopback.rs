//! Loopback integration tests of the wire front-end: bit-identity of
//! streamed responses, the blocking degenerate case, retry idempotency,
//! remote error reconstruction, graceful drain, and the load generator.

use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_net::frame::FrameDecoder;
use sccg_net::wire::{Message, WireRequestSpec, WireResponse};
use sccg_net::{ClientConfig, LoadGenConfig, NetConfig, WireClient, WireError, WireServer};
use sccg_serve::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// A small deterministic workload registered into a fresh service.
fn service(tiles: u32, seed: u64) -> (Arc<ComparisonService>, SlideId, SlideId) {
    let dataset = generate_dataset(&DatasetSpec {
        name: "net-test".into(),
        tiles,
        polygons_per_tile: 60,
        tile_size: 512,
        seed,
        nucleus_radius: 6,
    });
    let store = SlideStore::new();
    let first = store.register_slide(
        "result-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "result-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );
    let service = ComparisonService::new(store, ServiceConfig::default()).expect("service starts");
    (Arc::new(service), first, second)
}

/// Normalizes the one legitimately run-dependent field so the rest of the
/// response can be compared bit-for-bit.
fn without_cache_flag(mut response: WireResponse) -> WireResponse {
    response.cache_hit = false;
    response
}

#[test]
fn streamed_query_is_bit_identical_to_the_in_process_response() {
    let (service, first, second) = service(5, 41);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");

    // The wire query runs *cold*: the pool computes it via the wire path.
    let mut client =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("connects");
    let mut streamed_positions = Vec::new();
    let outcome = client
        .query_streaming(&WireRequestSpec::new(first, second), |position, _| {
            streamed_positions.push(position)
        })
        .expect("streamed query resolves");

    // One tile frame per shard arrived before the summary.
    assert_eq!(
        outcome.tile_frames, 5,
        "every tile streamed before the summary"
    );
    let mut sorted = streamed_positions.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, vec![0, 1, 2, 3, 4], "each position exactly once");

    // The same request in-process now hits the response cache, which stores
    // the *exact* response the wire query was built from — so equality here
    // is bit-identity of every area, count and similarity, including the
    // engine attribution per tile.
    let in_process = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert!(
        in_process.cache_hit,
        "wire query populated the shared cache"
    );
    assert_eq!(
        without_cache_flag(outcome.response.clone()),
        without_cache_flag(WireResponse::of_response(&in_process)),
        "wire response is bit-identical to the in-process response"
    );
    assert!(outcome.response.similarity() > 0.0);
}

#[test]
fn blocking_mode_is_the_one_frame_degenerate_case() {
    let (service, first, second) = service(3, 42);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");
    let mut client =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("connects");

    let blocking = client
        .query_blocking(&WireRequestSpec::new(first, second))
        .expect("blocking query resolves");
    assert_eq!(blocking.tile_frames, 0, "no tile frames in blocking mode");
    assert_eq!(blocking.response.tiles.len(), 3, "tile list travels inline");

    let streamed = client
        .query_streaming(&WireRequestSpec::new(first, second), |_, _| {})
        .expect("streamed repeat resolves");
    assert_eq!(
        without_cache_flag(streamed.response),
        without_cache_flag(blocking.response),
        "both modes resolve the identical response"
    );

    // The stats probe rides the same connection, bit-identical to the
    // in-process snapshot (nothing runs between the capture points: this
    // client's queries are done and the service is otherwise idle).
    let remote = client.stats().expect("stats probe resolves");
    let local = sccg_net::wire::WireStats::of_stats(&service.stats());
    assert_eq!(remote, local, "wire stats match the in-process snapshot");
    assert_eq!(remote.submitted, 2);
    assert_eq!(remote.cache_hits, 1, "the streamed repeat hit the cache");
    assert_eq!(
        remote.policy, "residency-aware",
        "the default placement policy travels by name"
    );
}

/// Raw-socket probe: a duplicated request (the client retry case) is
/// re-acked and answered from the routing cache without recomputing.
#[test]
fn duplicate_requests_replay_without_recomputation() {
    let (service, first, second) = service(2, 43);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut decoder = FrameDecoder::new();
    let send = |stream: &mut TcpStream, message: &Message| {
        let frame = message.to_frame();
        let mut bytes = Vec::new();
        sccg_net::frame::encode_frame(frame.kind, &frame.body, &mut bytes);
        stream.write_all(&bytes).expect("send");
    };
    let mut recv = |stream: &mut TcpStream| -> Message {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = decoder.next_frame().expect("valid frame") {
                return Message::of_frame(&frame).expect("valid message");
            }
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "server closed early");
            decoder.feed(&buf[..n]);
        }
    };

    send(&mut stream, &Message::Hello { client_id: 0 });
    let client_id = match recv(&mut stream) {
        Message::HelloAck { client_id } => client_id,
        other => panic!("expected HelloAck, got {other:?}"),
    };
    assert!(client_id > 0);

    let query = Message::Query {
        request_id: 7,
        streaming: false,
        spec: WireRequestSpec::new(first, second),
    };
    send(&mut stream, &query);
    assert!(matches!(recv(&mut stream), Message::Ack { request_id: 7 }));
    let original = match recv(&mut stream) {
        Message::Summary { response, .. } => response,
        other => panic!("expected Summary, got {other:?}"),
    };
    let submitted_once = service.stats().submitted;

    // The retry: same request id. Must be re-acked and replayed, not rerun.
    send(&mut stream, &query);
    assert!(matches!(recv(&mut stream), Message::Ack { request_id: 7 }));
    let replayed = match recv(&mut stream) {
        Message::Summary {
            tiles_included,
            response,
            ..
        } => {
            assert!(tiles_included, "replays are self-contained");
            response
        }
        other => panic!("expected replayed Summary, got {other:?}"),
    };
    assert_eq!(
        replayed, original,
        "replay is byte-for-byte the stored response"
    );
    assert_eq!(
        service.stats().submitted,
        submitted_once,
        "the duplicate never reached the service"
    );
}

#[test]
fn remote_errors_reconstruct_their_variant_across_the_wire() {
    let (service, first, _second) = service(2, 44);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");
    let mut client =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("connects");

    let mut unknown = WireRequestSpec::new(first, first);
    unknown.second = 9_999;
    match client.query_blocking(&unknown) {
        Err(WireError::Remote(error)) => {
            assert_eq!(error, sccg::SccgError::UnknownSlide { slide: 9_999 });
        }
        other => panic!("expected a remote UnknownSlide error, got {other:?}"),
    }

    // The connection survives the failed query.
    let ok = client
        .query_blocking(&WireRequestSpec::new(first, first))
        .expect("same-slide comparison still works");
    assert_eq!(ok.response.tiles.len(), 2);
}

#[test]
fn graceful_drain_finishes_in_flight_work_and_stops_accepting() {
    let (service, first, second) = service(3, 45);
    let mut server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");
    let addr = server.local_addr();

    // A connected client with one finished query, connection held open.
    let mut client = WireClient::connect(addr, ClientConfig::default()).expect("connects");
    let outcome = client
        .query_streaming(&WireRequestSpec::new(first, second), |_, _| {})
        .expect("query before drain resolves");
    assert_eq!(outcome.response.tiles.len(), 3);

    // Drain must complete even though the client never disconnected, and
    // the flushed response above must have arrived intact (it did — we
    // already decoded it).
    server.shutdown();

    // Queries after the drain fail cleanly rather than hanging.
    let config = ClientConfig::default()
        .with_ack_timeout(Duration::from_millis(50))
        .with_max_retries(1);
    let err = client
        .query_streaming(&WireRequestSpec::new(first, second), |_, _| {})
        .expect_err("drained server answers nothing");
    assert!(
        matches!(err, WireError::Disconnected | WireError::Timeout { .. }),
        "got {err:?}"
    );
    // And new connections are refused or immediately closed.
    match WireClient::connect(addr, config) {
        Err(_) => {}
        Ok(_) => panic!("drained server accepted a new connection"),
    }
}

#[test]
fn loadgen_drives_concurrent_clients_and_reports_latency() {
    let (service, first, second) = service(4, 46);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");

    let baseline = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    let baseline = WireResponse::of_response(&baseline);

    let config = LoadGenConfig::new(vec![WireRequestSpec::new(first, second)])
        .with_clients(4)
        .with_queries_per_client(3);
    let report = sccg_net::run_loadgen(server.local_addr(), &config).expect("load run completes");

    assert_eq!(report.queries, 12);
    assert!(report.qps > 0.0);
    assert!(report.p50_ms > 0.0 && report.p99_ms >= report.p50_ms);
    assert!(report.max_ms >= report.p99_ms);
    assert!(report.tile_frames >= 4, "streaming tiles flowed");
    for outcome in &report.outcomes {
        assert_eq!(
            without_cache_flag(outcome.outcome.response.clone()),
            without_cache_flag(baseline.clone()),
            "every concurrent response is bit-identical to the baseline"
        );
    }
}

#[test]
fn injected_connection_reset_surfaces_typed_and_a_fresh_client_retries() {
    use sccg::{FaultInjector, FaultPlan};

    let (service, first, second) = service(4, 47);
    let baseline = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    let baseline = WireResponse::of_response(&baseline);

    // The server assigns client ids from 1; the first connection is client
    // 1. Its connection drops after 2 post-handshake frames: the ack plus
    // one tile — squarely mid-stream.
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(3).reset_connection(1, 2)));
    let server = WireServer::start(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig::default().with_faults(Arc::clone(&injector)),
    )
    .expect("server starts");

    let mut victim =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("connects");
    assert_eq!(victim.client_id(), 1);
    let err = victim
        .query_streaming(&WireRequestSpec::new(first, second), |_, _| {})
        .expect_err("the stream is cut after one tile");
    match err {
        WireError::ResetMidStream {
            request_id,
            tiles_received,
        } => {
            assert_eq!(request_id, 1);
            assert!(
                tiles_received <= 1,
                "at most the one pre-reset tile arrived, got {tiles_received}"
            );
        }
        other => panic!("expected ResetMidStream, got {other:?}"),
    }
    assert_eq!(injector.stats().connection_resets, 1);

    // The reset is retryable: a fresh connection (a new client id, so no
    // scheduled fault) replays the query and gets the bit-identical result.
    let mut retry =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("reconnects");
    let outcome = retry
        .query_streaming(&WireRequestSpec::new(first, second), |_, _| {})
        .expect("retry on a fresh connection succeeds");
    assert_eq!(
        without_cache_flag(outcome.response),
        without_cache_flag(baseline),
        "the retried response is bit-identical"
    );
}

#[test]
fn wire_deadline_round_trips_as_the_typed_error() {
    let (service, first, second) = service(3, 48);
    let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default())
        .expect("server starts");
    let mut client =
        WireClient::connect(server.local_addr(), ClientConfig::default()).expect("connects");

    // A zero deadline is already expired when the first worker pops a
    // shard: the server answers with wire error code 12, which the client
    // surfaces as the dedicated variant (not a generic Remote error).
    let mut spec = WireRequestSpec::new(first, second);
    spec.deadline_ms = Some(0);
    let err = client
        .query_blocking(&spec)
        .expect_err("deadline already expired");
    match err {
        WireError::DeadlineExceeded {
            request_id,
            deadline_ms,
        } => {
            assert_eq!(request_id, 1);
            assert_eq!(deadline_ms, 0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }

    // The connection survives; a deadline the query easily meets works.
    let mut relaxed = WireRequestSpec::new(first, second);
    relaxed.deadline_ms = Some(60_000);
    let outcome = client
        .query_blocking(&relaxed)
        .expect("a generous deadline resolves normally");
    assert_eq!(outcome.response.tiles.len(), 3);
}
