//! Wire front-end for the SCCG comparison service: a length-prefixed framed
//! protocol over TCP with **streaming per-tile results**.
//!
//! The paper's system (Wang et al., PVLDB 2012) is a query service over
//! whole-slide pathology images; its natural consumers (viewers, analytics
//! dashboards) want results *progressively* — tiles as they are computed,
//! not one final fold. This crate puts [`sccg_serve::ComparisonService`] on
//! a socket:
//!
//! * [`frame`] — the framing layer: `u32` length prefix + kind byte + body,
//!   with an incremental [`frame::FrameDecoder`] and a hard size cap.
//! * [`wire`] — typed messages and their explicit byte codec. Floats travel
//!   as IEEE-754 bit patterns, so decoded responses are **bit-identical** to
//!   the in-process results.
//! * [`conn`] — per-connection non-blocking reader/writer pairs with
//!   bounded send/receive high-water marks; the writer drains an executor
//!   channel ([`sccg::pipeline::exec`]) so socket backpressure composes
//!   with the pipeline's O(buffer) discipline.
//! * [`server`] — [`WireServer`]: accepts connections, routes queries with
//!   a per-client LRU dedup cache (idempotent retries), streams tile frames
//!   as shards complete, and drains gracefully on shutdown.
//! * [`client`] — [`WireClient`]: acks, timed retries with capped
//!   exponential backoff, blocking and streaming query modes.
//! * [`loadgen`] — [`run_loadgen`]: N concurrent loopback clients reporting
//!   p50/p99 latency and queries/sec (the `reproduce -- serve` driver).
//!
//! Everything is `std`-only: no async runtime, no network deps — the PR 4
//! hand-rolled executor supplies the bounded-channel machinery.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use sccg_net::{NetConfig, WireServer, WireClient, ClientConfig, wire::WireRequestSpec};
//! use sccg_serve::prelude::*;
//!
//! // Register a 2-tile slide pair and start the service + wire server.
//! let spec = |seed| sccg_datagen::TileSpec {
//!     target_polygons: 30, width: 256, height: 256, seed, ..Default::default()
//! };
//! let tiles: Vec<_> = (0..2).map(|i| sccg_datagen::generate_tile_pair(&spec(i))).collect();
//! let store = SlideStore::new();
//! let a = store.register_slide("a", tiles.iter().map(|t| t.first.clone()).collect());
//! let b = store.register_slide("b", tiles.iter().map(|t| t.second.clone()).collect());
//! let service = Arc::new(ComparisonService::new(store, ServiceConfig::default()).unwrap());
//! let server = WireServer::start(Arc::clone(&service), "127.0.0.1:0", NetConfig::default()).unwrap();
//!
//! // Stream a whole-slide comparison over loopback.
//! let mut client = WireClient::connect(server.local_addr(), ClientConfig::default()).unwrap();
//! let mut streamed = 0;
//! let outcome = client
//!     .query_streaming(&WireRequestSpec::new(a, b), |_, _| streamed += 1)
//!     .unwrap();
//! assert_eq!(streamed, 2, "one tile frame per tile, before the summary");
//! assert_eq!(outcome.response.tiles.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod conn;
pub mod frame;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{backoff_delay, ClientConfig, QueryOutcome, WireClient, WireError};
pub use loadgen::{run_loadgen, LoadGenConfig, LoadGenOutcome, LoadGenReport};
pub use server::{NetConfig, WireServer};
pub use wire::{WireRequestSpec, WireResponse, WireStats, WireSummary, WireTile};
