//! The framing layer: length-prefixed frames over a byte stream.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! +----------------+----------+------------------+
//! | length (u32 BE)| kind (u8)| body (length - 1) |
//! +----------------+----------+------------------+
//! ```
//!
//! `length` counts the kind byte plus the body, so a decoder can skip a
//! frame it does not understand without parsing it. Frames larger than
//! [`MAX_FRAME_LEN`] are rejected before any allocation — a single corrupt
//! length prefix must not make a peer allocate gigabytes.

use std::fmt;

/// Upper bound on `length` (kind byte + body) a peer will accept: 64 MiB,
/// far above any legitimate response yet small enough that a corrupt prefix
/// cannot exhaust memory.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Bytes of framing overhead preceding each body: the length prefix and the
/// kind byte.
pub const FRAME_HEADER_LEN: usize = 5;

/// The message kind carried by a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → server: opens a connection, proposes/requests a client id.
    Hello = 1,
    /// Server → client: confirms the connection's client id.
    HelloAck = 2,
    /// Client → server: a comparison query.
    Query = 3,
    /// Server → client: the query was received and routed (retries stop).
    Ack = 4,
    /// Server → client: one tile's report of a streaming query.
    Tile = 5,
    /// Server → client: the merged response; terminates the query.
    Summary = 6,
    /// Server → client: the query failed; terminates the query.
    Error = 7,
    /// Client → server: asks for the service's telemetry snapshot.
    StatsRequest = 8,
    /// Server → client: the telemetry snapshot.
    Stats = 9,
}

impl FrameKind {
    /// Decodes a kind byte.
    pub fn from_u8(value: u8) -> Result<Self, FrameError> {
        Ok(match value {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Query,
            4 => FrameKind::Ack,
            5 => FrameKind::Tile,
            6 => FrameKind::Summary,
            7 => FrameKind::Error,
            8 => FrameKind::StatsRequest,
            9 => FrameKind::Stats,
            other => return Err(FrameError::UnknownKind(other)),
        })
    }
}

/// One decoded frame: a kind and its body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The message kind.
    pub kind: FrameKind,
    /// The message body (kind-specific encoding, see [`crate::wire`]).
    pub body: Vec<u8>,
}

/// Framing-layer failure: the stream is unrecoverable past this point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The rejected length.
        len: usize,
    },
    /// A length prefix smaller than the mandatory kind byte.
    Truncated,
    /// An unknown kind byte.
    UnknownKind(u8),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte cap"
                )
            }
            FrameError::Truncated => write!(f, "frame length prefix shorter than the kind byte"),
            FrameError::UnknownKind(kind) => write!(f, "unknown frame kind {kind}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends the encoded frame (`length` prefix, kind, body) to `out`.
pub fn encode_frame(kind: FrameKind, body: &[u8], out: &mut Vec<u8>) {
    let len = body.len() + 1;
    debug_assert!(len <= MAX_FRAME_LEN, "encoder produced an oversized frame");
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.push(kind as u8);
    out.extend_from_slice(body);
}

/// Incremental frame decoder: feed it raw socket bytes in arbitrary chunks,
/// pull complete frames out.
///
/// The buffer is compacted once consumed bytes dominate, so a long-lived
/// connection stays at O(one frame) memory rather than accreting history.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    fn compact(&mut self) {
        if self.consumed > 0 && self.consumed * 2 >= self.buf.len() {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes"; an error poisons the stream (the
    /// connection should be dropped — after a framing error there is no way
    /// to find the next frame boundary).
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buf[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        if len == 0 {
            return Err(FrameError::Truncated);
        }
        if pending.len() < 4 + len {
            return Ok(None);
        }
        let kind = FrameKind::from_u8(pending[4])?;
        let body = pending[5..4 + len].to_vec();
        self.consumed += 4 + len;
        self.compact();
        Ok(Some(Frame { kind, body }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind, body: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        encode_frame(kind, body, &mut out);
        out
    }

    #[test]
    fn roundtrips_a_frame_fed_byte_by_byte() {
        let encoded = frame(FrameKind::Query, b"hello wire");
        let mut decoder = FrameDecoder::new();
        for (i, byte) in encoded.iter().enumerate() {
            assert_eq!(decoder.next_frame(), Ok(None), "no frame before byte {i}");
            decoder.feed(&[*byte]);
        }
        let decoded = decoder.next_frame().unwrap().expect("complete frame");
        assert_eq!(decoded.kind, FrameKind::Query);
        assert_eq!(decoded.body, b"hello wire");
        assert_eq!(decoder.next_frame(), Ok(None));
        assert_eq!(decoder.pending(), 0);
    }

    #[test]
    fn decodes_multiple_frames_from_one_chunk() {
        let mut bytes = frame(FrameKind::Ack, &[1, 2, 3]);
        bytes.extend(frame(FrameKind::Tile, &[]));
        bytes.extend(frame(FrameKind::Summary, &[9; 100]));
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bytes);
        let kinds: Vec<FrameKind> = std::iter::from_fn(|| decoder.next_frame().unwrap())
            .map(|f| f.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![FrameKind::Ack, FrameKind::Tile, FrameKind::Summary]
        );
    }

    #[test]
    fn rejects_oversized_and_zero_length_prefixes() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        assert_eq!(
            decoder.next_frame(),
            Err(FrameError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
        let mut decoder = FrameDecoder::new();
        decoder.feed(&0u32.to_be_bytes());
        assert_eq!(decoder.next_frame(), Err(FrameError::Truncated));
    }

    #[test]
    fn rejects_unknown_kinds() {
        let mut decoder = FrameDecoder::new();
        decoder.feed(&frame(FrameKind::Hello, &[]));
        let mut bad = decoder.buf.clone();
        bad[4] = 200;
        let mut decoder = FrameDecoder::new();
        decoder.feed(&bad);
        assert_eq!(decoder.next_frame(), Err(FrameError::UnknownKind(200)));
    }

    #[test]
    fn buffer_is_compacted_across_many_frames() {
        let mut decoder = FrameDecoder::new();
        let encoded = frame(FrameKind::Tile, &[7; 64]);
        for _ in 0..1000 {
            decoder.feed(&encoded);
            assert!(decoder.next_frame().unwrap().is_some());
            assert!(
                decoder.buf.len() <= 2 * encoded.len() + 8,
                "buffer stays O(frame), got {}",
                decoder.buf.len()
            );
        }
    }
}
