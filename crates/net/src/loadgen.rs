//! Loopback load generator: N concurrent clients hammering a [`crate::WireServer`],
//! reporting throughput and latency percentiles.
//!
//! Each client owns its own connection (the protocol serializes queries per
//! connection, so concurrency = connections) and issues its queries
//! back-to-back, cycling through the configured specs. Latency is measured
//! per query from send to terminal frame; the report carries p50/p99/mean/max
//! and queries-per-second over the whole run, plus every outcome so callers
//! can verify responses bit-for-bit against an in-process baseline.

use crate::client::{ClientConfig, QueryOutcome, WireClient, WireError};
use crate::wire::WireRequestSpec;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Configuration of one load-generator run.
///
/// Marked `#[non_exhaustive]`: construct with [`LoadGenConfig::new`] and the
/// `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Queries each client issues (serially).
    pub queries_per_client: usize,
    /// Whether clients request streaming (per-tile) responses.
    pub streaming: bool,
    /// Queries to issue, cycled per client in round-robin order.
    pub specs: Vec<WireRequestSpec>,
    /// Per-client connection configuration.
    pub client: ClientConfig,
}

impl LoadGenConfig {
    /// A run of 4 streaming clients, 8 queries each, over `specs`.
    pub fn new(specs: Vec<WireRequestSpec>) -> Self {
        LoadGenConfig {
            clients: 4,
            queries_per_client: 8,
            streaming: true,
            specs,
            client: ClientConfig::default(),
        }
    }

    /// Returns a copy with a different client count.
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients;
        self
    }

    /// Returns a copy with a different per-client query count.
    pub fn with_queries_per_client(mut self, queries_per_client: usize) -> Self {
        self.queries_per_client = queries_per_client;
        self
    }

    /// Returns a copy with streaming mode on or off.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }
}

/// One query's measured result.
#[derive(Debug, Clone)]
pub struct LoadGenOutcome {
    /// Index of the client that issued the query.
    pub client: usize,
    /// Index into [`LoadGenConfig::specs`] of the issued query.
    pub spec: usize,
    /// The resolved response (tiles complete in both modes).
    pub outcome: QueryOutcome,
    /// Send-to-terminal-frame latency.
    pub latency: Duration,
}

/// Aggregate report of a load-generator run.
#[derive(Debug, Clone)]
pub struct LoadGenReport {
    /// Total queries completed.
    pub queries: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Queries per second over the run.
    pub qps: f64,
    /// Median query latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile query latency, milliseconds.
    pub p99_ms: f64,
    /// Mean query latency, milliseconds.
    pub mean_ms: f64,
    /// Worst query latency, milliseconds.
    pub max_ms: f64,
    /// Tile frames received across all queries (0 when not streaming).
    pub tile_frames: usize,
    /// Every individual outcome, for response verification.
    pub outcomes: Vec<LoadGenOutcome>,
}

/// Latency at percentile `q` (0.0–1.0) of an **ascending-sorted** sample,
/// by nearest-rank on `(n - 1) * q`.
fn percentile_ms(sorted: &[Duration], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)].as_secs_f64() * 1e3
}

/// Drives `config.clients` concurrent connections against `addr` and
/// reports latency/throughput. Fails on the first client error.
pub fn run_loadgen(addr: SocketAddr, config: &LoadGenConfig) -> Result<LoadGenReport, WireError> {
    if config.specs.is_empty() {
        return Err(WireError::Protocol(
            "load generator needs at least one spec".into(),
        ));
    }
    let started = Instant::now();
    let results: Vec<Result<Vec<LoadGenOutcome>, WireError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client_index| {
                scope.spawn(move || -> Result<Vec<LoadGenOutcome>, WireError> {
                    let mut client = WireClient::connect(addr, config.client.clone())?;
                    let mut outcomes = Vec::with_capacity(config.queries_per_client);
                    for query_index in 0..config.queries_per_client {
                        // Offset the round-robin start per client so the
                        // specs interleave across connections.
                        let spec_index = (client_index + query_index) % config.specs.len();
                        let spec = &config.specs[spec_index];
                        let sent = Instant::now();
                        let outcome = if config.streaming {
                            client.query_streaming(spec, |_, _| {})?
                        } else {
                            client.query_blocking(spec)?
                        };
                        outcomes.push(LoadGenOutcome {
                            client: client_index,
                            spec: spec_index,
                            outcome,
                            latency: sent.elapsed(),
                        });
                    }
                    Ok(outcomes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| Err(WireError::Protocol("client thread panicked".into())))
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut outcomes = Vec::new();
    for result in results {
        outcomes.extend(result?);
    }
    let mut latencies: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
    latencies.sort();
    let queries = outcomes.len();
    let mean_ms = if queries == 0 {
        0.0
    } else {
        latencies.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / queries as f64
    };
    Ok(LoadGenReport {
        queries,
        elapsed,
        qps: queries as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&latencies, 0.50),
        p99_ms: percentile_ms(&latencies, 0.99),
        mean_ms,
        max_ms: latencies.last().map_or(0.0, |d| d.as_secs_f64() * 1e3),
        tile_frames: outcomes.iter().map(|o| o.outcome.tile_frames).sum(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_samples() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&sorted, 0.0), 1.0);
        assert_eq!(percentile_ms(&sorted, 0.50), 51.0); // rank round(99*0.5)=50
        assert_eq!(percentile_ms(&sorted, 0.99), 99.0);
        assert_eq!(percentile_ms(&sorted, 1.0), 100.0);
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        let one = [Duration::from_millis(7)];
        assert_eq!(percentile_ms(&one, 0.5), 7.0);
        assert_eq!(percentile_ms(&one, 0.99), 7.0);
    }
}
