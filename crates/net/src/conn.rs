//! Per-connection I/O: a non-blocking reader/writer pair around one
//! `TcpStream`, each with a bounded high-water mark so socket backpressure
//! composes with the executor's O(buffer) discipline.
//!
//! *Non-blocking* here means the **caller** never blocks on socket I/O:
//! each half owns a thread that does the blocking syscalls, and the caller
//! talks to a bounded queue instead.
//!
//! * Inbound ([`NonBlockingReader`]): the thread reads, decodes frames, and
//!   pushes them into a bounded queue (capacity = receive HWM). When the
//!   consumer lags, the push blocks, the thread stops issuing reads, the
//!   kernel buffer fills, and the peer's TCP window closes — backpressure
//!   all the way to the sender without any unbounded buffer.
//! * Outbound ([`NonBlockingWriter`]): callers enqueue frames into a
//!   bounded channel (capacity = send HWM) — the executor's own
//!   [`sccg::pipeline::exec::channel`], drained by a thread bridged with
//!   [`sccg::pipeline::exec::block_on`]. A slow peer fills the kernel
//!   buffer, the writer thread blocks in `write`, the channel fills, and
//!   `send` blocks the producer: one stalled connection backs up its own
//!   producer, never the engine pool.

use crate::frame::{encode_frame, Frame, FrameDecoder};
use sccg::pipeline::exec::{block_on, channel, Receiver, Sender};
use sccg::sync::lock;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Outcome of a timed pop from a bounded queue.
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item arrived (or was already buffered).
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained: nothing will ever arrive.
    Closed,
}

/// A blocking bounded MPMC queue with timed pops and drain-on-close
/// semantics (items pushed before `close` are still delivered).
///
/// This is the receive-side HWM primitive: `std`'s `Condvar` provides the
/// timed wait the executor channel deliberately omits (executor tasks never
/// block on time; connection dispatchers must, to observe the drain flag).
pub(crate) struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Pushes an item, blocking while the queue is at capacity. Returns the
    /// item back if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = lock(&self.inner);
        while inner.items.len() >= self.capacity && !inner.closed {
            inner = self
                .not_full
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if inner.closed {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pops an item, waiting up to `timeout`. Buffered items are delivered
    /// even after close; `Closed` means closed *and* drained.
    pub fn pop_timeout(&self, timeout: Duration) -> PopTimeout<T> {
        let mut inner = lock(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return PopTimeout::Item(item);
            }
            if inner.closed {
                return PopTimeout::Closed;
            }
            let (guard, result) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if result.timed_out() && inner.items.is_empty() && !inner.closed {
                return PopTimeout::TimedOut;
            }
        }
    }

    /// Closes the queue: pushers fail, poppers drain what is buffered and
    /// then observe `Closed`.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Inbound half of a connection: a thread reading and decoding frames into
/// a bounded queue. See the [module docs](self) for the backpressure chain.
pub struct NonBlockingReader {
    queue: std::sync::Arc<BoundedQueue<Frame>>,
    /// Clone of the socket, kept to shut the read half down on close.
    socket: TcpStream,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for NonBlockingReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonBlockingReader").finish_non_exhaustive()
    }
}

impl NonBlockingReader {
    /// Spawns the reading thread over `stream` with a queue bounded at
    /// `recv_hwm` frames.
    pub fn spawn(stream: TcpStream, recv_hwm: usize) -> std::io::Result<Self> {
        let socket = stream.try_clone()?;
        let queue = std::sync::Arc::new(BoundedQueue::new(recv_hwm));
        let thread_queue = std::sync::Arc::clone(&queue);
        let thread = std::thread::Builder::new()
            .name("sccg-net-reader".into())
            .spawn(move || read_loop(stream, &thread_queue))?;
        Ok(NonBlockingReader {
            queue,
            socket,
            thread: Some(thread),
        })
    }

    /// Waits up to `timeout` for the next decoded frame.
    pub fn recv_timeout(&self, timeout: Duration) -> PopTimeout<Frame> {
        self.queue.pop_timeout(timeout)
    }

    /// Shuts the socket's read half down and joins the thread. Frames
    /// already decoded are discarded.
    pub fn close(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.queue.close();
        // Unblocks a thread parked in `read`; an already-dead socket is fine.
        let _ = self.socket.shutdown(Shutdown::Read);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for NonBlockingReader {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn read_loop(mut stream: TcpStream, queue: &BoundedQueue<Frame>) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break, // EOF, reset, or shutdown by `close`
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if queue.push(frame).is_err() {
                        return; // consumer closed; stop reading entirely
                    }
                }
                Ok(None) => break,
                // Framing errors are unrecoverable: no way to resynchronize
                // on the next boundary, so the connection ends here.
                Err(_) => {
                    queue.close();
                    return;
                }
            }
        }
    }
    queue.close();
}

/// Outbound half of a connection: a bounded executor channel drained by a
/// writer thread. See the [module docs](self) for the backpressure chain.
pub struct NonBlockingWriter {
    tx: Option<Sender<Frame>>,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl std::fmt::Debug for NonBlockingWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NonBlockingWriter").finish_non_exhaustive()
    }
}

/// The writer thread has exited (socket error or peer reset); the frame was
/// not enqueued and the connection is effectively dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriterClosed;

impl std::fmt::Display for WriterClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("connection writer closed")
    }
}

impl std::error::Error for WriterClosed {}

impl NonBlockingWriter {
    /// Spawns the writing thread over `stream` with a send buffer bounded at
    /// `send_hwm` frames.
    pub fn spawn(stream: TcpStream, send_hwm: usize) -> std::io::Result<Self> {
        let (tx, rx) = channel::<Frame>(send_hwm.max(1));
        let thread = std::thread::Builder::new()
            .name("sccg-net-writer".into())
            .spawn(move || write_loop(stream, rx))?;
        Ok(NonBlockingWriter {
            tx: Some(tx),
            thread: Some(thread),
        })
    }

    /// Enqueues a frame, blocking while the send HWM is reached (the
    /// backpressure by which a slow peer stalls only its own producer).
    /// Fails if the writer thread exited (socket error or peer reset).
    pub fn send(&self, frame: Frame) -> Result<(), WriterClosed> {
        match &self.tx {
            Some(tx) => tx.send_blocking(frame).map_err(|_| WriterClosed),
            None => Err(WriterClosed),
        }
    }

    /// Closes the channel, lets the thread drain every buffered frame,
    /// flush, and exit; returns the thread's I/O verdict. This is the
    /// "flush writers" step of a graceful drain.
    pub fn close(mut self) -> std::io::Result<()> {
        self.tx = None; // last sender drops; the channel disconnects
        match self.thread.take() {
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err(std::io::Error::other("writer thread panicked"))),
            None => Ok(()),
        }
    }
}

impl Drop for NonBlockingWriter {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn write_loop(mut stream: TcpStream, rx: Receiver<Frame>) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(64 * 1024);
    // `recv` resolves to `None` only once the channel is both disconnected
    // and drained, so close() naturally flushes everything still buffered.
    while let Some(frame) = block_on(rx.recv()) {
        out.clear();
        encode_frame(frame.kind, &frame.body, &mut out);
        // Coalesce whatever else is already buffered into one write.
        while out.len() < 64 * 1024 {
            match rx.try_recv() {
                Ok(frame) => encode_frame(frame.kind, &frame.body, &mut out),
                Err(_) => break,
            }
        }
        stream.write_all(&out)?;
        if rx.is_empty() {
            stream.flush()?;
        }
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_queue_delivers_in_order_and_drains_after_close() {
        let queue = BoundedQueue::new(8);
        for i in 0..5 {
            queue.push(i).unwrap();
        }
        queue.close();
        assert_eq!(queue.push(9), Err(9), "closed queue rejects pushes");
        for i in 0..5 {
            assert_eq!(
                queue.pop_timeout(Duration::from_millis(1)),
                PopTimeout::Item(i)
            );
        }
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(1)),
            PopTimeout::<i32>::Closed
        );
    }

    #[test]
    fn bounded_queue_times_out_while_open() {
        let queue: BoundedQueue<i32> = BoundedQueue::new(1);
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(5)),
            PopTimeout::TimedOut
        );
    }

    #[test]
    fn push_blocks_at_the_high_water_mark_until_a_pop() {
        let queue = Arc::new(BoundedQueue::new(2));
        queue.push(0).unwrap();
        queue.push(1).unwrap();
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(2))
        };
        // The pusher is over the HWM: it must still be parked.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!pusher.is_finished(), "push parks at the HWM");
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(100)),
            PopTimeout::Item(0)
        );
        assert_eq!(pusher.join().unwrap(), Ok(()));
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(100)),
            PopTimeout::Item(1)
        );
        assert_eq!(
            queue.pop_timeout(Duration::from_millis(100)),
            PopTimeout::Item(2)
        );
    }

    #[test]
    fn close_unblocks_a_parked_pusher() {
        let queue = Arc::new(BoundedQueue::new(1));
        queue.push(0).unwrap();
        let pusher = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.push(1))
        };
        std::thread::sleep(Duration::from_millis(10));
        queue.close();
        assert_eq!(
            pusher.join().unwrap(),
            Err(1),
            "close rejects the parked push"
        );
    }
}
