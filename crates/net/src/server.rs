//! The wire server: a TCP front-end over a shared [`ComparisonService`].
//!
//! One acceptor thread plus one dispatcher per connection. A connection
//! speaks the protocol of [`crate::wire`]: `Hello`/`HelloAck`, then queries
//! processed **serially per connection** (concurrency is achieved with
//! concurrent connections, which is also what keeps the per-connection
//! send/receive buffers honest HWMs). For every query the dispatcher:
//!
//! 1. consults the per-client **routing cache** — a duplicate of an
//!    in-flight request is re-acked only, a duplicate of a finished request
//!    replays its stored terminal frame without recomputing (this is what
//!    makes client retries idempotent);
//! 2. sends the `Ack` *before* admission, so a query waiting for an
//!    execution slot does not look lost to the client's retry timer;
//! 3. submits via [`ComparisonService::submit_streaming`] and forwards each
//!    [`QueryEvent::Tile`] as its shard completes (streaming mode), then the
//!    terminal `Summary`/`Error` frame. Blocking mode is the degenerate
//!    case: tile events are folded into one summary frame with the tile
//!    list inline.
//!
//! Shutdown is a **graceful drain**: stop accepting, let every dispatcher
//! finish its in-flight query, flush and close the writers, join all
//! threads. [`WireServer::drop`] performs the same drain.

use crate::conn::{NonBlockingReader, NonBlockingWriter, PopTimeout, WriterClosed};
use crate::frame::Frame;
use crate::wire::{Message, WireFailure, WireResponse, WireStats, WireTile};
use sccg::sync::lock;
use sccg::{FaultInjector, SccgError};
use sccg_serve::{ComparisonService, LruCache, QueryEvent};
use std::cell::Cell;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`WireServer`].
///
/// Marked `#[non_exhaustive]`: construct with [`NetConfig::default`] and the
/// `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct NetConfig {
    /// Send high-water mark: frames buffered per connection before the
    /// dispatcher blocks (and, transitively, the peer's TCP window fills).
    pub send_hwm: usize,
    /// Receive high-water mark: decoded frames buffered per connection
    /// before the reader thread stops issuing socket reads.
    pub recv_hwm: usize,
    /// Capacity of the `(client, request)` routing cache that makes retries
    /// idempotent. Small by design: it only needs to cover the retry window.
    pub route_cache: usize,
    /// How often parked dispatchers re-check the drain flag.
    pub poll_interval: Duration,
    /// Optional fault injector consulted before every post-handshake frame
    /// a connection sends: a scheduled [`ConnectionReset`] for this client
    /// at the current frame count drops the connection abruptly. `None`
    /// (the default) injects nothing.
    ///
    /// [`ConnectionReset`]: sccg::faults::ConnectionReset
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            send_hwm: 64,
            recv_hwm: 64,
            route_cache: 128,
            poll_interval: Duration::from_millis(20),
            faults: None,
        }
    }
}

impl NetConfig {
    /// Returns a copy with a different send high-water mark.
    pub fn with_send_hwm(mut self, send_hwm: usize) -> Self {
        self.send_hwm = send_hwm;
        self
    }

    /// Returns a copy with a different receive high-water mark.
    pub fn with_recv_hwm(mut self, recv_hwm: usize) -> Self {
        self.recv_hwm = recv_hwm;
        self
    }

    /// Returns a copy with a different routing-cache capacity.
    pub fn with_route_cache(mut self, route_cache: usize) -> Self {
        self.route_cache = route_cache;
        self
    }

    /// Returns a copy that consults `faults` before every frame each
    /// connection sends (chaos harness hook — see [`NetConfig::faults`]).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// Routing state of one `(client_id, request_id)`.
enum RouteState {
    /// The query is executing; duplicates are re-acked and otherwise
    /// ignored.
    InFlight,
    /// The query finished; duplicates replay this terminal frame (stored
    /// with the tile list inline, so the replay is self-contained even for
    /// originally-streamed queries).
    Done(Frame),
}

/// The sending half of one connection, with the chaos hook in front: every
/// post-handshake frame is counted, and a [`FaultInjector`] reset scheduled
/// for this client at the current count kills the connection instead of
/// sending — the peer observes an abrupt close mid-exchange.
struct ConnSender<'a> {
    writer: &'a NonBlockingWriter,
    faults: Option<&'a Arc<FaultInjector>>,
    client_id: u64,
    frames_sent: Cell<u64>,
}

impl ConnSender<'_> {
    fn send(&self, frame: Frame) -> Result<(), WriterClosed> {
        if let Some(injector) = self.faults {
            if injector.reset_connection_now(self.client_id, self.frames_sent.get()) {
                return Err(WriterClosed);
            }
        }
        self.frames_sent.set(self.frames_sent.get() + 1);
        self.writer.send(frame)
    }
}

struct ServerShared {
    service: Arc<ComparisonService>,
    config: NetConfig,
    draining: AtomicBool,
    next_client: AtomicU64,
    routes: Mutex<LruCache<(u64, u64), Arc<RouteState>>>,
    dispatchers: Mutex<Vec<JoinHandle<()>>>,
}

/// A running wire front-end. See the [module docs](self).
pub struct WireServer {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for WireServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl WireServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts accepting
    /// connections against `service`.
    pub fn start(
        service: Arc<ComparisonService>,
        addr: impl ToSocketAddrs,
        config: NetConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            service,
            routes: Mutex::new(LruCache::new(config.route_cache)),
            config,
            draining: AtomicBool::new(false),
            next_client: AtomicU64::new(1),
            dispatchers: Mutex::new(Vec::new()),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("sccg-net-accept".into())
            .spawn(move || accept_loop(listener, acceptor_shared))?;
        Ok(WireServer {
            shared,
            addr,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Gracefully drains the server: stops accepting, finishes in-flight
    /// queries, flushes and closes every connection, joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let dispatchers = std::mem::take(&mut *lock(&self.shared.dispatchers));
        for dispatcher in dispatchers {
            let _ = dispatcher.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nodelay(true);
                let dispatcher_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("sccg-net-conn".into())
                    .spawn(move || dispatch_connection(stream, dispatcher_shared));
                if let Ok(handle) = spawned {
                    lock(&shared.dispatchers).push(handle);
                }
            }
            // Nonblocking accept: park briefly so the drain flag stays
            // responsive without an event queue.
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Runs one connection to completion: handshake, then serial queries until
/// the peer disconnects or the server drains.
fn dispatch_connection(stream: TcpStream, shared: Arc<ServerShared>) {
    let reader = match stream
        .try_clone()
        .and_then(|s| NonBlockingReader::spawn(s, shared.config.recv_hwm))
    {
        Ok(reader) => reader,
        Err(_) => return,
    };
    let writer = match NonBlockingWriter::spawn(stream, shared.config.send_hwm) {
        Ok(writer) => writer,
        Err(_) => return,
    };

    if let Some(client_id) = handshake(&reader, &writer, &shared) {
        let sender = ConnSender {
            writer: &writer,
            faults: shared.config.faults.as_ref(),
            client_id,
            frames_sent: Cell::new(0),
        };
        serve_queries(&reader, &sender, &shared);
    }
    // Graceful teardown either way: drain + flush the send buffer, then
    // release the read half.
    let _ = writer.close();
    reader.close();
}

/// Waits for the `Hello`, assigns or echoes the client id, acks it.
fn handshake(
    reader: &NonBlockingReader,
    writer: &NonBlockingWriter,
    shared: &ServerShared,
) -> Option<u64> {
    loop {
        match reader.recv_timeout(shared.config.poll_interval) {
            PopTimeout::Item(frame) => {
                return match Message::of_frame(&frame) {
                    Ok(Message::Hello { client_id }) => {
                        let client_id = if client_id == 0 {
                            shared.next_client.fetch_add(1, Ordering::Relaxed)
                        } else {
                            client_id
                        };
                        writer
                            .send(Message::HelloAck { client_id }.to_frame())
                            .ok()?;
                        Some(client_id)
                    }
                    // Anything else before the handshake is a protocol
                    // violation: drop the connection.
                    _ => None,
                };
            }
            PopTimeout::TimedOut => {
                if shared.draining.load(Ordering::SeqCst) {
                    return None;
                }
            }
            PopTimeout::Closed => return None,
        }
    }
}

fn serve_queries(reader: &NonBlockingReader, sender: &ConnSender<'_>, shared: &ServerShared) {
    loop {
        match reader.recv_timeout(shared.config.poll_interval) {
            PopTimeout::Item(frame) => {
                if serve_frame(&frame, sender, shared).is_err() {
                    return; // writer gone (or reset injected): connection dead
                }
            }
            PopTimeout::TimedOut => {
                // The drain point: between queries, never mid-query.
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            PopTimeout::Closed => return,
        }
    }
}

/// Dispatches one decoded frame. Anything other than a query or a stats
/// probe — an unexpected-but-valid kind (a late duplicate ack, say) or an
/// undecodable body — poisons only that message and is skipped. An error
/// means the writer is gone.
fn serve_frame(
    frame: &crate::frame::Frame,
    sender: &ConnSender<'_>,
    shared: &ServerShared,
) -> Result<(), WriterClosed> {
    match Message::of_frame(frame) {
        Ok(Message::Query {
            request_id,
            streaming,
            spec,
        }) => serve_one_query(request_id, streaming, &spec, sender, shared),
        Ok(Message::StatsRequest) => {
            let stats = WireStats::of_stats(&shared.service.stats());
            sender.send(Message::Stats { stats }.to_frame())
        }
        _ => Ok(()),
    }
}

/// Handles one query frame end to end. An error means the writer is gone.
fn serve_one_query(
    request_id: u64,
    streaming: bool,
    spec: &crate::wire::WireRequestSpec,
    sender: &ConnSender<'_>,
    shared: &ServerShared,
) -> Result<(), WriterClosed> {
    let key = (sender.client_id, request_id);

    // Retry idempotency: duplicates never recompute.
    if let Some(route) = lock(&shared.routes).get(&key) {
        sender.send(Message::Ack { request_id }.to_frame())?;
        if let RouteState::Done(terminal) = route.as_ref() {
            sender.send(terminal.clone())?;
        }
        return Ok(());
    }
    lock(&shared.routes).insert(key, Arc::new(RouteState::InFlight));

    // Ack before admission: a query parked on the admission semaphore is
    // *accepted*, and must not look lost to the client's retry timer.
    sender.send(Message::Ack { request_id }.to_frame())?;

    let handle = match shared.service.submit_streaming(spec.to_request()) {
        Ok(handle) => handle,
        Err(error) => {
            let terminal = Message::Error {
                request_id,
                failure: WireFailure::of_error(&error),
            }
            .to_frame();
            lock(&shared.routes).insert(key, Arc::new(RouteState::Done(terminal.clone())));
            sender.send(terminal)?;
            return Ok(());
        }
    };

    // Pump the event stream. Tile frames go out the moment shards complete;
    // the terminal frame is stored for replay *with* its tile list, so a
    // replayed response is self-contained even if the live one streamed.
    let (live, stored) = loop {
        match handle.next_event() {
            Some(QueryEvent::Tile { position, report }) => {
                if streaming {
                    sender.send(
                        Message::Tile {
                            request_id,
                            position: position as u64,
                            tile: WireTile::of_report(&report),
                        }
                        .to_frame(),
                    )?;
                }
            }
            Some(QueryEvent::Finished(Ok(response))) => {
                let full = WireResponse::of_response(&response);
                let stored = Message::Summary {
                    request_id,
                    tiles_included: true,
                    response: full.clone(),
                }
                .to_frame();
                let live = if streaming {
                    // The tiles already streamed; the live summary carries
                    // only the merged result.
                    Message::Summary {
                        request_id,
                        tiles_included: false,
                        response: WireResponse {
                            tiles: Vec::new(),
                            ..full
                        },
                    }
                    .to_frame()
                } else {
                    stored.clone()
                };
                break (live, stored);
            }
            Some(QueryEvent::Finished(Err(error))) => {
                let terminal = Message::Error {
                    request_id,
                    failure: WireFailure::of_error(&error),
                }
                .to_frame();
                break (terminal.clone(), terminal);
            }
            None => {
                let terminal = Message::Error {
                    request_id,
                    failure: WireFailure::of_error(&SccgError::ShutDown),
                }
                .to_frame();
                break (terminal.clone(), terminal);
            }
        }
    };
    lock(&shared.routes).insert(key, Arc::new(RouteState::Done(stored)));
    sender.send(live)?;
    Ok(())
}
