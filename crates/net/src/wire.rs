//! Message bodies carried inside frames, and their byte-level codec.
//!
//! The encoding is explicit and position-independent of the host: integers
//! are big-endian fixed-width, strings are length-prefixed UTF-8, floats
//! travel as their IEEE-754 bit patterns (`f64::to_bits`) so a response
//! decoded on the far side is **bit-identical** to the in-process result —
//! the acceptance bar for the reproduction's serving layer. Every enum is a
//! one-byte tag pinned here, independent of Rust discriminant order.

use crate::frame::{Frame, FrameKind};
use sccg::pixelbox::{AggregationDevice, Variant};
use sccg::{JaccardSummary, SccgError};
use sccg_serve::{QueryPriority, QueryRequest, QueryResponse, SlideId, TileReport};
use std::fmt;

/// Protocol magic opening every [`Message::Hello`]: `"SCCG"`.
pub const MAGIC: u32 = 0x5343_4347;
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;

/// Decode failure of a frame body. Unlike a framing error, the *stream* is
/// still intact (frame boundaries are known); only this message is bad.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireDecodeError {
    /// The body ended before the field being read.
    Eof {
        /// The field that could not be read.
        field: &'static str,
    },
    /// A tag byte held a value this version does not know.
    BadTag {
        /// The field whose tag was invalid.
        field: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireDecodeError::Eof { field } => write!(f, "body truncated reading {field}"),
            WireDecodeError::BadTag { field, value } => {
                write!(f, "invalid tag {value} for {field}")
            }
            WireDecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireDecodeError {}

struct BodyWriter {
    buf: Vec<u8>,
}

impl BodyWriter {
    fn new() -> Self {
        BodyWriter { buf: Vec::new() }
    }

    fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn i64(&mut self, value: i64) {
        self.buf.extend_from_slice(&value.to_be_bytes());
    }

    fn bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    fn str(&mut self, value: &str) {
        self.u32(value.len() as u32);
        self.buf.extend_from_slice(value.as_bytes());
    }
}

struct BodyReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BodyReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        BodyReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], WireDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(WireDecodeError::Eof { field })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, WireDecodeError> {
        Ok(self.take(1, field)?[0])
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, WireDecodeError> {
        let b = self.take(4, field)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, WireDecodeError> {
        let b = self.take(8, field)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self, field: &'static str) -> Result<i64, WireDecodeError> {
        let b = self.take(8, field)?;
        Ok(i64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, WireDecodeError> {
        match self.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireDecodeError::BadTag {
                field,
                value: u64::from(other),
            }),
        }
    }

    fn str(&mut self, field: &'static str) -> Result<String, WireDecodeError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireDecodeError::BadUtf8)
    }
}

// --- enum tags (pinned; independent of Rust discriminant order) -----------

fn device_tag(device: AggregationDevice) -> u8 {
    match device {
        AggregationDevice::Gpu => 1,
        AggregationDevice::Cpu => 2,
        AggregationDevice::Hybrid => 3,
    }
}

fn device_of_tag(tag: u8, field: &'static str) -> Result<AggregationDevice, WireDecodeError> {
    Ok(match tag {
        1 => AggregationDevice::Gpu,
        2 => AggregationDevice::Cpu,
        3 => AggregationDevice::Hybrid,
        other => {
            return Err(WireDecodeError::BadTag {
                field,
                value: u64::from(other),
            })
        }
    })
}

fn opt_device_tag(device: Option<AggregationDevice>) -> u8 {
    device.map_or(0, device_tag)
}

fn opt_device_of_tag(
    tag: u8,
    field: &'static str,
) -> Result<Option<AggregationDevice>, WireDecodeError> {
    if tag == 0 {
        return Ok(None);
    }
    device_of_tag(tag, field).map(Some)
}

fn variant_tag(variant: Option<Variant>) -> u8 {
    match variant {
        None => 0,
        Some(Variant::PixelOnly) => 1,
        Some(Variant::NoSep) => 2,
        Some(Variant::Full) => 3,
    }
}

fn variant_of_tag(tag: u8, field: &'static str) -> Result<Option<Variant>, WireDecodeError> {
    Ok(match tag {
        0 => None,
        1 => Some(Variant::PixelOnly),
        2 => Some(Variant::NoSep),
        3 => Some(Variant::Full),
        other => {
            return Err(WireDecodeError::BadTag {
                field,
                value: u64::from(other),
            })
        }
    })
}

fn priority_tag(priority: QueryPriority) -> u8 {
    match priority {
        QueryPriority::High => 0,
        QueryPriority::Normal => 1,
        QueryPriority::Low => 2,
    }
}

fn priority_of_tag(tag: u8, field: &'static str) -> Result<QueryPriority, WireDecodeError> {
    Ok(match tag {
        0 => QueryPriority::High,
        1 => QueryPriority::Normal,
        2 => QueryPriority::Low,
        other => {
            return Err(WireDecodeError::BadTag {
                field,
                value: u64::from(other),
            })
        }
    })
}

// --- payload structs ------------------------------------------------------

/// A query as it travels on the wire: raw slide ids plus the request's
/// options, convertible to a [`QueryRequest`] on the server side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequestSpec {
    /// Raw id of the first slide ([`SlideId::value`]).
    pub first: u64,
    /// Raw id of the second slide.
    pub second: u64,
    /// `None` = whole slide, `Some(list)` = explicit tile indices.
    pub tiles: Option<Vec<u64>>,
    /// Device restriction.
    pub device: Option<AggregationDevice>,
    /// PixelBox variant override.
    pub variant: Option<Variant>,
    /// Scheduling priority.
    pub priority: QueryPriority,
    /// Per-query deadline in milliseconds, measured from server-side
    /// submission; `None` never expires. Expiry fails the query with
    /// [`SccgError::DeadlineExceeded`] (wire code 12).
    pub deadline_ms: Option<u64>,
}

impl WireRequestSpec {
    /// A whole-slide query of `first` vs `second` with default options.
    pub fn new(first: SlideId, second: SlideId) -> Self {
        WireRequestSpec {
            first: first.value(),
            second: second.value(),
            tiles: None,
            device: None,
            variant: None,
            priority: QueryPriority::default(),
            deadline_ms: None,
        }
    }

    /// The equivalent in-process request.
    pub fn to_request(&self) -> QueryRequest {
        let mut request = QueryRequest::new(
            SlideId::from_raw(self.first),
            SlideId::from_raw(self.second),
        );
        if let Some(tiles) = &self.tiles {
            request = request.tiles(tiles.iter().map(|&t| t as usize).collect());
        }
        if let Some(device) = self.device {
            request = request.on_device(device);
        }
        if let Some(variant) = self.variant {
            request = request.variant(variant);
        }
        if let Some(ms) = self.deadline_ms {
            request = request.with_deadline(std::time::Duration::from_millis(ms));
        }
        request.priority(self.priority)
    }
}

/// A [`JaccardSummary`] as it travels on the wire. The similarity is stored
/// as its IEEE-754 bit pattern, so equality of this struct *is* bit-identity
/// of the summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSummary {
    /// `f64::to_bits` of the `J'` similarity.
    pub similarity_bits: u64,
    /// Pairs with a non-empty intersection.
    pub intersecting_pairs: u64,
    /// Candidate pairs examined.
    pub candidate_pairs: u64,
    /// Sum of intersection areas.
    pub total_intersection_area: i64,
    /// Sum of union areas.
    pub total_union_area: i64,
}

impl WireSummary {
    /// Captures an in-process summary bit-for-bit.
    pub fn of_summary(summary: &JaccardSummary) -> Self {
        WireSummary {
            similarity_bits: summary.similarity.to_bits(),
            intersecting_pairs: summary.intersecting_pairs,
            candidate_pairs: summary.candidate_pairs,
            total_intersection_area: summary.total_intersection_area,
            total_union_area: summary.total_union_area,
        }
    }

    /// The similarity as a float again.
    pub fn similarity(&self) -> f64 {
        f64::from_bits(self.similarity_bits)
    }

    fn encode(&self, w: &mut BodyWriter) {
        w.u64(self.similarity_bits);
        w.u64(self.intersecting_pairs);
        w.u64(self.candidate_pairs);
        w.i64(self.total_intersection_area);
        w.i64(self.total_union_area);
    }

    fn decode(r: &mut BodyReader<'_>) -> Result<Self, WireDecodeError> {
        Ok(WireSummary {
            similarity_bits: r.u64("summary.similarity_bits")?,
            intersecting_pairs: r.u64("summary.intersecting_pairs")?,
            candidate_pairs: r.u64("summary.candidate_pairs")?,
            total_intersection_area: r.i64("summary.total_intersection_area")?,
            total_union_area: r.i64("summary.total_union_area")?,
        })
    }
}

/// A [`TileReport`] as it travels on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTile {
    /// Tile index within both slides.
    pub tile: u64,
    /// Pool index of the serving engine.
    pub engine: u64,
    /// Backend name of that engine.
    pub backend: String,
    /// Candidate pairs of the tile's MBR join.
    pub candidate_pairs: u64,
    /// The tile's Jaccard summary.
    pub summary: WireSummary,
}

impl WireTile {
    /// Captures an in-process tile report bit-for-bit.
    pub fn of_report(report: &TileReport) -> Self {
        WireTile {
            tile: report.tile as u64,
            engine: report.engine as u64,
            backend: report.backend.clone(),
            candidate_pairs: report.candidate_pairs as u64,
            summary: WireSummary::of_summary(&report.summary),
        }
    }

    fn encode(&self, w: &mut BodyWriter) {
        w.u64(self.tile);
        w.u64(self.engine);
        w.str(&self.backend);
        w.u64(self.candidate_pairs);
        self.summary.encode(w);
    }

    fn decode(r: &mut BodyReader<'_>) -> Result<Self, WireDecodeError> {
        Ok(WireTile {
            tile: r.u64("tile.tile")?,
            engine: r.u64("tile.engine")?,
            backend: r.str("tile.backend")?,
            candidate_pairs: r.u64("tile.candidate_pairs")?,
            summary: WireSummary::decode(r)?,
        })
    }
}

/// A full query response as it travels in a [`Message::Summary`] frame.
///
/// In streaming mode the server omits the tile list (`tiles_included =
/// false` on the wire) because every tile already went out as its own frame;
/// the client reassembles `tiles` from those frames, so this struct is
/// complete in both modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireResponse {
    /// Raw id of the first slide.
    pub first: u64,
    /// Raw id of the second slide.
    pub second: u64,
    /// Per-tile reports in merge order.
    pub tiles: Vec<WireTile>,
    /// The merged whole-query summary.
    pub summary: WireSummary,
    /// Shards the query was split into.
    pub shards: u64,
    /// Whether the server answered from its response cache.
    pub cache_hit: bool,
    /// Priority the query ran at.
    pub priority: QueryPriority,
    /// The request's device preference.
    pub device: Option<AggregationDevice>,
}

impl WireResponse {
    /// Captures an in-process response bit-for-bit.
    pub fn of_response(response: &QueryResponse) -> Self {
        WireResponse {
            first: response.first.value(),
            second: response.second.value(),
            tiles: response.tiles.iter().map(WireTile::of_report).collect(),
            summary: WireSummary::of_summary(&response.summary),
            shards: response.shards as u64,
            cache_hit: response.cache_hit,
            priority: response.priority,
            device: response.device,
        }
    }

    /// The `J'` similarity, `0.0` for degenerate summaries.
    pub fn similarity(&self) -> f64 {
        let similarity = self.summary.similarity();
        if similarity.is_finite() {
            similarity
        } else {
            0.0
        }
    }
}

/// A [`sccg_serve::ServiceStats`] snapshot as it travels on the wire,
/// scheduler placement counters included. The pager hit rate travels as its
/// IEEE-754 bit pattern so the remote reading of the fleet's telemetry is
/// bit-identical to the in-process one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStats {
    /// Requests accepted by the service.
    pub submitted: u64,
    /// Sharded queries run to completion.
    pub completed: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Shards computed by any backend.
    pub backend_batches: u64,
    /// Queries executing at snapshot time.
    pub in_flight: u64,
    /// High-water mark of concurrent queries.
    pub peak_in_flight: u64,
    /// Responses held by the cache.
    pub cache_entries: u64,
    /// Shards computed per engine, by pool index.
    pub shards_per_engine: Vec<u64>,
    /// Decoded tiles resident across disk-backed slides.
    pub resident_tiles: u64,
    /// `f64::to_bits` of the pager hit rate.
    pub pager_hit_rate_bits: u64,
    /// Bytes of slide files on disk.
    pub bytes_on_disk: u64,
    /// Faults coalesced into another engine's in-progress read.
    pub coalesced_faults: u64,
    /// Telemetry name of the placement policy.
    pub policy: String,
    /// Dispatches whose disk-backed tiles were all resident.
    pub affinity_hits: u64,
    /// Dispatches that still had to fault a tile in.
    pub affinity_misses: u64,
    /// Disk reads issued by the background prefetcher.
    pub prefetch_issued: u64,
    /// Prefetches still resident when their shard dispatched.
    pub prefetch_used: u64,
    /// Prefetches evicted (or orphaned) before their shard dispatched.
    pub prefetch_wasted: u64,
    /// Resident disk-backed tiles encountered at dispatch.
    pub faults_avoided: u64,
}

impl WireStats {
    /// Captures an in-process stats snapshot bit-for-bit.
    pub fn of_stats(stats: &sccg_serve::ServiceStats) -> Self {
        WireStats {
            submitted: stats.submitted,
            completed: stats.completed,
            cache_hits: stats.cache_hits,
            backend_batches: stats.backend_batches,
            in_flight: stats.in_flight as u64,
            peak_in_flight: stats.peak_in_flight as u64,
            cache_entries: stats.cache_entries as u64,
            shards_per_engine: stats.shards_per_engine.clone(),
            resident_tiles: stats.resident_tiles as u64,
            pager_hit_rate_bits: stats.pager_hit_rate.to_bits(),
            bytes_on_disk: stats.bytes_on_disk,
            coalesced_faults: stats.coalesced_faults,
            policy: stats.scheduler.policy.clone(),
            affinity_hits: stats.scheduler.affinity_hits,
            affinity_misses: stats.scheduler.affinity_misses,
            prefetch_issued: stats.scheduler.prefetch_issued,
            prefetch_used: stats.scheduler.prefetch_used,
            prefetch_wasted: stats.scheduler.prefetch_wasted,
            faults_avoided: stats.scheduler.faults_avoided,
        }
    }

    /// The pager hit rate as a float again.
    pub fn pager_hit_rate(&self) -> f64 {
        f64::from_bits(self.pager_hit_rate_bits)
    }

    fn encode(&self, w: &mut BodyWriter) {
        w.u64(self.submitted);
        w.u64(self.completed);
        w.u64(self.cache_hits);
        w.u64(self.backend_batches);
        w.u64(self.in_flight);
        w.u64(self.peak_in_flight);
        w.u64(self.cache_entries);
        w.u32(self.shards_per_engine.len() as u32);
        for &shards in &self.shards_per_engine {
            w.u64(shards);
        }
        w.u64(self.resident_tiles);
        w.u64(self.pager_hit_rate_bits);
        w.u64(self.bytes_on_disk);
        w.u64(self.coalesced_faults);
        w.str(&self.policy);
        w.u64(self.affinity_hits);
        w.u64(self.affinity_misses);
        w.u64(self.prefetch_issued);
        w.u64(self.prefetch_used);
        w.u64(self.prefetch_wasted);
        w.u64(self.faults_avoided);
    }

    fn decode(r: &mut BodyReader<'_>) -> Result<Self, WireDecodeError> {
        let submitted = r.u64("stats.submitted")?;
        let completed = r.u64("stats.completed")?;
        let cache_hits = r.u64("stats.cache_hits")?;
        let backend_batches = r.u64("stats.backend_batches")?;
        let in_flight = r.u64("stats.in_flight")?;
        let peak_in_flight = r.u64("stats.peak_in_flight")?;
        let cache_entries = r.u64("stats.cache_entries")?;
        let engines = r.u32("stats.engine_count")? as usize;
        let mut shards_per_engine = Vec::with_capacity(engines.min(1 << 16));
        for _ in 0..engines {
            shards_per_engine.push(r.u64("stats.shards_per_engine")?);
        }
        Ok(WireStats {
            submitted,
            completed,
            cache_hits,
            backend_batches,
            in_flight,
            peak_in_flight,
            cache_entries,
            shards_per_engine,
            resident_tiles: r.u64("stats.resident_tiles")?,
            pager_hit_rate_bits: r.u64("stats.pager_hit_rate_bits")?,
            bytes_on_disk: r.u64("stats.bytes_on_disk")?,
            coalesced_faults: r.u64("stats.coalesced_faults")?,
            policy: r.str("stats.policy")?,
            affinity_hits: r.u64("stats.affinity_hits")?,
            affinity_misses: r.u64("stats.affinity_misses")?,
            prefetch_issued: r.u64("stats.prefetch_issued")?,
            prefetch_used: r.u64("stats.prefetch_used")?,
            prefetch_wasted: r.u64("stats.prefetch_wasted")?,
            faults_avoided: r.u64("stats.faults_avoided")?,
        })
    }
}

/// A query failure as it travels on the wire: a coded [`SccgError`] plus its
/// rendered detail, reconstructible on the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFailure {
    code: u8,
    a: u64,
    b: u64,
    c: u64,
    detail: String,
}

impl WireFailure {
    /// Encodes a service error. Detail-carrying variants travel with their
    /// *inner* detail (so the variant reconstructs exactly); variants whose
    /// fields are numeric travel with their rendered form as a fallback for
    /// peers that do not know the code.
    pub fn of_error(error: &SccgError) -> Self {
        let (code, a, b, c, detail) = match error {
            SccgError::Parse { detail } => (1, 0, 0, 0, detail.clone()),
            SccgError::UnknownSlide { slide } => (2, *slide, 0, 0, error.to_string()),
            SccgError::UnknownTile { slide, tile, tiles } => {
                (3, *slide, *tile as u64, *tiles as u64, error.to_string())
            }
            SccgError::TileCountMismatch { first, second } => {
                (4, *first as u64, *second as u64, 0, error.to_string())
            }
            SccgError::NoEligibleEngine { device } => {
                (5, u64::from(device_tag(*device)), 0, 0, error.to_string())
            }
            SccgError::EmptyEnginePool => (6, 0, 0, 0, error.to_string()),
            SccgError::Overloaded { in_flight, bound } => {
                (7, *in_flight as u64, *bound as u64, 0, error.to_string())
            }
            SccgError::ShutDown => (8, 0, 0, 0, error.to_string()),
            SccgError::InvalidRequest { detail } => (9, 0, 0, 0, detail.clone()),
            SccgError::Internal { detail } => (10, 0, 0, 0, detail.clone()),
            SccgError::Storage { detail } => (11, 0, 0, 0, detail.clone()),
            SccgError::DeadlineExceeded { deadline_ms } => {
                (12, *deadline_ms, 0, 0, error.to_string())
            }
            // `SccgError` is non_exhaustive: future variants travel as their
            // rendered detail.
            _ => (0, 0, 0, 0, error.to_string()),
        };
        WireFailure {
            code,
            a,
            b,
            c,
            detail,
        }
    }

    /// Reconstructs the service error (future/unknown codes surface as
    /// [`SccgError::Internal`] carrying the remote rendering).
    pub fn to_error(&self) -> SccgError {
        match self.code {
            1 => SccgError::Parse {
                detail: self.detail.clone(),
            },
            2 => SccgError::UnknownSlide { slide: self.a },
            3 => SccgError::UnknownTile {
                slide: self.a,
                tile: self.b as usize,
                tiles: self.c as usize,
            },
            4 => SccgError::TileCountMismatch {
                first: self.a as usize,
                second: self.b as usize,
            },
            5 => match device_of_tag(self.a as u8, "failure.device") {
                Ok(device) => SccgError::NoEligibleEngine { device },
                Err(_) => SccgError::Internal {
                    detail: self.detail.clone(),
                },
            },
            6 => SccgError::EmptyEnginePool,
            7 => SccgError::Overloaded {
                in_flight: self.a as usize,
                bound: self.b as usize,
            },
            8 => SccgError::ShutDown,
            9 => SccgError::InvalidRequest {
                detail: self.detail.clone(),
            },
            11 => SccgError::Storage {
                detail: self.detail.clone(),
            },
            12 => SccgError::DeadlineExceeded {
                deadline_ms: self.a,
            },
            _ => SccgError::Internal {
                detail: self.detail.clone(),
            },
        }
    }
}

/// Every message of the protocol: one variant per [`FrameKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Client → server connection opener. `client_id` 0 asks the server to
    /// assign one; a nonzero id resumes that identity (routing/dedup state
    /// is keyed by it).
    Hello {
        /// Proposed client id, 0 to request assignment.
        client_id: u64,
    },
    /// Server → client: the id this connection speaks as.
    HelloAck {
        /// The (possibly server-assigned) client id.
        client_id: u64,
    },
    /// Client → server: run a comparison.
    Query {
        /// Client-chosen id, unique per client; retries reuse it.
        request_id: u64,
        /// Whether per-tile frames should stream before the summary.
        streaming: bool,
        /// The query itself.
        spec: WireRequestSpec,
    },
    /// Server → client: the query was received; stop retrying.
    Ack {
        /// The acknowledged request.
        request_id: u64,
    },
    /// Server → client: one tile of a streaming query, pushed the moment its
    /// shard completed.
    Tile {
        /// The owning request.
        request_id: u64,
        /// Slot in the final merge-ordered tile list.
        position: u64,
        /// The tile's report.
        tile: WireTile,
    },
    /// Server → client: the merged response; terminates the query. In
    /// streaming mode `tiles_included` is false and the response's tile list
    /// is empty on the wire (the client rebuilds it from tile frames).
    Summary {
        /// The finished request.
        request_id: u64,
        /// Whether the tile list travels inline (blocking mode).
        tiles_included: bool,
        /// The merged response.
        response: WireResponse,
    },
    /// Server → client: the query failed; terminates the query.
    Error {
        /// The failed request.
        request_id: u64,
        /// The coded failure.
        failure: WireFailure,
    },
    /// Client → server: asks for the service's telemetry snapshot. Served
    /// between queries (a connection's queries are serial), so it needs no
    /// request id.
    StatsRequest,
    /// Server → client: the telemetry snapshot, scheduler placement
    /// counters included.
    Stats {
        /// The snapshot.
        stats: WireStats,
    },
}

impl Message {
    /// Encodes the message as a frame.
    pub fn to_frame(&self) -> Frame {
        let mut w = BodyWriter::new();
        let kind = match self {
            Message::Hello { client_id } => {
                w.u32(MAGIC);
                w.u8(VERSION);
                w.u64(*client_id);
                FrameKind::Hello
            }
            Message::HelloAck { client_id } => {
                w.u64(*client_id);
                FrameKind::HelloAck
            }
            Message::Query {
                request_id,
                streaming,
                spec,
            } => {
                w.u64(*request_id);
                w.bool(*streaming);
                w.u64(spec.first);
                w.u64(spec.second);
                match &spec.tiles {
                    None => w.u8(0),
                    Some(tiles) => {
                        w.u8(1);
                        w.u32(tiles.len() as u32);
                        for &tile in tiles {
                            w.u64(tile);
                        }
                    }
                }
                w.u8(opt_device_tag(spec.device));
                w.u8(variant_tag(spec.variant));
                w.u8(priority_tag(spec.priority));
                match spec.deadline_ms {
                    None => w.u8(0),
                    Some(ms) => {
                        w.u8(1);
                        w.u64(ms);
                    }
                }
                FrameKind::Query
            }
            Message::Ack { request_id } => {
                w.u64(*request_id);
                FrameKind::Ack
            }
            Message::Tile {
                request_id,
                position,
                tile,
            } => {
                w.u64(*request_id);
                w.u64(*position);
                tile.encode(&mut w);
                FrameKind::Tile
            }
            Message::Summary {
                request_id,
                tiles_included,
                response,
            } => {
                w.u64(*request_id);
                w.u64(response.first);
                w.u64(response.second);
                w.u64(response.shards);
                w.bool(response.cache_hit);
                w.u8(priority_tag(response.priority));
                w.u8(opt_device_tag(response.device));
                response.summary.encode(&mut w);
                w.bool(*tiles_included);
                if *tiles_included {
                    w.u32(response.tiles.len() as u32);
                    for tile in &response.tiles {
                        tile.encode(&mut w);
                    }
                }
                FrameKind::Summary
            }
            Message::Error {
                request_id,
                failure,
            } => {
                w.u64(*request_id);
                w.u8(failure.code);
                w.u64(failure.a);
                w.u64(failure.b);
                w.u64(failure.c);
                w.str(&failure.detail);
                FrameKind::Error
            }
            Message::StatsRequest => FrameKind::StatsRequest,
            Message::Stats { stats } => {
                stats.encode(&mut w);
                FrameKind::Stats
            }
        };
        Frame { kind, body: w.buf }
    }

    /// Decodes a frame's body according to its kind.
    pub fn of_frame(frame: &Frame) -> Result<Self, WireDecodeError> {
        let mut r = BodyReader::new(&frame.body);
        Ok(match frame.kind {
            FrameKind::Hello => {
                let magic = r.u32("hello.magic")?;
                if magic != MAGIC {
                    return Err(WireDecodeError::BadTag {
                        field: "hello.magic",
                        value: u64::from(magic),
                    });
                }
                let version = r.u8("hello.version")?;
                if version != VERSION {
                    return Err(WireDecodeError::BadTag {
                        field: "hello.version",
                        value: u64::from(version),
                    });
                }
                Message::Hello {
                    client_id: r.u64("hello.client_id")?,
                }
            }
            FrameKind::HelloAck => Message::HelloAck {
                client_id: r.u64("hello_ack.client_id")?,
            },
            FrameKind::Query => {
                let request_id = r.u64("query.request_id")?;
                let streaming = r.bool("query.streaming")?;
                let first = r.u64("query.first")?;
                let second = r.u64("query.second")?;
                let tiles = match r.u8("query.tiles_tag")? {
                    0 => None,
                    1 => {
                        let count = r.u32("query.tile_count")? as usize;
                        let mut tiles = Vec::with_capacity(count.min(1 << 16));
                        for _ in 0..count {
                            tiles.push(r.u64("query.tile")?);
                        }
                        Some(tiles)
                    }
                    other => {
                        return Err(WireDecodeError::BadTag {
                            field: "query.tiles_tag",
                            value: u64::from(other),
                        })
                    }
                };
                let device = opt_device_of_tag(r.u8("query.device")?, "query.device")?;
                let variant = variant_of_tag(r.u8("query.variant")?, "query.variant")?;
                let priority = priority_of_tag(r.u8("query.priority")?, "query.priority")?;
                let deadline_ms = match r.u8("query.deadline_tag")? {
                    0 => None,
                    1 => Some(r.u64("query.deadline_ms")?),
                    other => {
                        return Err(WireDecodeError::BadTag {
                            field: "query.deadline_tag",
                            value: u64::from(other),
                        })
                    }
                };
                Message::Query {
                    request_id,
                    streaming,
                    spec: WireRequestSpec {
                        first,
                        second,
                        tiles,
                        device,
                        variant,
                        priority,
                        deadline_ms,
                    },
                }
            }
            FrameKind::Ack => Message::Ack {
                request_id: r.u64("ack.request_id")?,
            },
            FrameKind::Tile => Message::Tile {
                request_id: r.u64("tile.request_id")?,
                position: r.u64("tile.position")?,
                tile: WireTile::decode(&mut r)?,
            },
            FrameKind::Summary => {
                let request_id = r.u64("summary.request_id")?;
                let first = r.u64("summary.first")?;
                let second = r.u64("summary.second")?;
                let shards = r.u64("summary.shards")?;
                let cache_hit = r.bool("summary.cache_hit")?;
                let priority = priority_of_tag(r.u8("summary.priority")?, "summary.priority")?;
                let device = opt_device_of_tag(r.u8("summary.device")?, "summary.device")?;
                let summary = WireSummary::decode(&mut r)?;
                let tiles_included = r.bool("summary.tiles_included")?;
                let tiles = if tiles_included {
                    let count = r.u32("summary.tile_count")? as usize;
                    let mut tiles = Vec::with_capacity(count.min(1 << 16));
                    for _ in 0..count {
                        tiles.push(WireTile::decode(&mut r)?);
                    }
                    tiles
                } else {
                    Vec::new()
                };
                Message::Summary {
                    request_id,
                    tiles_included,
                    response: WireResponse {
                        first,
                        second,
                        tiles,
                        summary,
                        shards,
                        cache_hit,
                        priority,
                        device,
                    },
                }
            }
            FrameKind::Error => Message::Error {
                request_id: r.u64("error.request_id")?,
                failure: WireFailure {
                    code: r.u8("error.code")?,
                    a: r.u64("error.a")?,
                    b: r.u64("error.b")?,
                    c: r.u64("error.c")?,
                    detail: r.str("error.detail")?,
                },
            },
            FrameKind::StatsRequest => Message::StatsRequest,
            FrameKind::Stats => Message::Stats {
                stats: WireStats::decode(&mut r)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(message: Message) {
        let frame = message.to_frame();
        let decoded = Message::of_frame(&frame).expect("decodes");
        assert_eq!(decoded, message);
    }

    #[test]
    fn every_message_roundtrips() {
        let summary = WireSummary {
            similarity_bits: 0.728_f64.to_bits(),
            intersecting_pairs: 41,
            candidate_pairs: 77,
            total_intersection_area: 123_456,
            total_union_area: 234_567,
        };
        let tile = WireTile {
            tile: 3,
            engine: 1,
            backend: "pixelbox-hybrid".into(),
            candidate_pairs: 77,
            summary,
        };
        roundtrip(Message::Hello { client_id: 0 });
        roundtrip(Message::HelloAck { client_id: 9 });
        roundtrip(Message::Query {
            request_id: 17,
            streaming: true,
            spec: WireRequestSpec {
                first: 4,
                second: 5,
                tiles: Some(vec![2, 0, 1]),
                device: Some(AggregationDevice::Hybrid),
                variant: Some(Variant::NoSep),
                priority: QueryPriority::High,
                deadline_ms: Some(2_500),
            },
        });
        roundtrip(Message::Ack { request_id: 17 });
        roundtrip(Message::Tile {
            request_id: 17,
            position: 2,
            tile: tile.clone(),
        });
        roundtrip(Message::Summary {
            request_id: 17,
            tiles_included: true,
            response: WireResponse {
                first: 4,
                second: 5,
                tiles: vec![tile],
                summary,
                shards: 1,
                cache_hit: false,
                priority: QueryPriority::Normal,
                device: None,
            },
        });
        roundtrip(Message::Error {
            request_id: 18,
            failure: WireFailure::of_error(&SccgError::Overloaded {
                in_flight: 4,
                bound: 4,
            }),
        });
        roundtrip(Message::StatsRequest);
        roundtrip(Message::Stats {
            stats: sample_stats(),
        });
    }

    fn sample_stats() -> WireStats {
        WireStats {
            submitted: 12,
            completed: 10,
            cache_hits: 2,
            backend_batches: 80,
            in_flight: 1,
            peak_in_flight: 4,
            cache_entries: 7,
            shards_per_engine: vec![30, 25, 25],
            resident_tiles: 6,
            // A rate with no short decimal rendering: bit-identity would
            // fail under any text round-trip.
            pager_hit_rate_bits: f64::from_bits(0x3FE5_5555_5555_5555).to_bits(),
            bytes_on_disk: 4096,
            coalesced_faults: 3,
            policy: "residency-aware".into(),
            affinity_hits: 40,
            affinity_misses: 9,
            prefetch_issued: 24,
            prefetch_used: 20,
            prefetch_wasted: 4,
            faults_avoided: 55,
        }
    }

    #[test]
    fn truncated_stats_bodies_fail_without_panicking() {
        let frame = Message::Stats {
            stats: sample_stats(),
        }
        .to_frame();
        for cut in 0..frame.body.len() {
            let truncated = Frame {
                kind: frame.kind,
                body: frame.body[..cut].to_vec(),
            };
            assert!(
                Message::of_frame(&truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn similarity_bits_survive_exactly() {
        // A value with no short decimal rendering: bit-identity would fail
        // under any text round-trip.
        let value = f64::from_bits(0x3FE5_5555_5555_5555);
        let summary = WireSummary {
            similarity_bits: value.to_bits(),
            intersecting_pairs: 0,
            candidate_pairs: 0,
            total_intersection_area: 0,
            total_union_area: 0,
        };
        let message = Message::Tile {
            request_id: 1,
            position: 0,
            tile: WireTile {
                tile: 0,
                engine: 0,
                backend: String::new(),
                candidate_pairs: 0,
                summary,
            },
        };
        let frame = message.to_frame();
        match Message::of_frame(&frame).unwrap() {
            Message::Tile { tile, .. } => {
                assert_eq!(tile.summary.similarity().to_bits(), value.to_bits());
            }
            other => panic!("unexpected message {other:?}"),
        }
    }

    #[test]
    fn errors_reconstruct_their_variant() {
        let cases = [
            SccgError::UnknownSlide { slide: 12 },
            SccgError::UnknownTile {
                slide: 1,
                tile: 9,
                tiles: 4,
            },
            SccgError::TileCountMismatch {
                first: 10,
                second: 12,
            },
            SccgError::NoEligibleEngine {
                device: AggregationDevice::Cpu,
            },
            SccgError::Overloaded {
                in_flight: 4,
                bound: 4,
            },
            SccgError::ShutDown,
            SccgError::InvalidRequest {
                detail: "tile index 3 selected twice".into(),
            },
            SccgError::Storage {
                detail: "tile 3: block checksum mismatch".into(),
            },
            SccgError::DeadlineExceeded { deadline_ms: 250 },
        ];
        for error in cases {
            let reconstructed = WireFailure::of_error(&error).to_error();
            assert_eq!(reconstructed, error, "variant survives the wire");
        }
    }

    #[test]
    fn hello_rejects_wrong_magic_and_version() {
        let mut frame = Message::Hello { client_id: 1 }.to_frame();
        frame.body[0] ^= 0xFF;
        assert!(matches!(
            Message::of_frame(&frame),
            Err(WireDecodeError::BadTag {
                field: "hello.magic",
                ..
            })
        ));
        let mut frame = Message::Hello { client_id: 1 }.to_frame();
        frame.body[4] = VERSION + 1;
        assert!(matches!(
            Message::of_frame(&frame),
            Err(WireDecodeError::BadTag {
                field: "hello.version",
                ..
            })
        ));
    }

    #[test]
    fn truncated_bodies_fail_without_panicking() {
        let frame = Message::Query {
            request_id: 17,
            streaming: false,
            spec: WireRequestSpec {
                first: 4,
                second: 5,
                tiles: Some(vec![2, 0, 1]),
                device: None,
                variant: None,
                priority: QueryPriority::Normal,
                deadline_ms: Some(100),
            },
        }
        .to_frame();
        for cut in 0..frame.body.len() {
            let truncated = Frame {
                kind: frame.kind,
                body: frame.body[..cut].to_vec(),
            };
            assert!(
                Message::of_frame(&truncated).is_err(),
                "cut at {cut} must fail"
            );
        }
    }
}
