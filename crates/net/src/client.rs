//! The wire client: framed queries with acks, timed retries and capped
//! exponential backoff, in blocking or streaming mode.
//!
//! A query's lifecycle on the client side:
//!
//! 1. send the `Query` frame and arm the ack timer;
//! 2. if no `Ack` (or response frame, which implies the ack) arrives within
//!    [`ClientConfig::ack_timeout`], re-send the same `request_id` after a
//!    capped exponential backoff ([`backoff_delay`]) — the server's routing
//!    cache makes the duplicate idempotent;
//! 3. once acked, consume `Tile` frames (streaming mode) until the terminal
//!    `Summary`/`Error` frame, reassembling the tile list by position so the
//!    result is field-for-field (and bit-for-bit) the in-process response.
//!
//! Failure is typed: a query deadline caps the total retry budget and
//! surfaces as [`WireError::DeadlineExceeded`] whether the server reported
//! it (wire code 12) or the client detected it locally, and a connection
//! that dies after the ack is [`WireError::ResetMidStream`] — retryable on
//! a fresh connection — rather than a generic disconnect.

use crate::conn::{NonBlockingReader, NonBlockingWriter, PopTimeout};
use crate::wire::{Message, WireRequestSpec, WireResponse, WireStats, WireTile};
use sccg::SccgError;
use std::collections::VecDeque;
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure of a wire query.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The connection closed before the exchange completed.
    Disconnected,
    /// The request was never acknowledged (or never answered) in time.
    Timeout {
        /// The request that timed out.
        request_id: u64,
        /// Send attempts made (1 initial + retries).
        attempts: u32,
    },
    /// The query's deadline expired — reported by the server (wire code 12)
    /// or detected locally when the retry/wait budget ran past it. Both
    /// sides surface as this one variant, so callers see a single typed
    /// outcome regardless of which end noticed first.
    DeadlineExceeded {
        /// The request whose deadline expired.
        request_id: u64,
        /// The deadline the query carried, in milliseconds.
        deadline_ms: u64,
    },
    /// The connection was reset after the query was acknowledged, while
    /// (possibly partial) results were in flight — distinct from
    /// [`WireError::Disconnected`], which means the exchange never got that
    /// far. A retry on a fresh connection is safe: the query is idempotent.
    ResetMidStream {
        /// The request whose stream was cut.
        request_id: u64,
        /// Tile frames that had already arrived when the reset hit.
        tiles_received: usize,
    },
    /// The peer violated the protocol (bad frame, inconsistent response).
    Protocol(String),
    /// The server executed the query and reported a failure.
    Remote(SccgError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Disconnected => write!(f, "connection closed mid-exchange"),
            WireError::Timeout {
                request_id,
                attempts,
            } => write!(
                f,
                "request {request_id} unanswered after {attempts} attempts"
            ),
            WireError::DeadlineExceeded {
                request_id,
                deadline_ms,
            } => write!(
                f,
                "request {request_id} missed its {deadline_ms} ms deadline"
            ),
            WireError::ResetMidStream {
                request_id,
                tiles_received,
            } => write!(
                f,
                "connection reset mid-stream on request {request_id} \
                 after {tiles_received} tile frames"
            ),
            WireError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            WireError::Remote(error) => write!(f, "server error: {error}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Configuration of a [`WireClient`].
///
/// Marked `#[non_exhaustive]`: construct with [`ClientConfig::default`] and
/// the `with_*` builders.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ClientConfig {
    /// How long to wait for the `Ack` before re-sending the query.
    pub ack_timeout: Duration,
    /// Re-sends after the initial attempt before giving up.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff: Duration,
    /// Overall deadline for the response once acked.
    pub response_timeout: Duration,
    /// Send high-water mark (frames) of this client's writer.
    pub send_hwm: usize,
    /// Receive high-water mark (frames) of this client's reader.
    pub recv_hwm: usize,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            ack_timeout: Duration::from_millis(250),
            max_retries: 5,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            response_timeout: Duration::from_secs(60),
            send_hwm: 64,
            recv_hwm: 64,
        }
    }
}

impl ClientConfig {
    /// Returns a copy with a different ack timeout.
    pub fn with_ack_timeout(mut self, ack_timeout: Duration) -> Self {
        self.ack_timeout = ack_timeout;
        self
    }

    /// Returns a copy with a different retry cap.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Returns a copy with a different overall response deadline.
    pub fn with_response_timeout(mut self, response_timeout: Duration) -> Self {
        self.response_timeout = response_timeout;
        self
    }
}

/// The capped exponential backoff before retry number `retry` (0-based):
/// `min(initial_backoff << retry, max_backoff)`.
pub fn backoff_delay(config: &ClientConfig, retry: u32) -> Duration {
    let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
    config
        .initial_backoff
        .checked_mul(factor)
        .map_or(config.max_backoff, |d| d.min(config.max_backoff))
}

/// A streamed or blocking query's resolved result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The response, with `tiles` complete in both modes.
    pub response: WireResponse,
    /// `Tile` frames received before the summary (0 in blocking mode).
    pub tile_frames: usize,
}

/// A connected wire client. One query runs at a time per client (open more
/// clients for concurrency — that is exactly what the load generator does).
pub struct WireClient {
    reader: NonBlockingReader,
    writer: NonBlockingWriter,
    client_id: u64,
    next_request: u64,
    config: ClientConfig,
    /// Frames received while looking for something else (e.g. a response
    /// frame that implied a lost ack), replayed before reading the socket.
    stash: VecDeque<Message>,
}

impl fmt::Debug for WireClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireClient")
            .field("client_id", &self.client_id)
            .finish_non_exhaustive()
    }
}

impl WireClient {
    /// Connects, performs the `Hello`/`HelloAck` handshake, and returns the
    /// ready client.
    pub fn connect(addr: impl ToSocketAddrs, config: ClientConfig) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = NonBlockingReader::spawn(stream.try_clone()?, config.recv_hwm)?;
        let writer = NonBlockingWriter::spawn(stream, config.send_hwm)?;
        writer
            .send(Message::Hello { client_id: 0 }.to_frame())
            .map_err(|_| WireError::Disconnected)?;
        let deadline = Instant::now() + Duration::from_secs(5);
        let client_id = loop {
            let left =
                deadline
                    .checked_duration_since(Instant::now())
                    .ok_or(WireError::Timeout {
                        request_id: 0,
                        attempts: 1,
                    })?;
            match reader.recv_timeout(left.min(Duration::from_millis(50))) {
                PopTimeout::Item(frame) => match Message::of_frame(&frame) {
                    Ok(Message::HelloAck { client_id }) => break client_id,
                    Ok(_) => {}
                    Err(e) => return Err(WireError::Protocol(e.to_string())),
                },
                PopTimeout::TimedOut => {}
                PopTimeout::Closed => return Err(WireError::Disconnected),
            }
        };
        Ok(WireClient {
            reader,
            writer,
            client_id,
            next_request: 1,
            config,
            stash: VecDeque::new(),
        })
    }

    /// The id the server knows this client by.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// Runs a query in blocking mode: one summary frame, tile list inline.
    pub fn query_blocking(&mut self, spec: &WireRequestSpec) -> Result<QueryOutcome, WireError> {
        self.query(spec, false, |_, _| {})
    }

    /// Runs a query in streaming mode: `on_tile(position, tile)` fires for
    /// every tile frame as it arrives (before the summary), and the returned
    /// outcome's `tiles` list is reassembled in merge order.
    pub fn query_streaming(
        &mut self,
        spec: &WireRequestSpec,
        on_tile: impl FnMut(u64, &WireTile),
    ) -> Result<QueryOutcome, WireError> {
        self.query(spec, true, on_tile)
    }

    /// Fetches the server's telemetry snapshot (service counters plus the
    /// scheduler's placement counters), bit-identical to the in-process
    /// [`sccg_serve::ServiceStats`] it was captured from.
    pub fn stats(&mut self) -> Result<WireStats, WireError> {
        self.writer
            .send(Message::StatsRequest.to_frame())
            .map_err(|_| WireError::Disconnected)?;
        let deadline = Instant::now() + self.config.response_timeout;
        loop {
            let left =
                deadline
                    .checked_duration_since(Instant::now())
                    .ok_or(WireError::Timeout {
                        request_id: 0,
                        attempts: 1,
                    })?;
            match self.next_message(left.min(Duration::from_millis(100))) {
                // Anything else is a stale frame of an earlier (retried)
                // request; keep draining until the stats frame arrives.
                PopTimeout::Item(message) => {
                    if let Message::Stats { stats } = message? {
                        return Ok(stats);
                    }
                }
                PopTimeout::TimedOut => {}
                PopTimeout::Closed => return Err(WireError::Disconnected),
            }
        }
    }

    fn next_message(&mut self, timeout: Duration) -> PopTimeout<Result<Message, WireError>> {
        if let Some(message) = self.stash.pop_front() {
            return PopTimeout::Item(Ok(message));
        }
        match self.reader.recv_timeout(timeout) {
            PopTimeout::Item(frame) => PopTimeout::Item(
                Message::of_frame(&frame).map_err(|e| WireError::Protocol(e.to_string())),
            ),
            PopTimeout::TimedOut => PopTimeout::TimedOut,
            PopTimeout::Closed => PopTimeout::Closed,
        }
    }

    /// Phase 1: send (and re-send with backoff) until the server
    /// acknowledges the request. A response frame for this request counts as
    /// an implicit ack and is stashed for phase 2.
    ///
    /// When the query carries a deadline (`expiry`), the total retry budget
    /// is capped by it: the first send always goes out (so the server gets
    /// to report its own typed expiry through the wire), but no re-send is
    /// scheduled past the deadline — expiry surfaces as
    /// [`WireError::DeadlineExceeded`] instead of burning the full retry
    /// ladder against a query the server would refuse anyway.
    fn send_until_acked(
        &mut self,
        request_id: u64,
        query: &Message,
        expiry: Option<(Instant, u64)>,
    ) -> Result<u32, WireError> {
        let mut attempts: u32 = 0;
        loop {
            self.writer
                .send(query.to_frame())
                .map_err(|_| WireError::Disconnected)?;
            attempts += 1;
            let deadline = cap_instant(Instant::now() + self.config.ack_timeout, expiry);
            loop {
                let left = match deadline.checked_duration_since(Instant::now()) {
                    Some(left) if !left.is_zero() => left,
                    _ => break, // ack window elapsed: retry
                };
                match self.next_message(left) {
                    PopTimeout::Item(message) => match message? {
                        Message::Ack { request_id: rid } if rid == request_id => {
                            return Ok(attempts)
                        }
                        message @ (Message::Tile { .. }
                        | Message::Summary { .. }
                        | Message::Error { .. })
                            if message_request_id(&message) == Some(request_id) =>
                        {
                            // The response outran the ack bookkeeping: keep
                            // the frame for phase 2.
                            self.stash.push_back(message);
                            return Ok(attempts);
                        }
                        // Stale frames of earlier (retried) requests.
                        _ => {}
                    },
                    PopTimeout::TimedOut => break,
                    PopTimeout::Closed => return Err(WireError::Disconnected),
                }
            }
            if attempts > self.config.max_retries {
                return Err(WireError::Timeout {
                    request_id,
                    attempts,
                });
            }
            let backoff = backoff_delay(&self.config, attempts - 1);
            if let Some((at, deadline_ms)) = expiry {
                if Instant::now() + backoff >= at {
                    return Err(WireError::DeadlineExceeded {
                        request_id,
                        deadline_ms,
                    });
                }
            }
            std::thread::sleep(backoff);
        }
    }

    fn query(
        &mut self,
        spec: &WireRequestSpec,
        streaming: bool,
        mut on_tile: impl FnMut(u64, &WireTile),
    ) -> Result<QueryOutcome, WireError> {
        let request_id = self.next_request;
        self.next_request += 1;
        let query = Message::Query {
            request_id,
            streaming,
            spec: spec.clone(),
        };
        // The deadline clock starts at submission; the expiry instant caps
        // both the ack retries and the response wait below.
        let expiry = spec
            .deadline_ms
            .map(|ms| (Instant::now() + Duration::from_millis(ms), ms));
        self.send_until_acked(request_id, &query, expiry)?;

        // Phase 2: consume tiles until the terminal frame. The wait is
        // bounded by the response timeout, or — when the query carries a
        // deadline — by the deadline plus one ack window of grace, giving
        // the server's own typed expiry frame time to arrive first (either
        // way the caller sees the same `DeadlineExceeded` variant).
        let graced = expiry.map(|(at, ms)| (at + self.config.ack_timeout, ms));
        let response_cap = Instant::now() + self.config.response_timeout;
        let deadline = cap_instant(response_cap, graced);
        let mut tiles: Vec<(u64, WireTile)> = Vec::new();
        loop {
            let left = match deadline.checked_duration_since(Instant::now()) {
                Some(left) if !left.is_zero() => left,
                _ => {
                    return Err(match graced {
                        Some((at, deadline_ms)) if at <= response_cap => {
                            WireError::DeadlineExceeded {
                                request_id,
                                deadline_ms,
                            }
                        }
                        _ => WireError::Timeout {
                            request_id,
                            attempts: 1,
                        },
                    })
                }
            };
            match self.next_message(left.min(Duration::from_millis(100))) {
                PopTimeout::Item(message) => match message? {
                    Message::Tile {
                        request_id: rid,
                        position,
                        tile,
                    } if rid == request_id => {
                        on_tile(position, &tile);
                        tiles.push((position, tile));
                    }
                    Message::Summary {
                        request_id: rid,
                        tiles_included,
                        mut response,
                    } if rid == request_id => {
                        let tile_frames = if tiles_included { 0 } else { tiles.len() };
                        if !tiles_included {
                            response.tiles = assemble_tiles(tiles, response.shards)?;
                        }
                        return Ok(QueryOutcome {
                            response,
                            tile_frames,
                        });
                    }
                    Message::Error {
                        request_id: rid,
                        failure,
                    } if rid == request_id => {
                        return Err(match failure.to_error() {
                            SccgError::DeadlineExceeded { deadline_ms } => {
                                WireError::DeadlineExceeded {
                                    request_id,
                                    deadline_ms,
                                }
                            }
                            error => WireError::Remote(error),
                        });
                    }
                    // Stale frames of earlier requests, duplicate acks.
                    _ => {}
                },
                PopTimeout::TimedOut => {}
                // The request was acked, so the exchange was mid-result when
                // the socket died: that is a reset, not a failure to connect.
                PopTimeout::Closed => {
                    return Err(WireError::ResetMidStream {
                        request_id,
                        tiles_received: tiles.len(),
                    })
                }
            }
        }
    }
}

/// Caps `deadline` by an optional expiry instant (the `u64` rides along as
/// the deadline's millisecond value for error reporting).
fn cap_instant(deadline: Instant, expiry: Option<(Instant, u64)>) -> Instant {
    match expiry {
        Some((at, _)) => deadline.min(at),
        None => deadline,
    }
}

fn message_request_id(message: &Message) -> Option<u64> {
    match message {
        Message::Query { request_id, .. }
        | Message::Ack { request_id }
        | Message::Tile { request_id, .. }
        | Message::Summary { request_id, .. }
        | Message::Error { request_id, .. } => Some(*request_id),
        Message::Hello { .. }
        | Message::HelloAck { .. }
        | Message::StatsRequest
        | Message::Stats { .. } => None,
    }
}

/// Places streamed tiles into merge order by their `position`.
fn assemble_tiles(received: Vec<(u64, WireTile)>, shards: u64) -> Result<Vec<WireTile>, WireError> {
    let mut slots: Vec<Option<WireTile>> = (0..shards).map(|_| None).collect();
    for (position, tile) in received {
        let slot = slots
            .get_mut(position as usize)
            .ok_or_else(|| WireError::Protocol(format!("tile position {position} out of range")))?;
        if slot.replace(tile).is_some() {
            return Err(WireError::Protocol(format!(
                "tile position {position} delivered twice"
            )));
        }
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or_else(|| WireError::Protocol(format!("tile {i} never arrived"))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates_at_the_cap() {
        let config = ClientConfig::default()
            .with_max_retries(10)
            .with_ack_timeout(Duration::from_millis(1));
        let delays: Vec<u128> = (0..7)
            .map(|retry| backoff_delay(&config, retry).as_millis())
            .collect();
        assert_eq!(delays, vec![25, 50, 100, 200, 400, 400, 400]);
        // Astronomical retry counts must not overflow.
        assert_eq!(backoff_delay(&config, 63), Duration::from_millis(400));
        assert_eq!(backoff_delay(&config, u32::MAX), Duration::from_millis(400));
    }

    #[test]
    fn cap_instant_takes_the_earlier_bound_and_ignores_none() {
        let now = Instant::now();
        let late = now + Duration::from_secs(60);
        let early = now + Duration::from_secs(1);
        assert_eq!(cap_instant(late, None), late);
        assert_eq!(cap_instant(late, Some((early, 1_000))), early);
        assert_eq!(cap_instant(early, Some((late, 60_000))), early);
    }

    #[test]
    fn failure_variants_render_distinct_messages() {
        let deadline = WireError::DeadlineExceeded {
            request_id: 7,
            deadline_ms: 250,
        };
        assert_eq!(deadline.to_string(), "request 7 missed its 250 ms deadline");
        let reset = WireError::ResetMidStream {
            request_id: 9,
            tiles_received: 3,
        };
        assert_eq!(
            reset.to_string(),
            "connection reset mid-stream on request 9 after 3 tile frames"
        );
    }

    #[test]
    fn assemble_tiles_orders_by_position_and_rejects_defects() {
        let tile = |n: u64| WireTile {
            tile: n,
            engine: 0,
            backend: String::new(),
            candidate_pairs: 0,
            summary: crate::wire::WireSummary {
                similarity_bits: 0,
                intersecting_pairs: 0,
                candidate_pairs: 0,
                total_intersection_area: 0,
                total_union_area: 0,
            },
        };
        let assembled =
            assemble_tiles(vec![(1, tile(11)), (0, tile(10))], 2).expect("both slots fill");
        assert_eq!(assembled[0].tile, 10);
        assert_eq!(assembled[1].tile, 11);
        assert!(
            assemble_tiles(vec![(2, tile(0))], 2).is_err(),
            "out of range"
        );
        assert!(
            assemble_tiles(vec![(0, tile(0)), (0, tile(0))], 1).is_err(),
            "duplicate position"
        );
        assert!(
            assemble_tiles(vec![(0, tile(0))], 2).is_err(),
            "missing tile"
        );
    }
}
