//! Failure-containment integration tests: engine supervision under
//! injected kills, typed deadline expiry, and crash-safe streaming
//! registration — the serving layer's end of the PR's fault-injection
//! harness.

use sccg::pixelbox::AggregationDevice;
use sccg::{EngineConfig, FaultInjector, FaultPlan, JaccardSummary, SccgError};
use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_geometry::text::write_polygon_file;
use sccg_serve::prelude::*;
use sccg_serve::ServiceConfig;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn dataset(tiles: u32, seed: u64) -> sccg_datagen::Dataset {
    generate_dataset(&DatasetSpec {
        name: "fault-test".into(),
        tiles,
        polygons_per_tile: 30,
        tile_size: 512,
        seed,
        nucleus_radius: 6,
    })
}

fn register(store: &SlideStore, dataset: &sccg_datagen::Dataset) -> (SlideId, SlideId) {
    let first = store.register_slide(
        "result-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "result-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );
    (first, second)
}

/// The fault-free twin: the same query on an identical service without an
/// injector, giving the bit-exact expected response.
fn fault_free_summary(data: &sccg_datagen::Dataset) -> (JaccardSummary, Vec<JaccardSummary>) {
    let store = SlideStore::new();
    let (first, second) = register(&store, data);
    let service = ComparisonService::new(
        store,
        ServiceConfig::default().with_engines(vec![
            EngineConfig::default().with_device(AggregationDevice::Cpu),
            EngineConfig::default().with_device(AggregationDevice::Cpu),
        ]),
    )
    .unwrap();
    let response = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    let tiles = response.tiles.iter().map(|t| t.summary).collect();
    (response.summary, tiles)
}

/// Satellite (a): a worker killed mid-shard hands its shard back — the
/// query completes bit-identically on the survivor, the supervisor records
/// the death and the re-dispatch, and nothing hangs.
#[test]
fn killed_engine_redispatches_its_shard_and_responses_stay_bit_identical() {
    let data = dataset(8, 4242);
    let (expected_summary, expected_tiles) = fault_free_summary(&data);

    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let injector = Arc::new(FaultInjector::new(FaultPlan::new(7).kill_engine(0, 1)));
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default().with_device(AggregationDevice::Cpu),
                EngineConfig::default().with_device(AggregationDevice::Cpu),
            ])
            .with_failure_threshold(1)
            .with_revival_cooldown(Duration::from_secs(3600))
            .with_cache_capacity(0)
            .with_faults(Arc::clone(&injector)),
    )
    .unwrap();

    // The kill fires the first time worker 0 pops a shard. Repeat queries
    // until it has (virtually always the first one: both workers pull from
    // the same 8-shard queue), asserting bit-identity on every response.
    let mut killed = false;
    for round in 0..50 {
        let response = service
            .submit(QueryRequest::new(first, second))
            .unwrap()
            .wait()
            .unwrap_or_else(|e| panic!("round {round}: query must survive the kill: {e}"));
        assert_eq!(response.summary, expected_summary, "round {round}");
        let tiles: Vec<JaccardSummary> = response.tiles.iter().map(|t| t.summary).collect();
        assert_eq!(tiles, expected_tiles, "round {round}");
        if service.stats().redispatches >= 1 {
            killed = true;
            break;
        }
    }
    assert!(
        killed,
        "worker 0 never popped a shard in 50 whole-slide runs"
    );

    let stats = service.stats();
    assert_eq!(injector.stats().engine_kills, 1);
    assert!(stats.redispatches >= 1);
    let health = &stats.engines[0];
    assert!(!health.alive, "threshold 1: one kill is death");
    assert_eq!(health.total_failures, 1);
    assert_eq!(health.redispatched_shards, stats.redispatches);
    assert!(stats.engines[1].alive, "the survivor is unaffected");
}

/// When the *last* eligible engine dies, every shard — queued or in hand —
/// fails typed and the query resolves instead of hanging on its merge
/// barrier.
#[test]
fn death_of_the_only_eligible_engine_fails_the_query_typed_never_hangs() {
    let data = dataset(6, 99);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let injector = Arc::new(FaultInjector::new(
        FaultPlan::new(1).kill_engine(0, u64::MAX),
    ));
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default().with_device(AggregationDevice::Cpu)
            ])
            .with_failure_threshold(1)
            .with_revival_cooldown(Duration::from_secs(3600))
            .with_faults(injector),
    )
    .unwrap();

    let err = service
        .submit(QueryRequest::new(first, second).on_device(AggregationDevice::Cpu))
        .unwrap()
        .wait()
        .expect_err("no engine left to serve the query");
    assert_eq!(
        err,
        SccgError::NoEligibleEngine {
            device: AggregationDevice::Cpu
        }
    );
    let stats = service.stats();
    assert!(!stats.engines[0].alive);
    assert_eq!(stats.redispatches, 0, "nowhere to re-dispatch to");
    assert_eq!(stats.in_flight, 0, "the admission slot was returned");

    // The service still answers: an unpinned query fails typed too (same
    // dead pool), rather than wedging admission.
    let err = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .expect_err("pool is dead");
    assert!(
        matches!(&err, SccgError::Internal { detail } if detail.contains("no live engine")),
        "{err:?}"
    );
}

/// An expired deadline fails the query with the typed error through both
/// the blocking and the streaming path, and abandoned shards compute
/// nothing.
#[test]
fn expired_deadline_fails_typed_through_blocking_and_streaming_paths() {
    let data = dataset(4, 777);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default().with_device(AggregationDevice::Cpu)
            ])
            .with_cache_capacity(0),
    )
    .unwrap();

    // A zero deadline is already expired when the first worker pops a
    // shard — the deterministic test vehicle (no real clock is raced).
    let err = service
        .submit(QueryRequest::new(first, second).with_deadline(Duration::ZERO))
        .unwrap()
        .wait()
        .expect_err("deadline already expired");
    assert_eq!(err, SccgError::DeadlineExceeded { deadline_ms: 0 });
    assert_eq!(
        service.stats().backend_batches,
        0,
        "abandoned shards never compute"
    );

    let mut tile_events = 0;
    let err = service
        .submit_streaming(QueryRequest::new(first, second).with_deadline(Duration::ZERO))
        .unwrap()
        .wait_with(|_, _| tile_events += 1)
        .expect_err("streaming deadline expiry");
    assert_eq!(err, SccgError::DeadlineExceeded { deadline_ms: 0 });
    assert_eq!(tile_events, 0);

    // Without a deadline the same service still serves normally.
    let ok = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(ok.shards, 4);
    assert_eq!(service.stats().in_flight, 0);
}

fn fault_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sccg-serve-fault-tests")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tile_texts(count: u64) -> Vec<String> {
    (0..count)
        .map(|i| {
            let mut records =
                sccg_geometry::text::parse_polygon_file("0 4 0 0 10 0 10 10 0 10").unwrap();
            records[0].id = i;
            write_polygon_file(&records)
        })
        .collect()
}

/// The PR's crash-safety acceptance test: an injected write failure at
/// *every* successive write operation of a streaming registration leaves no
/// registry entry, no final slide file, and no partial temp file behind.
#[test]
fn write_failure_at_any_op_leaves_no_registry_entry_and_no_file() {
    let dir = fault_dir("crash-safety");
    let texts = tile_texts(3);
    let mut op = 0u64;
    loop {
        assert!(op < 64, "write-op space should have been exhausted by now");
        let injector = Arc::new(FaultInjector::new(FaultPlan::new(0).fail_write_op(op)));
        let store = SlideStore::with_spill_and_faults(&dir, 2, Some(injector)).unwrap();
        match store.register_slide_streaming("victim", texts.clone()) {
            Err(err) => {
                assert!(matches!(err, SccgError::Storage { .. }), "op {op}: {err:?}");
                assert_eq!(store.len(), 0, "op {op}: no registry entry");
                let leftovers: Vec<_> = std::fs::read_dir(&dir)
                    .unwrap()
                    .map(|e| e.unwrap().path())
                    .collect();
                assert!(
                    leftovers.is_empty(),
                    "op {op}: neither a final nor a partial file may survive: {leftovers:?}"
                );
                op += 1;
            }
            Ok(id) => {
                // `op` is past the registration's last write: it succeeded,
                // the file is complete, and every tile reads back.
                assert!(op >= texts.len() as u64, "op {op} cannot succeed early");
                let info = store.slide(id).unwrap();
                assert!(info.on_disk);
                assert_eq!(info.tiles, texts.len());
                for (index, text) in texts.iter().enumerate() {
                    let fetched = store.tile(TileId { slide: id, index }).unwrap();
                    assert_eq!(&write_polygon_file(&fetched), text);
                }
                break;
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Startup recovery: orphaned `*.partial` temp files from a crashed writer
/// are swept — explicitly via [`SlideStore::recover`] and implicitly by the
/// spilling constructors — while completed slide files survive.
#[test]
fn recovery_sweeps_orphaned_partials_and_keeps_complete_files() {
    let dir = fault_dir("recover");
    std::fs::create_dir_all(&dir).unwrap();
    let orphan = dir.join("slide-000007.sccgt.partial");
    let complete = dir.join("slide-000001.sccgt");
    std::fs::write(&orphan, b"half a slide").unwrap();
    std::fs::write(&complete, b"pretend finished file").unwrap();

    let removed = SlideStore::recover(&dir).unwrap();
    assert_eq!(removed, vec![orphan.clone()]);
    assert!(!orphan.exists());
    assert!(complete.exists(), "completed files are never touched");

    // A missing directory is an empty sweep, not an error.
    assert_eq!(
        SlideStore::recover(dir.join("does-not-exist")).unwrap(),
        Vec::<PathBuf>::new()
    );

    // The constructor sweeps too: a fresh orphan disappears at startup.
    std::fs::write(&orphan, b"crashed again").unwrap();
    let store = SlideStore::with_spill(&dir, 2).unwrap();
    assert!(!orphan.exists());
    assert!(complete.exists());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
