//! Integration tests of the serving layer's three core invariants —
//! determinism under sharding, response caching, admission control — plus
//! the typed error route and the pooled hybrid split controller.

use sccg::pixelbox::{AggregationDevice, SplitConfig, Variant};
use sccg::{CrossComparison, EngineConfig, JaccardAccumulator, JaccardSummary, SccgError};
use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_serve::prelude::*;

/// A small deterministic dataset and its two "slides" (segmentation results).
fn dataset(tiles: u32, polygons: u32, seed: u64) -> sccg_datagen::Dataset {
    generate_dataset(&DatasetSpec {
        name: "serve-test".into(),
        tiles,
        polygons_per_tile: polygons,
        tile_size: 512,
        seed,
        nucleus_radius: 6,
    })
}

fn register(store: &SlideStore, dataset: &sccg_datagen::Dataset) -> (SlideId, SlideId) {
    let first = store.register_slide(
        "result-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "result-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );
    (first, second)
}

/// Sequential single-engine baseline: per-tile accumulators merged in tile
/// order — the exact structure the service's shard merge must reproduce
/// bit-for-bit.
fn sequential_baseline(dataset: &sccg_datagen::Dataset) -> (JaccardSummary, Vec<JaccardSummary>) {
    let engine = CrossComparison::new(EngineConfig::default());
    let mut total = JaccardAccumulator::new();
    let mut per_tile = Vec::new();
    for tile in &dataset.tiles {
        let report = engine.compare_records(&tile.first, &tile.second);
        let mut acc = JaccardAccumulator::new();
        for areas in &report.pair_areas {
            acc.add_pair(*areas);
        }
        per_tile.push(acc.summary());
        total.merge(&acc);
    }
    (total.summary(), per_tile)
}

/// The PR's acceptance test: ≥4 concurrent whole-slide queries through one
/// service sharded across ≥2 engines with mixed devices, asserting
/// (a) bit-identical `J'` and per-tile areas versus the sequential
/// single-engine baseline, (b) a cache hit on resubmission with zero new
/// backend batches (and zero new simulated-GPU launches), and (c) admission
/// control capping observed in-flight queries at the configured bound.
#[test]
fn concurrent_sharded_queries_are_deterministic_cached_and_admission_bounded() {
    let data = dataset(8, 40, 2101);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let (expected_summary, expected_tiles) = sequential_baseline(&data);

    let bound = 2;
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default(), // Gpu
                EngineConfig::default().with_device(AggregationDevice::Cpu),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
            ])
            .with_max_in_flight(bound),
    )
    .expect("service starts");

    // (a) Four concurrent whole-slide queries: one free to use any engine,
    // three pinned to distinct devices — so the run provably exercises at
    // least three engines on mixed substrates.
    let preferences = [
        None,
        Some(AggregationDevice::Cpu),
        Some(AggregationDevice::Gpu),
        Some(AggregationDevice::Hybrid),
    ];
    let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = preferences
            .iter()
            .map(|&device| {
                let service = &service;
                scope.spawn(move || {
                    let mut request = QueryRequest::new(first, second);
                    if let Some(device) = device {
                        request = request.on_device(device);
                    }
                    service
                        .submit(request)
                        .expect("submit succeeds")
                        .wait()
                        .expect("query resolves")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (response, &device) in responses.iter().zip(&preferences) {
        assert_eq!(response.shards, data.tiles.len(), "{device:?}");
        assert!(!response.cache_hit, "{device:?}");
        // Bit-identical whole-query summary (exact f64 + i64 equality).
        assert_eq!(response.summary, expected_summary, "{device:?}");
        assert_eq!(response.similarity(), expected_summary.similarity);
        // Bit-identical per-tile areas, in tile order.
        let tile_summaries: Vec<JaccardSummary> =
            response.tiles.iter().map(|t| t.summary).collect();
        assert_eq!(tile_summaries, expected_tiles, "{device:?}");
        // A pinned query was served exclusively by engines on that device.
        if let Some(device) = device {
            for tile in &response.tiles {
                assert_eq!(service.engine_devices()[tile.engine], device);
            }
        }
    }

    // The pinned queries force ≥3 distinct engines (mixed devices) to have
    // computed shards.
    let stats = service.stats();
    let engines_used = stats.shards_per_engine.iter().filter(|&&n| n > 0).count();
    assert!(
        engines_used >= 3,
        "shards per engine: {:?}",
        stats.shards_per_engine
    );
    assert_eq!(
        stats.backend_batches,
        (preferences.len() * data.tiles.len()) as u64
    );

    // (b) Resubmitting answers from the cache: no new backend batches, no
    // new simulated-GPU launches.
    let launches_before = service.device().stats().launches;
    let batches_before = service.stats().backend_batches;
    let repeat = service
        .submit(QueryRequest::new(first, second))
        .expect("resubmit succeeds")
        .wait()
        .expect("cached query resolves");
    assert!(repeat.cache_hit);
    assert_eq!(repeat.summary, expected_summary);
    assert_eq!(repeat.tiles.len(), data.tiles.len());
    assert_eq!(service.stats().backend_batches, batches_before);
    assert_eq!(service.device().stats().launches, launches_before);

    // (c) Admission control capped concurrency at the bound.
    let stats = service.stats();
    assert!(
        stats.peak_in_flight <= bound,
        "peak {} exceeded bound {bound}",
        stats.peak_in_flight
    );
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.completed, preferences.len() as u64);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.submitted, preferences.len() as u64 + 1);
}

#[test]
fn pooled_controller_aggregates_observations_across_hybrid_engines() {
    let data = dataset(8, 40, 777);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default()
                    .with_device(AggregationDevice::Hybrid)
                    .with_cpu_workers(1),
                EngineConfig::default()
                    .with_device(AggregationDevice::Hybrid)
                    .with_cpu_workers(1),
            ])
            .with_split(SplitConfig::adaptive(0.5).with_warmup_batches(2)),
    )
    .expect("service starts");

    let controller = service.split_controller().expect("hybrid pool").clone();
    assert_eq!(controller.batches_recorded(), 0);

    let response = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(response.shards, 8);

    // Every hybrid shard — whichever of the two engines computed it — fed
    // the one pooled controller: the fleet warmed up together and passed
    // the warm-up threshold a per-engine controller would still be under.
    assert_eq!(controller.batches_recorded(), 8);
    let trace = service.split_trace().expect("pooled trace");
    assert_eq!(trace.len(), 8);
    assert!(trace
        .samples()
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.next_fraction)));
    let stats = service.stats();
    assert_eq!(stats.shards_per_engine.iter().sum::<u64>(), 8);
}

#[test]
fn overload_rejection_and_priority_lanes() {
    // A single 1-worker CPU engine, admission bound 1: a heavy low-priority
    // query occupies the only slot while we probe admission and priority.
    let data = dataset(16, 120, 5005);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![EngineConfig::default()
                .with_device(AggregationDevice::Cpu)
                .with_cpu_workers(1)])
            .with_max_in_flight(1)
            .with_cache_capacity(0),
    )
    .expect("service starts");

    let heavy = service
        .submit(
            QueryRequest::new(first, second)
                .priority(QueryPriority::Low)
                .on_device(AggregationDevice::Cpu),
        )
        .expect("heavy query admitted");

    // The slot is taken: a non-blocking submission is rejected with the
    // typed overload error instead of queueing unboundedly.
    let err = service
        .try_submit(QueryRequest::new(first, second).tiles(vec![0]))
        .expect_err("admission bound reached");
    assert_eq!(
        err,
        SccgError::Overloaded {
            in_flight: 1,
            bound: 1
        }
    );

    let heavy = heavy.wait().expect("heavy query resolves");
    assert_eq!(heavy.shards, 16);
    let stats = service.stats();
    assert_eq!(stats.peak_in_flight, 1);
    assert_eq!(stats.in_flight, 0);

    // With the slot free again, a high-priority query is admitted and
    // resolves normally.
    let high = service
        .submit(
            QueryRequest::new(first, second)
                .tiles(vec![3, 1])
                .priority(QueryPriority::High),
        )
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(high.shards, 2);
    assert_eq!(high.tiles[0].tile, 3, "tiles merge in request order");
    assert_eq!(high.tiles[1].tile, 1);
}

#[test]
fn request_validation_returns_typed_errors() {
    let data = dataset(3, 20, 11);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let short = store.register_slide(
        "short",
        data.tiles
            .iter()
            .take(2)
            .map(|t| t.second.clone())
            .collect(),
    );
    let service = ComparisonService::new(
        store.clone(),
        ServiceConfig::default().with_engines(vec![
            EngineConfig::default().with_device(AggregationDevice::Cpu)
        ]),
    )
    .expect("service starts");

    // Unknown slide.
    let bogus_err = service
        .submit(QueryRequest::new(first, SlideId::from_raw(99)))
        .expect_err("unknown slide");
    assert_eq!(bogus_err, SccgError::UnknownSlide { slide: 99 });

    // Whole-slide over mismatched tile counts.
    let err = service
        .submit(QueryRequest::new(first, short))
        .expect_err("tile count mismatch");
    assert_eq!(
        err,
        SccgError::TileCountMismatch {
            first: 3,
            second: 2
        }
    );

    // Out-of-range tile subset.
    let err = service
        .submit(QueryRequest::new(first, second).tiles(vec![0, 7]))
        .expect_err("unknown tile");
    assert_eq!(
        err,
        SccgError::UnknownTile {
            slide: first.value(),
            tile: 7,
            tiles: 3
        }
    );

    // Duplicate tile selection.
    let err = service
        .submit(QueryRequest::new(first, second).tiles(vec![1, 1]))
        .expect_err("duplicate tile");
    assert!(matches!(err, SccgError::InvalidRequest { .. }));

    // Device preference with no eligible engine.
    let err = service
        .submit(QueryRequest::new(first, second).on_device(AggregationDevice::Gpu))
        .expect_err("no GPU engine in the pool");
    assert_eq!(
        err,
        SccgError::NoEligibleEngine {
            device: AggregationDevice::Gpu
        }
    );

    // Empty engine pool is rejected at construction.
    let err = ComparisonService::new(store, ServiceConfig::default().with_engines(Vec::new()))
        .expect_err("no engines");
    assert_eq!(err, SccgError::EmptyEnginePool);
}

#[test]
fn empty_queries_resolve_immediately_with_zero_similarity() {
    let store = SlideStore::new();
    let first = store.register_slide("empty-a", Vec::new());
    let second = store.register_slide("empty-b", Vec::new());
    let service = ComparisonService::new(store, ServiceConfig::default()).unwrap();

    // A whole-slide query over empty slides has nothing to shard: the
    // guarded similarity accessor reports 0.0, never NaN.
    let response = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(response.shards, 0);
    assert_eq!(response.similarity(), 0.0);
    assert!(response.similarity().is_finite());

    // Same for an explicitly empty tile selection.
    let response = service
        .submit(QueryRequest::new(first, second).tiles(Vec::new()))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(response.similarity(), 0.0);
    // Neither empty query consumed an execution slot or touched a backend.
    let stats = service.stats();
    assert_eq!(stats.backend_batches, 0);
    assert_eq!(stats.peak_in_flight, 0);
}

#[test]
fn variant_overrides_cache_separately() {
    let data = dataset(2, 30, 404);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(store, ServiceConfig::default()).unwrap();

    let full = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!full.cache_hit);

    // A different PixelBox variant is a different cache key: it computes.
    let nosep = service
        .submit(QueryRequest::new(first, second).variant(Variant::NoSep))
        .unwrap()
        .wait()
        .unwrap();
    assert!(!nosep.cache_hit);
    // The variants are alternative exact algorithms: same similarity.
    assert_eq!(nosep.summary, full.summary);

    // Repeating each now hits its own cache entry.
    assert!(
        service
            .submit(QueryRequest::new(first, second))
            .unwrap()
            .wait()
            .unwrap()
            .cache_hit
    );
    assert!(
        service
            .submit(QueryRequest::new(first, second).variant(Variant::NoSep))
            .unwrap()
            .wait()
            .unwrap()
            .cache_hit
    );
}

#[test]
fn responses_render_as_json() {
    let data = dataset(2, 25, 88);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(store, ServiceConfig::default()).unwrap();
    let response = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();

    let json = response.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"similarity\":"));
    assert!(json.contains("\"cache_hit\":false"));
    assert!(json.contains("\"tiles\":["));

    let stats_json = service.stats().to_json();
    assert!(stats_json.contains("\"backend_batches\":2"));

    if let Some(trace) = service.split_trace() {
        let trace_json = sccg_serve::json::split_trace_to_json(&trace);
        assert!(trace_json.starts_with('[') && trace_json.ends_with(']'));
    }
}

/// A pool larger than its thread count still serves every query: idle
/// worker tasks are suspended futures on the job queue, not blocked OS
/// threads, so five mixed-device engines make progress on a single executor
/// thread (serialized compute, unchanged results).
#[test]
fn engine_pool_larger_than_executor_thread_pool_still_serves() {
    let data = dataset(6, 30, 512);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let (expected_summary, _) = sequential_baseline(&data);

    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![
                EngineConfig::default(),
                EngineConfig::default().with_device(AggregationDevice::Cpu),
                EngineConfig::default().with_device(AggregationDevice::Cpu),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
            ])
            .with_executor_threads(1)
            .with_cache_capacity(0),
    )
    .expect("service starts");

    // Concurrent submissions from multiple client threads, including
    // device-pinned ones that only a subset of the pool may serve.
    let summaries: Vec<JaccardSummary> = std::thread::scope(|scope| {
        let handles: Vec<_> = [
            None,
            Some(AggregationDevice::Cpu),
            Some(AggregationDevice::Hybrid),
            None,
        ]
        .into_iter()
        .map(|device| {
            let service = &service;
            scope.spawn(move || {
                let mut request = QueryRequest::new(first, second);
                if let Some(device) = device {
                    request = request.on_device(device);
                }
                service.submit(request).unwrap().wait().unwrap().summary
            })
        })
        .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for summary in summaries {
        assert_eq!(summary, expected_summary);
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.backend_batches, 4 * data.tiles.len() as u64);
}

/// The concurrent-overload contract of the admission path, probed while the
/// semaphore is genuinely full:
///
/// * cache hits return ready without taking an execution slot;
/// * `try_submit` fails with `Overloaded` and leaks no permit;
/// * every blocked `submit` (more waiters than slots) eventually wakes
///   through the `notify_one` release chain and completes.
#[test]
fn full_admission_serves_cache_hits_rejects_try_submit_and_wakes_all_waiters() {
    let data = dataset(12, 100, 7007);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(
        store,
        ServiceConfig::default()
            .with_engines(vec![EngineConfig::default()
                .with_device(AggregationDevice::Cpu)
                .with_cpu_workers(1)])
            .with_max_in_flight(1)
            .with_cache_capacity(8),
    )
    .expect("service starts");

    // Prime the cache while the service is idle.
    let cached_request = || QueryRequest::new(first, second).tiles(vec![0]);
    let primed = service.submit(cached_request()).unwrap().wait().unwrap();
    assert!(!primed.cache_hit);

    // Occupy the only slot with a whole-slide query.
    let heavy = service
        .submit(QueryRequest::new(first, second).priority(QueryPriority::Low))
        .expect("heavy query admitted");

    // try_submit: typed rejection, repeatedly, without consuming anything.
    for _ in 0..3 {
        let err = service
            .try_submit(QueryRequest::new(first, second).tiles(vec![1]))
            .expect_err("semaphore is full");
        assert!(matches!(
            err,
            SccgError::Overloaded {
                in_flight: 1,
                bound: 1
            }
        ));
    }

    // Cache hit: resolves ready *while the semaphore is full*, because the
    // cache check precedes admission.
    let hit = service
        .submit(cached_request())
        .expect("cache hit admitted");
    assert!(hit.is_ready(), "cache hit needs no execution slot");
    assert!(hit.wait().unwrap().cache_hit);
    assert_eq!(
        service.stats().in_flight,
        1,
        "only the heavy query holds a slot"
    );

    // More blocked submitters than slots: all of them must eventually wake
    // and complete once the heavy query (and then each other) release.
    let waiter_summaries: Vec<usize> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=3)
            .map(|tile| {
                let service = &service;
                scope.spawn(move || {
                    service
                        .submit(QueryRequest::new(first, second).tiles(vec![tile]))
                        .unwrap()
                        .wait()
                        .unwrap()
                        .shards
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        waiter_summaries,
        vec![1, 1, 1],
        "every blocked submit completed"
    );
    assert_eq!(heavy.wait().unwrap().shards, 12);

    let stats = service.stats();
    assert_eq!(stats.in_flight, 0, "all slots returned");
    assert_eq!(stats.peak_in_flight, 1, "the bound was never exceeded");
    // Nothing leaked: the slot is immediately grantable again.
    let after = service
        .try_submit(QueryRequest::new(first, second).tiles(vec![4]))
        .expect("slot available after the storm");
    after.wait().expect("post-storm query resolves");
}

/// Streaming submissions deliver one tile event per shard, in completion
/// order, each bit-identical to the final response's corresponding entry,
/// terminated by a finish event carrying the same response `submit` returns.
#[test]
fn streaming_submission_matches_blocking_response_tile_for_tile() {
    let data = dataset(6, 80, 9009);
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(store, ServiceConfig::default().with_cache_capacity(0))
        .expect("service starts");

    let blocking = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();

    let mut events: Vec<(usize, JaccardSummary)> = Vec::new();
    let streamed = service
        .submit_streaming(QueryRequest::new(first, second))
        .expect("streaming submit")
        .wait_with(|position, report| events.push((position, report.summary)))
        .expect("streaming query resolves");

    assert_eq!(events.len(), streamed.tiles.len(), "one event per shard");
    for (position, summary) in &events {
        assert_eq!(
            *summary, streamed.tiles[*position].summary,
            "tile event {position} is bit-identical to the merged response"
        );
    }
    assert_eq!(
        streamed.summary, blocking.summary,
        "merged J' matches blocking"
    );
    assert_eq!(streamed.shards, blocking.shards);

    // Cache hits replay the same event shape.
    let store = SlideStore::new();
    let (first, second) = register(&store, &data);
    let service = ComparisonService::new(store, ServiceConfig::default()).unwrap();
    let warm = service
        .submit_streaming(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    let mut replayed = 0;
    let hit = service
        .submit_streaming(QueryRequest::new(first, second))
        .unwrap()
        .wait_with(|_, _| replayed += 1)
        .unwrap();
    assert!(hit.cache_hit);
    assert_eq!(
        replayed,
        warm.tiles.len(),
        "cache hits replay every tile event"
    );
    assert_eq!(hit.summary, warm.summary);
}
