//! Out-of-core equivalence: a service over disk-backed slides must be
//! indistinguishable — bit-for-bit — from the same service over in-memory
//! slides.
//!
//! Two stores are registered from the same tile texts: one through the
//! classic in-memory path, one through streaming registration onto disk
//! with a residency bound smaller than the slide. Whole-slide queries
//! across CPU/GPU/hybrid device preferences must return bit-identical
//! responses (per-tile areas, engine-agnostic fields, merged `J'`), repeats
//! must replay from each service's cache identically, and the disk service
//! must page within its residency bound the whole time.

use sccg::pixelbox::AggregationDevice;
use sccg::EngineConfig;
use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_geometry::text::write_polygon_file;
use sccg_serve::prelude::*;
use std::path::PathBuf;

const TILES: u32 = 8;
const RESIDENCY_BOUND: usize = 3;

fn dataset() -> sccg_datagen::Dataset {
    generate_dataset(&DatasetSpec {
        name: "storage-test".into(),
        tiles: TILES,
        polygons_per_tile: 24,
        tile_size: 384,
        seed: 41,
        nucleus_radius: 6,
    })
}

fn tile_texts(dataset: &sccg_datagen::Dataset, second: bool) -> Vec<String> {
    dataset
        .tiles
        .iter()
        .map(|t| write_polygon_file(if second { &t.second } else { &t.first }))
        .collect()
}

fn spill_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("sccg-serve-storage-integration")
        .join(format!("{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_over(store: SlideStore) -> ComparisonService {
    // One engine per device preference so pinned queries are satisfiable.
    let config = ServiceConfig::default().with_engines(vec![
        EngineConfig::default().with_device(AggregationDevice::Gpu),
        EngineConfig::default().with_device(AggregationDevice::Cpu),
        EngineConfig::default().with_device(AggregationDevice::Hybrid),
    ]);
    ComparisonService::new(store, config).expect("service starts")
}

/// Strips the engine-assignment fields that legitimately differ between
/// runs (which pool member computed a tile is scheduling, not semantics),
/// keeping everything the paper's determinism argument covers: per-tile
/// areas and summaries, merge order, the merged `J'`.
fn semantic_view(
    response: &QueryResponse,
) -> (
    Vec<(usize, sccg::JaccardSummary, usize)>,
    sccg::JaccardSummary,
    usize,
    bool,
) {
    (
        response
            .tiles
            .iter()
            .map(|t| (t.tile, t.summary, t.candidate_pairs))
            .collect(),
        response.summary,
        response.shards,
        response.cache_hit,
    )
}

#[test]
fn disk_and_memory_paths_answer_bit_identically_across_devices() {
    let data = dataset();
    let first_texts = tile_texts(&data, false);
    let second_texts = tile_texts(&data, true);

    let memory_store = SlideStore::new();
    let mem_first = memory_store
        .register_slide_text("result-a", &first_texts)
        .unwrap();
    let mem_second = memory_store
        .register_slide_text("result-b", &second_texts)
        .unwrap();

    let dir = spill_dir("equivalence");
    let disk_store = SlideStore::with_spill(&dir, RESIDENCY_BOUND).unwrap();
    let disk_first = disk_store
        .register_slide_streaming("result-a", first_texts.clone())
        .unwrap();
    let disk_second = disk_store
        .register_slide_streaming("result-b", second_texts.clone())
        .unwrap();
    assert!(disk_store.slide(disk_first).unwrap().on_disk);
    assert!(disk_store.slide(disk_second).unwrap().on_disk);
    // The dataset is larger than the residency bound, so the pager genuinely
    // pages during the queries below.
    assert!(TILES as usize > RESIDENCY_BOUND);

    let memory_service = service_over(memory_store);
    let disk_service = service_over(disk_store.clone());

    let devices = [
        None,
        Some(AggregationDevice::Cpu),
        Some(AggregationDevice::Gpu),
        Some(AggregationDevice::Hybrid),
    ];
    for device in devices {
        let request = |first, second| {
            let mut r = QueryRequest::new(first, second);
            r.device = device;
            r
        };
        let mem = memory_service
            .submit(request(mem_first, mem_second))
            .unwrap()
            .wait()
            .unwrap();
        let disk = disk_service
            .submit(request(disk_first, disk_second))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            semantic_view(&mem),
            semantic_view(&disk),
            "device {device:?}: disk-backed response diverged"
        );
        assert_eq!(mem.similarity(), disk.similarity());
        assert!(!disk.cache_hit);

        // Replay: both services answer the repeat from their caches, still
        // bit-identical to each other and to the first answer.
        let mem_again = memory_service
            .submit(request(mem_first, mem_second))
            .unwrap()
            .wait()
            .unwrap();
        let disk_again = disk_service
            .submit(request(disk_first, disk_second))
            .unwrap()
            .wait()
            .unwrap();
        assert!(mem_again.cache_hit && disk_again.cache_hit);
        assert_eq!(mem_again.summary, mem.summary);
        assert_eq!(disk_again.summary, disk.summary);
        assert_eq!(semantic_view(&mem_again).0, semantic_view(&disk_again).0);

        // Paging stayed within the residency bound throughout.
        let storage = disk_store.storage_stats();
        assert_eq!(storage.disk_slides, 2);
        assert!(
            storage.resident_tiles <= 2 * RESIDENCY_BOUND,
            "resident {} exceeds bound",
            storage.resident_tiles
        );
    }

    // The service surfaces pager telemetry through its stats.
    let stats = disk_service.stats();
    assert!(stats.resident_tiles <= 2 * RESIDENCY_BOUND);
    assert!(stats.bytes_on_disk > 0);
    assert!(stats.pager_hit_rate >= 0.0 && stats.pager_hit_rate <= 1.0);
    let mem_stats = memory_service.stats();
    assert_eq!(mem_stats.resident_tiles, 0);
    assert_eq!(mem_stats.bytes_on_disk, 0);

    drop(disk_service);
    drop(disk_store);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Streaming queries over a disk-backed store deliver the same per-tile
/// events and final response as the blocking path — faulting through the
/// pager does not disturb the streaming seam.
#[test]
fn streaming_queries_page_from_disk() {
    let data = dataset();
    let dir = spill_dir("streaming");
    let store = SlideStore::with_spill(&dir, RESIDENCY_BOUND).unwrap();
    let first = store
        .register_slide_streaming("a", tile_texts(&data, false))
        .unwrap();
    let second = store
        .register_slide_streaming("b", tile_texts(&data, true))
        .unwrap();
    let service = service_over(store.clone());

    let mut seen = Vec::new();
    let response = service
        .submit_streaming(QueryRequest::new(first, second))
        .unwrap()
        .wait_with(|position, report| seen.push((position, report.clone())))
        .unwrap();
    assert_eq!(seen.len(), TILES as usize);
    for (position, report) in seen {
        assert_eq!(&response.tiles[position], &report);
    }
    assert!(store.storage_stats().resident_tiles <= 2 * RESIDENCY_BOUND);

    drop(service);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}
