//! Placement equivalence: scheduling policy must never change results.
//!
//! The scheduler's whole contract is that placement decides *where and
//! when* a shard runs, never what it computes: each shard's `position`
//! pins its slot in the merge-ordered response, so any enqueue order and
//! any engine assignment folds to the same bits. These properties pin that
//! contract across the axes that could plausibly break it — placement
//! policy (round-robin vs residency-aware), device preference (including
//! pinned queries the policy must not starve), tile subsets (whose
//! response order follows the *request*, not the placement), and backing
//! (in-memory vs disk-backed with a residency bound smaller than the
//! slide, where the residency-aware policy actually reorders and
//! prefetches).

// The vendored proptest shim's `proptest!` macro expands bodies token by
// token; these test bodies are long enough to overflow the default limit.
#![recursion_limit = "1024"]

use proptest::prelude::*;
use sccg::pixelbox::AggregationDevice;
use sccg::EngineConfig;
use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_geometry::text::write_polygon_file;
use sccg_serve::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

const TILES: u32 = 6;
const RESIDENCY_BOUND: usize = 2;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn tile_texts(second: bool) -> Vec<String> {
    let data = generate_dataset(&DatasetSpec {
        name: "placement-test".into(),
        tiles: TILES,
        polygons_per_tile: 16,
        tile_size: 256,
        seed: 53,
        nucleus_radius: 5,
    });
    data.tiles
        .iter()
        .map(|t| write_polygon_file(if second { &t.second } else { &t.first }))
        .collect()
}

/// One service per (policy, backing) corner. Disk stores get their own
/// spill directory (removed with the returned path) and a residency bound
/// smaller than the slide, so paging genuinely happens.
fn service(
    policy: PlacementPolicy,
    on_disk: bool,
) -> (ComparisonService, SlideId, SlideId, Option<PathBuf>) {
    let (store, first, second, dir) = if on_disk {
        let dir = std::env::temp_dir()
            .join("sccg-serve-placement-proptests")
            .join(format!(
                "{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SlideStore::with_spill(&dir, RESIDENCY_BOUND).unwrap();
        let first = store
            .register_slide_streaming("a", tile_texts(false))
            .unwrap();
        let second = store
            .register_slide_streaming("b", tile_texts(true))
            .unwrap();
        (store, first, second, Some(dir))
    } else {
        let store = SlideStore::new();
        let first = store.register_slide_text("a", &tile_texts(false)).unwrap();
        let second = store.register_slide_text("b", &tile_texts(true)).unwrap();
        (store, first, second, None)
    };
    // One engine per device preference so pinned queries are satisfiable,
    // on two executor threads so a prefetcher task can never be starved by
    // a busy worker.
    let config = ServiceConfig::default()
        .with_engines(vec![
            EngineConfig::default().with_device(AggregationDevice::Gpu),
            EngineConfig::default().with_device(AggregationDevice::Cpu),
            EngineConfig::default().with_device(AggregationDevice::Hybrid),
        ])
        .with_executor_threads(2)
        .with_placement(policy);
    (
        ComparisonService::new(store, config).unwrap(),
        first,
        second,
        dir,
    )
}

/// Everything the determinism contract covers: per-tile identity, areas
/// and summaries in merge order, the merged summary, and the exact `J'`
/// bits. Engine assignment (`TileReport::engine`/`backend`) is scheduling,
/// not semantics, and is deliberately excluded.
fn semantic_view(
    response: &QueryResponse,
) -> (
    Vec<(usize, sccg::JaccardSummary, usize)>,
    sccg::JaccardSummary,
    usize,
    u64,
) {
    (
        response
            .tiles
            .iter()
            .map(|t| (t.tile, t.summary, t.candidate_pairs))
            .collect(),
        response.summary,
        response.shards,
        response.similarity().to_bits(),
    )
}

fn run_query(
    policy: PlacementPolicy,
    on_disk: bool,
    device: Option<AggregationDevice>,
    tiles: &TileSelection,
) -> (
    Vec<(usize, sccg::JaccardSummary, usize)>,
    sccg::JaccardSummary,
    usize,
    u64,
) {
    let (service, first, second, dir) = service(policy, on_disk);
    let mut request = QueryRequest::new(first, second);
    request.device = device;
    request.tiles = tiles.clone();
    let response = service.submit(request).unwrap().wait().unwrap();
    let view = semantic_view(&response);
    drop(service);
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    view
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Across every (device preference × tile subset) point, all four
    // (policy × backing) corners answer bit-identically.
    #[test]
    fn placement_policy_never_changes_response_bits(
        device_pick in 0usize..4,
        mask in prop::collection::vec(0u8..2, TILES as usize),
    ) {
        let device = [
            None,
            Some(AggregationDevice::Cpu),
            Some(AggregationDevice::Gpu),
            Some(AggregationDevice::Hybrid),
        ][device_pick];
        let subset: Vec<usize> = mask
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| (keep == 1).then_some(i))
            .collect();
        let tiles = if subset.len() == TILES as usize {
            TileSelection::WholeSlide
        } else {
            TileSelection::Tiles(subset)
        };

        let baseline = run_query(PlacementPolicy::RoundRobin, false, device, &tiles);
        for policy in [PlacementPolicy::RoundRobin, PlacementPolicy::ResidencyAware] {
            for on_disk in [false, true] {
                let view = run_query(policy, on_disk, device, &tiles);
                prop_assert!(
                    view == baseline,
                    "{policy:?} on_disk={on_disk} diverged from the in-memory \
                     round-robin baseline"
                );
            }
        }
    }
}
