//! Query requests: what a caller asks the [`crate::ComparisonService`] to
//! compare, built fluently from a slide pair.

use crate::store::SlideId;
use sccg::pixelbox::{AggregationDevice, Variant};
use serde::Serialize;
use std::time::Duration;

/// Which tiles of the slide pair a query covers.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub enum TileSelection {
    /// Every tile of both slides (requires equal tile counts).
    #[default]
    WholeSlide,
    /// An explicit list of tile indices, compared (and merged) in the given
    /// order. Indices must be valid in both slides and free of duplicates.
    Tiles(Vec<usize>),
}

/// Scheduling priority of a query. Higher priorities are dispatched to
/// engines before lower ones whenever shards of several queries are waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum QueryPriority {
    /// Served before everything else (interactive viewers).
    High,
    /// The default.
    #[default]
    Normal,
    /// Served only when nothing more urgent is queued (batch re-analysis).
    Low,
}

impl QueryPriority {
    /// Dispatch-lane index: `0` is the most urgent.
    pub(crate) fn lane(self) -> usize {
        match self {
            QueryPriority::High => 0,
            QueryPriority::Normal => 1,
            QueryPriority::Low => 2,
        }
    }
}

/// A cross-comparison query over a registered slide pair.
///
/// Marked `#[non_exhaustive]` so future fields are not breaking changes:
/// construct it with [`QueryRequest::new`] and the builder methods.
///
/// ```
/// use sccg_serve::{QueryRequest, QueryPriority, SlideStore};
/// use sccg::pixelbox::AggregationDevice;
///
/// let store = SlideStore::new();
/// let a = store.register_slide("result-a", vec![vec![]]);
/// let b = store.register_slide("result-b", vec![vec![]]);
/// let request = QueryRequest::new(a, b)
///     .tiles(vec![0])
///     .on_device(AggregationDevice::Hybrid)
///     .priority(QueryPriority::High);
/// assert_eq!(request.first, a);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct QueryRequest {
    /// First slide (segmentation result) of the pair.
    pub first: SlideId,
    /// Second slide of the pair.
    pub second: SlideId,
    /// Tile coverage (whole slide by default).
    pub tiles: TileSelection,
    /// Device preference: `None` lets any engine of the pool serve shards;
    /// `Some(device)` restricts shards to engines on that substrate.
    pub device: Option<AggregationDevice>,
    /// PixelBox algorithm variant override; `None` uses the service's
    /// configured variant.
    pub variant: Option<Variant>,
    /// Scheduling priority.
    pub priority: QueryPriority,
    /// Per-query deadline, measured from submission. When it expires before
    /// every shard completed, the query fails with
    /// [`sccg::SccgError::DeadlineExceeded`] instead of occupying engines
    /// further; `None` (the default) never expires.
    pub deadline: Option<Duration>,
}

impl QueryRequest {
    /// A whole-slide comparison of `first` vs `second` with no device
    /// preference, the service's default variant and normal priority.
    pub fn new(first: SlideId, second: SlideId) -> Self {
        QueryRequest {
            first,
            second,
            tiles: TileSelection::WholeSlide,
            device: None,
            variant: None,
            priority: QueryPriority::default(),
            deadline: None,
        }
    }

    /// Restricts the query to an explicit tile subset (indices into both
    /// slides, merged in the given order).
    pub fn tiles(mut self, indices: Vec<usize>) -> Self {
        self.tiles = TileSelection::Tiles(indices);
        self
    }

    /// Restricts the query's shards to engines on `device`.
    pub fn on_device(mut self, device: AggregationDevice) -> Self {
        self.device = Some(device);
        self
    }

    /// Overrides the PixelBox algorithm variant for this query.
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = Some(variant);
        self
    }

    /// Sets the scheduling priority.
    pub fn priority(mut self, priority: QueryPriority) -> Self {
        self.priority = priority;
        self
    }

    /// Bounds the query's total latency: if `deadline` elapses (measured
    /// from submission) before every shard completed, the query fails with
    /// [`sccg::SccgError::DeadlineExceeded`] and its remaining shards are
    /// abandoned without computing.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_all_fields() {
        let request = QueryRequest::new(SlideId(0), SlideId(1))
            .tiles(vec![2, 0, 1])
            .on_device(AggregationDevice::Cpu)
            .variant(Variant::NoSep)
            .priority(QueryPriority::Low)
            .with_deadline(Duration::from_millis(250));
        assert_eq!(request.tiles, TileSelection::Tiles(vec![2, 0, 1]));
        assert_eq!(request.device, Some(AggregationDevice::Cpu));
        assert_eq!(request.variant, Some(Variant::NoSep));
        assert_eq!(request.priority, QueryPriority::Low);
        assert_eq!(request.deadline, Some(Duration::from_millis(250)));
    }

    #[test]
    fn priority_lanes_are_ordered() {
        assert!(QueryPriority::High.lane() < QueryPriority::Normal.lane());
        assert!(QueryPriority::Normal.lane() < QueryPriority::Low.lane());
    }
}
