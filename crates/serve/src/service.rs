//! The persistent comparison service: pooled engines, sharding, caching and
//! admission control.
//!
//! A [`ComparisonService`] owns a pool of [`CrossComparison`] engines (a
//! CPU/GPU/hybrid mix, one *worker task* each) bound to a single simulated
//! GPU device. A submitted [`QueryRequest`] is resolved against the
//! [`SlideStore`], split into per-tile *shards*, and dispatched over a
//! priority job queue from which every eligible engine pulls work — so a
//! whole-slide query is computed by however many engines are free, and
//! concurrent queries interleave at shard granularity.
//!
//! Worker tasks run on the pipeline's event-driven executor
//! ([`sccg::pipeline::exec`]) rather than one dedicated OS thread per
//! engine: an engine waiting for an eligible shard is a suspended future
//! woken by the job queue, occupying no thread, so a large engine pool can
//! share a small thread pool ([`ServiceConfig::executor_threads`]) and a
//! blocked engine never pins an OS thread.
//!
//! Three properties make this a serving layer rather than a batch loop:
//!
//! * **Determinism** — every shard runs under the query's effective PixelBox
//!   configuration, backends agree bit-for-bit, and per-tile accumulators
//!   are merged in tile order; the response is bit-identical to a
//!   sequential single-engine run no matter how shards were scheduled.
//! * **Caching** — responses are memoized keyed by slide pair, resolved tile
//!   list, configuration fingerprint and device preference; a repeat query
//!   answers from memory without touching any backend.
//! * **Admission control** — at most `max_in_flight` queries execute at
//!   once; [`ComparisonService::submit`] blocks for a slot,
//!   [`ComparisonService::try_submit`] fails fast with
//!   [`SccgError::Overloaded`].
//!
//! All hybrid engines in the pool share one [`SplitController`], pooling
//! timing observations across engines (the PR-2 seam): a freshly scheduled
//! shard starts from the fleet's learned CPU/GPU split instead of warming up
//! from the seed fraction.

use crate::cache::{config_fingerprint, CacheKey, LruCache};
use crate::request::{QueryPriority, QueryRequest, TileSelection};
use crate::scheduler::{
    run_prefetch, JobQueue, PlacementPolicy, ProgressNotify, SchedulerStats, ShardJob, Worker,
};
use crate::store::{SlideId, SlideStore, TileId};
use crate::supervisor::{EngineHealth, Supervisor};
use crossbeam::channel::{bounded, Receiver, Sender};
use sccg::pipeline::exec::Executor;
use sccg::pixelbox::{AggregationDevice, PixelBoxConfig, SplitConfig, SplitController, SplitTrace};
use sccg::sync::lock;
use sccg::{
    CrossComparison, EngineConfig, FaultInjector, JaccardAccumulator, JaccardSummary, SccgError,
};
use sccg_gpu_sim::{Device, DeviceConfig};
use serde::Serialize;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

// This module deliberately uses `std::sync` primitives rather than the
// `parking_lot` used elsewhere in the workspace: the admission semaphore
// needs a `Condvar` paired with its mutex (its waiters are *client*
// threads, not executor tasks, so blocking is correct there), `std`'s
// `Condvar` only pairs with `std`'s `Mutex`, and the offline `parking_lot`
// shim provides no `Condvar` at all. Poison recovery goes through the
// workspace-wide [`sccg::sync::lock`] helper.

/// Configuration of a [`ComparisonService`].
///
/// Marked `#[non_exhaustive]` so future fields are not breaking changes:
/// construct it with [`ServiceConfig::default`] and the `with_*` builder
/// methods rather than a struct literal.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Engine pool: one [`CrossComparison`] engine and worker task per
    /// entry. Each entry's `device` and `cpu_workers` are honored; the
    /// per-engine `gpu` and `pixelbox` fields are superseded by the
    /// service-level [`ServiceConfig::gpu`] and [`ServiceConfig::pixelbox`]
    /// (one physical device, one effective algorithm configuration — the
    /// determinism invariant), and the per-engine `hybrid_gpu_fraction` /
    /// `split_policy` by [`ServiceConfig::split`] (every hybrid engine
    /// shares the one *pooled* controller; a per-engine split would defeat
    /// the fleet-level pooling).
    pub engines: Vec<EngineConfig>,
    /// PixelBox parameters every query runs under (per-query
    /// [`QueryRequest::variant`] overrides the variant only).
    pub pixelbox: PixelBoxConfig,
    /// The simulated GPU shared by every GPU-touching engine of the pool.
    pub gpu: DeviceConfig,
    /// Split configuration of the *pooled* hybrid [`SplitController`] shared
    /// by every hybrid engine.
    pub split: SplitConfig,
    /// Admission bound: maximum queries executing concurrently (at least 1).
    pub max_in_flight: usize,
    /// Response cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// OS threads backing the shared executor the engine worker tasks run
    /// on; `0` (the default) means one per engine. Engines beyond this count
    /// still make progress — a worker task waiting for a shard holds no
    /// thread — but at most `executor_threads` shards compute at once.
    pub executor_threads: usize,
    /// Placement policy the scheduler dispatches shards with (see
    /// [`crate::scheduler`]). Placement never changes response contents —
    /// only where and when shards run — so switching policies is always
    /// semantically safe.
    pub placement: PlacementPolicy,
    /// Consecutive failures (worker panics or injected kills) after which
    /// the supervisor marks an engine dead (at least 1; see
    /// [`crate::supervisor`]).
    pub failure_threshold: u32,
    /// How long a dead engine stays out of the pool before the supervisor
    /// revives it (checked lazily on queue activity — the executor has no
    /// timers).
    pub revival_cooldown: Duration,
    /// Optional deterministic fault injector threaded through the engine
    /// workers (and, by the caller, usually through the store and the wire
    /// layer too). `None` — the default — injects nothing and costs
    /// nothing.
    pub faults: Option<Arc<FaultInjector>>,
}

impl Default for ServiceConfig {
    /// A mixed pool — one GPU engine, one CPU engine, two hybrid engines
    /// sharing the pooled split controller — with admission bound 4 and a
    /// 64-entry response cache.
    fn default() -> Self {
        ServiceConfig {
            engines: vec![
                EngineConfig::default(),
                EngineConfig::default().with_device(AggregationDevice::Cpu),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
                EngineConfig::default().with_device(AggregationDevice::Hybrid),
            ],
            pixelbox: PixelBoxConfig::paper_default(),
            gpu: DeviceConfig::gtx580(),
            split: SplitConfig::default(),
            max_in_flight: 4,
            cache_capacity: 64,
            executor_threads: 0,
            placement: PlacementPolicy::default(),
            failure_threshold: 3,
            revival_cooldown: Duration::from_secs(5),
            faults: None,
        }
    }
}

impl ServiceConfig {
    /// Returns a copy with a different engine pool.
    pub fn with_engines(mut self, engines: Vec<EngineConfig>) -> Self {
        self.engines = engines;
        self
    }

    /// Returns a copy with different PixelBox parameters.
    pub fn with_pixelbox(mut self, pixelbox: PixelBoxConfig) -> Self {
        self.pixelbox = pixelbox;
        self
    }

    /// Returns a copy with a different simulated GPU configuration.
    pub fn with_gpu(mut self, gpu: DeviceConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Returns a copy with a different pooled split configuration.
    pub fn with_split(mut self, split: SplitConfig) -> Self {
        self.split = split;
        self
    }

    /// Returns a copy with a different admission bound.
    pub fn with_max_in_flight(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }

    /// Returns a copy with a different response cache capacity.
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Returns a copy with a different executor thread count (`0` = one per
    /// engine).
    pub fn with_executor_threads(mut self, executor_threads: usize) -> Self {
        self.executor_threads = executor_threads;
        self
    }

    /// Returns a copy with a different placement policy.
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Returns a copy with a different engine-death threshold (consecutive
    /// failures; clamped to at least 1 at service construction).
    pub fn with_failure_threshold(mut self, failure_threshold: u32) -> Self {
        self.failure_threshold = failure_threshold;
        self
    }

    /// Returns a copy with a different revival cooldown for dead engines.
    pub fn with_revival_cooldown(mut self, revival_cooldown: Duration) -> Self {
        self.revival_cooldown = revival_cooldown;
        self
    }

    /// Returns a copy armed with a deterministic fault injector (see
    /// [`sccg::FaultPlan`]): engine workers consult it for injected kills.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }
}

/// One tile's share of a query response.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TileReport {
    /// Tile index within both slides.
    pub tile: usize,
    /// Pool index of the engine that computed this tile.
    pub engine: usize,
    /// Backend name of that engine (e.g. `pixelbox-hybrid`).
    pub backend: String,
    /// Candidate pairs the MBR join produced for this tile.
    pub candidate_pairs: usize,
    /// This tile's Jaccard aggregation summary.
    pub summary: JaccardSummary,
}

/// Resolved result of one query.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct QueryResponse {
    /// First slide of the compared pair.
    pub first: SlideId,
    /// Second slide of the compared pair.
    pub second: SlideId,
    /// Per-tile reports, in merge (tile) order.
    pub tiles: Vec<TileReport>,
    /// Whole-query Jaccard summary: per-tile accumulators merged in tile
    /// order.
    pub summary: JaccardSummary,
    /// Number of shards the query was split into.
    pub shards: usize,
    /// Whether this response was answered from the cache.
    pub cache_hit: bool,
    /// Priority the query ran at.
    pub priority: QueryPriority,
    /// The request's device preference.
    pub device: Option<AggregationDevice>,
}

impl QueryResponse {
    /// The `J'` similarity, guarded against degenerate summaries
    /// ([`JaccardSummary::similarity_or_zero`]): an empty query reports
    /// `0.0`, never `NaN`.
    pub fn similarity(&self) -> f64 {
        self.summary.similarity_or_zero()
    }

    /// Distinct backend names that served this query's shards.
    pub fn backends_used(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tiles.iter().map(|t| t.backend.clone()).collect();
        names.sort();
        names.dedup();
        names
    }
}

/// Snapshot of the service's lifetime counters.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct ServiceStats {
    /// Requests accepted by `submit`/`try_submit` (including cache hits and
    /// empty queries; excluding requests that failed validation).
    pub submitted: u64,
    /// Sharded queries that ran to completion on the engine pool.
    pub completed: u64,
    /// Requests answered from the response cache.
    pub cache_hits: u64,
    /// Shards computed by any backend (one engine batch each).
    pub backend_batches: u64,
    /// Queries currently executing.
    pub in_flight: usize,
    /// High-water mark of concurrently executing queries.
    pub peak_in_flight: usize,
    /// Shards computed per engine, by pool index.
    pub shards_per_engine: Vec<u64>,
    /// Responses currently held by the cache.
    pub cache_entries: usize,
    /// Decoded tiles currently resident across the store's disk-backed
    /// slides (zero for a fully in-memory store).
    pub resident_tiles: usize,
    /// Fraction of tile faults served from the resident sets, 0.0 before
    /// any disk-backed fetch.
    pub pager_hit_rate: f64,
    /// Total bytes of slide files the store keeps on disk.
    pub bytes_on_disk: u64,
    /// Disk faults the single-flight pager coalesced into another engine's
    /// in-progress read of the same tile (zero for an in-memory store).
    pub coalesced_faults: u64,
    /// Placement decisions of the scheduler layer (see [`crate::scheduler`]).
    pub scheduler: SchedulerStats,
    /// Shards abandoned by a dying engine and re-dispatched to survivors.
    pub redispatches: u64,
    /// Per-engine supervision health, by pool index (see
    /// [`crate::supervisor`]).
    pub engines: Vec<EngineHealth>,
}

/// One progressive event of a streaming query (see
/// [`ComparisonService::submit_streaming`]).
#[derive(Debug, Clone)]
pub enum QueryEvent {
    /// One tile's report, delivered as soon as its shard completed. Events
    /// arrive in *completion* order, which may differ from tile order;
    /// `position` is the tile's slot in the final response's merge-ordered
    /// tile list.
    Tile {
        /// Index into the final response's `tiles` list (merge order).
        position: usize,
        /// The tile's report, bit-identical to the corresponding entry of
        /// the final response.
        report: TileReport,
    },
    /// Terminal event: the merged response (bit-identical to what
    /// [`ComparisonService::submit`] would have returned), or the query's
    /// failure. No event follows it.
    Finished(Result<QueryResponse, SccgError>),
}

/// Handle to a query submitted with
/// [`ComparisonService::submit_streaming`]: a sequence of
/// [`QueryEvent::Tile`] events terminated by one [`QueryEvent::Finished`].
///
/// Cache hits and empty queries replay as the same shape (every tile event,
/// then the finish), so consumers need no special cases; a blocking caller
/// is simply one that ignores tile events — the degenerate one-frame case
/// the wire protocol preserves.
pub struct StreamingHandle {
    events: Receiver<QueryEvent>,
}

impl std::fmt::Debug for StreamingHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingHandle").finish_non_exhaustive()
    }
}

impl StreamingHandle {
    /// Synthesizes the event stream of an already-resolved response (cache
    /// hit, empty query): every tile as an event, then the finish.
    fn replay(result: Result<QueryResponse, SccgError>) -> Self {
        let tiles = result.as_ref().map(|r| r.tiles.len()).unwrap_or(0);
        let (tx, rx) = bounded(tiles + 1);
        if let Ok(response) = &result {
            for (position, report) in response.tiles.iter().enumerate() {
                let _ = tx.send(QueryEvent::Tile {
                    position,
                    report: report.clone(),
                });
            }
        }
        let _ = tx.send(QueryEvent::Finished(result));
        StreamingHandle { events: rx }
    }

    /// Blocks for the next event. Returns `None` once the terminal
    /// [`QueryEvent::Finished`] has been consumed (or if the service was
    /// dropped before the query resolved).
    pub fn next_event(&self) -> Option<QueryEvent> {
        self.events.recv().ok()
    }

    /// Drains the stream, invoking `on_tile` for every tile event, and
    /// returns the merged response. Returns [`SccgError::ShutDown`] if the
    /// service was dropped before the query finished.
    pub fn wait_with(
        self,
        mut on_tile: impl FnMut(usize, &TileReport),
    ) -> Result<QueryResponse, SccgError> {
        while let Some(event) = self.next_event() {
            match event {
                QueryEvent::Tile { position, report } => on_tile(position, &report),
                QueryEvent::Finished(result) => return result,
            }
        }
        Err(SccgError::ShutDown)
    }

    /// Drains the stream ignoring tile events and returns the merged
    /// response (the blocking degenerate case).
    pub fn wait(self) -> Result<QueryResponse, SccgError> {
        self.wait_with(|_, _| {})
    }
}

/// One tile's computed partial: the public report plus the exact accumulator
/// needed for bit-identical merging.
pub(crate) struct TilePartial {
    pub(crate) report: TileReport,
    pub(crate) accumulator: JaccardAccumulator,
}

/// Echoed request metadata carried through to the response.
pub(crate) struct QueryMeta {
    pub(crate) first: SlideId,
    pub(crate) second: SlideId,
    pub(crate) priority: QueryPriority,
    pub(crate) device: Option<AggregationDevice>,
}

/// Shared state of one in-flight query. `pub(crate)` because the scheduler
/// layer reads it for placement (residency, affinity, progress) — the
/// fields' invariants are still maintained exclusively here.
pub(crate) struct QueryState {
    pub(crate) key: CacheKey,
    pub(crate) meta: QueryMeta,
    /// The registry shards fault their tiles from at compute time — never
    /// snapshotted up front, so a disk-backed slide's memory footprint
    /// during a query is its pager's residency bound, not the slide.
    pub(crate) store: SlideStore,
    pub(crate) pixelbox: PixelBoxConfig,
    pub(crate) partials: Mutex<Vec<Option<TilePartial>>>,
    pub(crate) remaining: AtomicUsize,
    /// First shard failure, if any: a typed storage error from faulting a
    /// tile in, or [`SccgError::Internal`] for a panic in a backend. The
    /// query fails with it instead of wedging the service.
    pub(crate) failure: Mutex<Option<SccgError>>,
    pub(crate) responder: Sender<Result<QueryResponse, SccgError>>,
    /// Streaming subscriber: per-tile events pushed as shards complete (the
    /// PR 4 aggregator seam). The channel is sized `shards + 1`, so workers
    /// never block on a slow stream consumer — a lagging client backs up in
    /// its own transport, not in the engine pool.
    pub(crate) stream: Option<Sender<QueryEvent>>,
    /// Tile indices the background prefetcher faulted in for this query and
    /// compute has not consumed yet (the scheduler settles each into
    /// `prefetch_used`/`prefetch_wasted` at dispatch; leftovers are wasted).
    pub(crate) prefetched: Mutex<HashSet<usize>>,
    /// Wakes the query's prefetcher as compute progresses.
    pub(crate) progress: ProgressNotify,
    /// Total shards the query was split into (`remaining` counts down from
    /// it; the difference is the prefetcher's progress measure).
    pub(crate) shard_total: usize,
    /// The absolute deadline computed at submission from
    /// [`QueryRequest::with_deadline`], paired with the requested duration
    /// in milliseconds (echoed in the typed error). Workers check it when
    /// they pop a shard of this query; `None` never expires.
    pub(crate) deadline: Option<(Instant, u64)>,
}

/// Counting semaphore bounding in-flight queries, tracking the high-water
/// mark for observability.
struct Admission {
    state: Mutex<AdmissionState>,
    released: Condvar,
}

struct AdmissionState {
    available: usize,
    in_flight: usize,
    peak: usize,
}

impl Admission {
    fn new(bound: usize) -> Self {
        Admission {
            state: Mutex::new(AdmissionState {
                available: bound,
                in_flight: 0,
                peak: 0,
            }),
            released: Condvar::new(),
        }
    }

    fn admit(state: &mut AdmissionState) {
        state.available -= 1;
        state.in_flight += 1;
        state.peak = state.peak.max(state.in_flight);
    }

    /// Blocks until a slot is free, then takes it.
    fn acquire(&self) {
        let mut state = lock(&self.state);
        while state.available == 0 {
            state = self
                .released
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Self::admit(&mut state);
    }

    /// Takes a slot if one is free; otherwise reports the current load.
    fn try_acquire(&self) -> Result<(), usize> {
        let mut state = lock(&self.state);
        if state.available == 0 {
            return Err(state.in_flight);
        }
        Self::admit(&mut state);
        Ok(())
    }

    fn release(&self) {
        let mut state = lock(&self.state);
        state.available += 1;
        state.in_flight -= 1;
        drop(state);
        self.released.notify_one();
    }

    fn snapshot(&self) -> (usize, usize) {
        let state = lock(&self.state);
        (state.in_flight, state.peak)
    }
}

/// Lifetime counters, lock-free.
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cache_hits: AtomicU64,
    backend_batches: AtomicU64,
    shards_per_engine: Vec<AtomicU64>,
}

/// State shared between the service handle and its worker tasks.
struct ServiceInner {
    queue: JobQueue,
    admission: Admission,
    cache: Mutex<LruCache<CacheKey, QueryResponse>>,
    counters: Counters,
    supervisor: Arc<Supervisor>,
    faults: Option<Arc<FaultInjector>>,
}

impl ServiceInner {
    /// Settles one shard as finished (computed, failed, or abandoned):
    /// decrements the merge barrier, finalizes the query on its last shard,
    /// and advances the prefetcher. Every path a popped shard can take must
    /// end here exactly once — or be re-queued — or the barrier hangs.
    fn settle_shard(&self, query: &Arc<QueryState>) {
        if query.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finalize(query);
        }
        query.progress.notify();
    }

    /// Disposes of a shard a dying engine abandoned: re-queued to the
    /// surviving eligible engines when any exist (the merge slot is
    /// position-pinned, so the response stays bit-identical), failed typed
    /// otherwise — never silently dropped, which would hang the barrier.
    fn redispatch_or_fail(&self, engine: usize, job: ShardJob) {
        if self.supervisor.live_eligible_exists(job.device) {
            self.supervisor.note_redispatch(engine);
            let lane = job.query.meta.priority.lane();
            self.queue.push(job, lane);
            return;
        }
        let error = match job.device {
            Some(device) => SccgError::NoEligibleEngine { device },
            None => SccgError::Internal {
                detail: format!(
                    "tile {}: no live engine left to re-dispatch the shard to",
                    job.tile_index
                ),
            },
        };
        lock(&job.query.failure).get_or_insert(error);
        self.settle_shard(&job.query);
    }

    /// After an engine death: queued shards no surviving engine is eligible
    /// for would wait in the lanes forever. Fail each typed so their
    /// queries resolve instead of hanging.
    fn sweep_orphaned_shards(&self) {
        for job in self.queue.drain_ineligible() {
            let error = match job.device {
                Some(device) => SccgError::NoEligibleEngine { device },
                None => SccgError::Internal {
                    detail: format!("tile {}: no live engine left in the pool", job.tile_index),
                },
            };
            lock(&job.query.failure).get_or_insert(error);
            self.settle_shard(&job.query);
        }
    }
    fn finalize(&self, query: &QueryState) {
        // Prefetched tiles compute never consumed (e.g. the query failed
        // early) are settled as wasted, so the prefetch ledger always
        // balances: issued = used + wasted once all queries resolve.
        let leftover = std::mem::take(&mut *lock(&query.prefetched)).len() as u64;
        if leftover > 0 {
            self.queue
                .counters()
                .prefetch_wasted
                .fetch_add(leftover, Ordering::Relaxed);
        }
        // A query with a failed shard resolves to an error; the admission
        // slot is still returned so the service stays serviceable.
        if let Some(error) = lock(&query.failure).take() {
            self.admission.release();
            let result = Err(error);
            if let Some(stream) = &query.stream {
                let _ = stream.send(QueryEvent::Finished(result.clone()));
            }
            let _ = query.responder.send(result);
            return;
        }
        let mut total = JaccardAccumulator::new();
        let tiles: Vec<TileReport> = {
            let partials = lock(&query.partials);
            partials
                .iter()
                .map(|slot| {
                    let partial = slot.as_ref().expect("query finalized with all shards done");
                    total.merge(&partial.accumulator);
                    partial.report.clone()
                })
                .collect()
        };
        let response = QueryResponse {
            first: query.meta.first,
            second: query.meta.second,
            shards: tiles.len(),
            tiles,
            summary: total.summary(),
            cache_hit: false,
            priority: query.meta.priority,
            device: query.meta.device,
        };
        lock(&self.cache).insert(query.key.clone(), response.clone());
        self.counters.completed.fetch_add(1, Ordering::Relaxed);
        self.admission.release();
        // The caller may have dropped its handle; that is not an error. The
        // terminal stream event goes out first so a streaming consumer that
        // also holds the blocking handle never observes the response before
        // its own stream finished.
        if let Some(stream) = &query.stream {
            let _ = stream.send(QueryEvent::Finished(Ok(response.clone())));
        }
        let _ = query.responder.send(Ok(response));
    }
}

/// Future-like handle to a submitted query.
pub struct QueryHandle {
    state: HandleState,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match &self.state {
            HandleState::Ready(_) => "ready",
            HandleState::Waiting(_) => "waiting",
        };
        f.debug_struct("QueryHandle")
            .field("state", &state)
            .finish()
    }
}

enum HandleState {
    /// The response was available at submission (cache hit or empty query).
    Ready(Result<QueryResponse, SccgError>),
    /// The response arrives when the last shard completes.
    Waiting(Receiver<Result<QueryResponse, SccgError>>),
}

impl QueryHandle {
    fn ready(result: Result<QueryResponse, SccgError>) -> Self {
        QueryHandle {
            state: HandleState::Ready(result),
        }
    }

    fn waiting(rx: Receiver<Result<QueryResponse, SccgError>>) -> Self {
        QueryHandle {
            state: HandleState::Waiting(rx),
        }
    }

    /// Whether [`QueryHandle::wait`] would return without blocking.
    pub fn is_ready(&self) -> bool {
        match &self.state {
            HandleState::Ready(_) => true,
            HandleState::Waiting(rx) => !rx.is_empty(),
        }
    }

    /// Blocks until the query resolves. Returns [`SccgError::ShutDown`] if
    /// the service was dropped before the query completed.
    pub fn wait(self) -> Result<QueryResponse, SccgError> {
        match self.state {
            HandleState::Ready(result) => result,
            HandleState::Waiting(rx) => rx.recv().map_err(|_| SccgError::ShutDown)?,
        }
    }
}

/// A query's validated inputs, ready to shard. Holds tile *indices* only:
/// validation proves every index exists in both slides, and the records are
/// faulted in per shard at compute time (out-of-core slides never
/// materialize).
struct Prepared {
    indices: Vec<usize>,
    pixelbox: PixelBoxConfig,
    key: CacheKey,
}

/// The persistent slide-comparison service. See the [module docs](self).
pub struct ComparisonService {
    store: SlideStore,
    config: ServiceConfig,
    inner: Arc<ServiceInner>,
    device: Arc<Device>,
    controller: Option<Arc<SplitController>>,
    engine_devices: Vec<AggregationDevice>,
    /// Shared thread pool the engine worker tasks run on.
    executor: Executor,
}

impl std::fmt::Debug for ComparisonService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComparisonService")
            .field("engines", &self.engine_devices)
            .field("max_in_flight", &self.config.max_in_flight)
            .finish()
    }
}

impl ComparisonService {
    /// Starts a service over `store` with the given configuration, spawning
    /// one worker task per engine on a shared executor.
    pub fn new(store: SlideStore, config: ServiceConfig) -> Result<Self, SccgError> {
        if config.engines.is_empty() {
            return Err(SccgError::EmptyEnginePool);
        }
        let config = ServiceConfig {
            max_in_flight: config.max_in_flight.max(1),
            ..config
        };
        let device = Arc::new(Device::new(config.gpu.clone()));
        let controller = config
            .engines
            .iter()
            .any(|e| e.device == AggregationDevice::Hybrid)
            .then(|| Arc::new(SplitController::new(config.split)));
        let devices: Vec<AggregationDevice> = config.engines.iter().map(|e| e.device).collect();
        let supervisor = Arc::new(Supervisor::new(
            &devices,
            config.failure_threshold,
            config.revival_cooldown,
        ));
        let inner = Arc::new(ServiceInner {
            queue: JobQueue::new(config.placement, Arc::clone(&supervisor)),
            admission: Admission::new(config.max_in_flight),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            counters: Counters {
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                backend_batches: AtomicU64::new(0),
                shards_per_engine: (0..config.engines.len())
                    .map(|_| AtomicU64::new(0))
                    .collect(),
            },
            supervisor,
            faults: config.faults.clone(),
        });

        let threads = if config.executor_threads == 0 {
            config.engines.len()
        } else {
            config.executor_threads
        };
        let executor = Executor::new(threads);
        let mut engine_devices = Vec::with_capacity(config.engines.len());
        for (index, engine_config) in config.engines.iter().cloned().enumerate() {
            engine_devices.push(engine_config.device);
            let engine = match (&controller, engine_config.device) {
                (Some(shared), AggregationDevice::Hybrid) => {
                    CrossComparison::with_shared_controller(
                        engine_config,
                        Arc::clone(&device),
                        Arc::clone(shared),
                    )
                }
                _ => CrossComparison::with_device(engine_config, Arc::clone(&device)),
            };
            executor.spawn(worker_task(index, engine, Arc::clone(&inner)));
        }

        Ok(ComparisonService {
            store,
            config,
            inner,
            device,
            controller,
            engine_devices,
            executor,
        })
    }

    /// The slide registry this service answers queries over.
    pub fn store(&self) -> &SlideStore {
        &self.store
    }

    /// The service configuration (with `max_in_flight` normalized).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The simulated GPU shared by the pool's GPU-touching engines.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// The pooled hybrid split controller, when the pool has hybrid engines.
    pub fn split_controller(&self) -> Option<&Arc<SplitController>> {
        self.controller.as_ref()
    }

    /// Snapshot of the pooled controller's split telemetry, when the pool
    /// has hybrid engines.
    pub fn split_trace(&self) -> Option<SplitTrace> {
        self.controller.as_ref().map(|c| c.trace())
    }

    /// The pool's engine devices, by pool index.
    pub fn engine_devices(&self) -> &[AggregationDevice] {
        &self.engine_devices
    }

    /// Snapshot of the service's lifetime counters, including the slide
    /// store's out-of-core paging telemetry.
    pub fn stats(&self) -> ServiceStats {
        let (in_flight, peak_in_flight) = self.inner.admission.snapshot();
        let storage = self.store.storage_stats();
        let counters = &self.inner.counters;
        ServiceStats {
            submitted: counters.submitted.load(Ordering::Relaxed),
            completed: counters.completed.load(Ordering::Relaxed),
            cache_hits: counters.cache_hits.load(Ordering::Relaxed),
            backend_batches: counters.backend_batches.load(Ordering::Relaxed),
            in_flight,
            peak_in_flight,
            shards_per_engine: counters
                .shards_per_engine
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            cache_entries: lock(&self.inner.cache).len(),
            resident_tiles: storage.resident_tiles,
            pager_hit_rate: storage.pager_hit_rate,
            bytes_on_disk: storage.bytes_on_disk,
            coalesced_faults: storage.coalesced_faults,
            scheduler: self.inner.queue.stats(),
            redispatches: self.inner.supervisor.redispatches(),
            engines: self.inner.supervisor.health(),
        }
    }

    /// Submits a query, blocking while the admission bound is reached.
    /// Returns immediately (without taking an execution slot) for cache hits
    /// and empty queries.
    pub fn submit(&self, request: QueryRequest) -> Result<QueryHandle, SccgError> {
        self.enqueue(request, true)
    }

    /// Like [`ComparisonService::submit`] but never blocks: fails with
    /// [`SccgError::Overloaded`] when the admission bound is reached.
    pub fn try_submit(&self, request: QueryRequest) -> Result<QueryHandle, SccgError> {
        self.enqueue(request, false)
    }

    /// Submits a query whose results stream progressively: one
    /// [`QueryEvent::Tile`] per tile, pushed as its shard completes on the
    /// engine pool, terminated by [`QueryEvent::Finished`] carrying the
    /// merged response — bit-identical (per-tile areas *and* merged `J'`) to
    /// what [`ComparisonService::submit`] returns for the same request.
    ///
    /// Blocks while the admission bound is reached, like `submit`. Cache
    /// hits and empty queries replay the same event shape without taking an
    /// execution slot.
    pub fn submit_streaming(&self, request: QueryRequest) -> Result<StreamingHandle, SccgError> {
        let prepared = self.prepare(&request)?;
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if let Some(resolved) = self.fast_path(&request, &prepared) {
            return Ok(StreamingHandle::replay(Ok(resolved)));
        }
        self.inner.admission.acquire();
        let (tx, rx) = bounded(prepared.indices.len() + 1);
        let _responder = self.launch(request, prepared, Some(tx));
        Ok(StreamingHandle { events: rx })
    }

    fn enqueue(&self, request: QueryRequest, blocking: bool) -> Result<QueryHandle, SccgError> {
        let prepared = self.prepare(&request)?;
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);

        if let Some(resolved) = self.fast_path(&request, &prepared) {
            return Ok(QueryHandle::ready(Ok(resolved)));
        }

        if blocking {
            self.inner.admission.acquire();
        } else if let Err(in_flight) = self.inner.admission.try_acquire() {
            return Err(SccgError::Overloaded {
                in_flight,
                bound: self.config.max_in_flight,
            });
        }

        Ok(QueryHandle::waiting(self.launch(request, prepared, None)))
    }

    /// Resolves a prepared query without an execution slot when possible:
    /// from the response cache, or immediately for an empty tile selection.
    fn fast_path(&self, request: &QueryRequest, prepared: &Prepared) -> Option<QueryResponse> {
        if let Some(mut cached) = lock(&self.inner.cache).get(&prepared.key) {
            cached.cache_hit = true;
            // Echo *this* request's priority (it is not part of the cache
            // key, and the response reports the request it answered).
            cached.priority = request.priority;
            self.inner
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Some(cached);
        }
        if prepared.indices.is_empty() {
            // Nothing to shard: resolve immediately, without an execution
            // slot. The guarded similarity of the empty summary is 0.0.
            return Some(QueryResponse {
                first: request.first,
                second: request.second,
                tiles: Vec::new(),
                summary: JaccardAccumulator::new().summary(),
                shards: 0,
                cache_hit: false,
                priority: request.priority,
                device: request.device,
            });
        }
        None
    }

    /// Shards an admitted query across the engine pool. The caller has
    /// already taken an admission slot; the returned receiver resolves when
    /// the last shard completes.
    fn launch(
        &self,
        request: QueryRequest,
        prepared: Prepared,
        stream: Option<Sender<QueryEvent>>,
    ) -> Receiver<Result<QueryResponse, SccgError>> {
        let shard_count = prepared.indices.len();
        let (tx, rx) = bounded(1);
        // The deadline clock starts at launch: shards popped after it
        // expired are abandoned without computing.
        let deadline = request
            .deadline
            .map(|d| (Instant::now() + d, d.as_millis() as u64));
        let query = Arc::new(QueryState {
            key: prepared.key,
            meta: QueryMeta {
                first: request.first,
                second: request.second,
                priority: request.priority,
                device: request.device,
            },
            store: self.store.clone(),
            pixelbox: prepared.pixelbox,
            partials: Mutex::new((0..shard_count).map(|_| None).collect()),
            remaining: AtomicUsize::new(shard_count),
            failure: Mutex::new(None),
            responder: tx,
            stream,
            prefetched: Mutex::new(HashSet::new()),
            progress: ProgressNotify::new(),
            shard_total: shard_count,
            deadline,
        });
        // The placement policy may reorder which shard is *enqueued* first
        // (resident tiles ahead of cold ones); each shard's `position` still
        // names its slot in the merge-ordered response, so the enqueue order
        // cannot change the result.
        let mut shards: Vec<(usize, usize)> = prepared.indices.into_iter().enumerate().collect();
        self.inner.queue.place(&query, &mut shards);
        // Spawn the query's background prefetcher (when the policy wants
        // one and some slide actually pages from disk) *before* the shards,
        // so it is runnable as soon as compute starts. It stays within the
        // smallest residency bound of the query's disk-backed slides — the
        // window within which prefetched tiles can all be resident at once.
        let pages_from_disk = [request.first, request.second]
            .iter()
            .any(|&slide| self.store.residency_snapshot(slide).is_some());
        if self.inner.queue.wants_prefetch() && shard_count > 0 && pages_from_disk {
            let window = self.store.residency_bound().unwrap_or(1).max(1);
            self.executor.spawn(run_prefetch(
                Arc::clone(&query),
                shards.iter().map(|&(_, tile)| tile).collect(),
                self.inner.queue.counters(),
                window,
            ));
        }
        let lane = request.priority.lane();
        for (position, tile_index) in shards {
            self.inner.queue.push(
                ShardJob {
                    query: Arc::clone(&query),
                    position,
                    tile_index,
                    device: request.device,
                    bypassed: 0,
                },
                lane,
            );
        }
        // A query launched while every eligible engine is dead must not
        // wait on a barrier nobody will serve. The pushes above already
        // woke parked workers (which is where an elapsed revival cooldown
        // takes effect); anything still ineligible now is failed typed.
        if !self.inner.supervisor.live_eligible_exists(request.device) {
            self.inner.sweep_orphaned_shards();
        }
        rx
    }

    /// Validates a request: devices, slide handles and every tile index —
    /// by *count*, never by loading records, so preparation touches no
    /// polygon data and pages nothing in.
    fn prepare(&self, request: &QueryRequest) -> Result<Prepared, SccgError> {
        if let Some(device) = request.device {
            if !self.engine_devices.contains(&device) {
                return Err(SccgError::NoEligibleEngine { device });
            }
        }
        let first_count = self.store.tile_count(request.first)?;
        let second_count = self.store.tile_count(request.second)?;
        let indices: Vec<usize> = match &request.tiles {
            TileSelection::WholeSlide => {
                if first_count != second_count {
                    return Err(SccgError::TileCountMismatch {
                        first: first_count,
                        second: second_count,
                    });
                }
                (0..first_count).collect()
            }
            TileSelection::Tiles(list) => {
                let mut seen = std::collections::HashSet::new();
                for &index in list {
                    if !seen.insert(index) {
                        return Err(SccgError::InvalidRequest {
                            detail: format!("tile index {index} selected twice"),
                        });
                    }
                }
                for &index in list {
                    if index >= first_count {
                        return Err(SccgError::UnknownTile {
                            slide: request.first.value(),
                            tile: index,
                            tiles: first_count,
                        });
                    }
                    if index >= second_count {
                        return Err(SccgError::UnknownTile {
                            slide: request.second.value(),
                            tile: index,
                            tiles: second_count,
                        });
                    }
                }
                list.clone()
            }
        };
        let pixelbox = match request.variant {
            Some(variant) => self.config.pixelbox.with_variant(variant),
            None => self.config.pixelbox,
        };
        let key = CacheKey {
            first: request.first,
            second: request.second,
            tiles: indices.clone(),
            config: config_fingerprint(&pixelbox),
            device: request.device,
        };
        Ok(Prepared {
            indices,
            pixelbox,
            key,
        })
    }
}

impl Drop for ComparisonService {
    /// Drains pending shards (admitted queries complete), then stops every
    /// worker task and the executor's threads.
    fn drop(&mut self) {
        self.inner.queue.close();
        self.executor.wait_idle();
    }
}

/// One engine's worker task: pull eligible shards, fault the shard's tiles
/// in through the store (the demand pager, for disk-backed slides),
/// compute, merge, finalize the query on its last shard. While no eligible
/// shard exists the task is suspended on the job queue's waker list — it
/// occupies no executor thread.
///
/// Failures are contained per shard: a storage fault (corrupt or truncated
/// tile) fails the query with its typed [`SccgError::Storage`], a panic
/// inside a backend with [`SccgError::Internal`]; either way the admission
/// slot is returned and the worker task survives to serve the next shard —
/// one poisoned input must not wedge the whole service.
async fn worker_task(index: usize, engine: CrossComparison, inner: Arc<ServiceInner>) {
    let worker = Worker {
        device: engine.config().device,
        index,
    };
    let backend_name = engine.backend().name();
    while let Some(job) = inner.queue.pop(worker).await {
        // Deadline first: a shard popped after its query's deadline expired
        // is abandoned without computing — the query fails typed instead of
        // occupying engines it can no longer benefit from.
        if let Some((at, deadline_ms)) = job.query.deadline {
            if Instant::now() >= at {
                lock(&job.query.failure).get_or_insert(SccgError::DeadlineExceeded { deadline_ms });
                inner.settle_shard(&job.query);
                continue;
            }
        }
        // An injected kill simulates this worker dying mid-shard: the
        // supervisor is told, and the shard in hand is re-dispatched to
        // survivors (or failed typed) rather than dropped — dropping it
        // would leave the query's merge barrier counting down forever.
        if let Some(injector) = &inner.faults {
            if injector.kill_engine_now(index as u64) {
                if inner.supervisor.record_failure(index) {
                    inner.sweep_orphaned_shards();
                }
                inner.redispatch_or_fail(index, job);
                continue;
            }
        }
        let query = &job.query;
        // Tagged fetches record which engine faulted each tile, feeding the
        // residency-aware policy's affinity tie-break.
        let faulted = query
            .store
            .tile_tagged(
                TileId {
                    slide: query.meta.first,
                    index: job.tile_index,
                },
                Some(index),
            )
            .and_then(|first| {
                query
                    .store
                    .tile_tagged(
                        TileId {
                            slide: query.meta.second,
                            index: job.tile_index,
                        },
                        Some(index),
                    )
                    .map(|second| (first, second))
            });
        let computed = faulted.map(|(first, second)| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.compare_records_with(&first, &second, &query.pixelbox)
            }))
        });

        match computed {
            Ok(Ok(report)) => {
                inner.supervisor.record_success(index);
                // Only successfully computed shards count as backend work
                // (the cache tests diff these counters).
                inner
                    .counters
                    .backend_batches
                    .fetch_add(1, Ordering::Relaxed);
                inner.counters.shards_per_engine[index].fetch_add(1, Ordering::Relaxed);
                // Rebuild the exact accumulator from the per-pair areas so
                // merging across shards is bit-identical to a sequential
                // fold.
                let mut accumulator = JaccardAccumulator::new();
                for areas in &report.pair_areas {
                    accumulator.add_pair(*areas);
                }
                let partial = TilePartial {
                    report: TileReport {
                        tile: job.tile_index,
                        engine: index,
                        backend: backend_name.to_string(),
                        candidate_pairs: report.candidate_pairs,
                        summary: report.summary,
                    },
                    accumulator,
                };
                // Push the tile to streaming subscribers the moment it is
                // done — before the query's own completion — so progressive
                // consumers render results as shards land. The channel is
                // sized to hold every event, so this never blocks a worker.
                if let Some(stream) = &job.query.stream {
                    let _ = stream.send(QueryEvent::Tile {
                        position: job.position,
                        report: partial.report.clone(),
                    });
                }
                lock(&job.query.partials)[job.position] = Some(partial);
            }
            Ok(Err(payload)) => {
                // A panic is charged to this engine: repeated panics kill
                // it (and orphan-sweep the queue), but the panicking query
                // still fails typed — the input provoked the panic, so
                // re-running the shard elsewhere would only spread it.
                if inner.supervisor.record_failure(index) {
                    inner.sweep_orphaned_shards();
                }
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "shard computation panicked".to_string());
                lock(&job.query.failure).get_or_insert(SccgError::Internal {
                    detail: format!("tile {}: {detail}", job.tile_index),
                });
            }
            Err(error) => {
                // The tile could not be faulted in (typically a storage
                // fault); the query fails with the typed error itself. Not
                // charged to the engine — the tile is sick, not the worker.
                lock(&job.query.failure).get_or_insert(error);
            }
        }
        // Settle the shard: decrement the merge barrier, finalize on the
        // last one, and wake the query's prefetcher (its window shifted,
        // and on the last shard it learns to exit).
        inner.settle_shard(&job.query);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// More blocked `acquire` waiters than slots: every waiter must
    /// eventually be admitted through the `Condvar::notify_one` release
    /// path, and the semaphore must end exactly where it started.
    #[test]
    fn admission_wakes_every_waiter_with_more_waiters_than_slots() {
        const BOUND: usize = 2;
        const WAITERS: usize = 7;
        let admission = Arc::new(Admission::new(BOUND));
        let admitted = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..WAITERS)
            .map(|_| {
                let admission = Arc::clone(&admission);
                let admitted = Arc::clone(&admitted);
                std::thread::spawn(move || {
                    admission.acquire();
                    admitted.fetch_add(1, Ordering::SeqCst);
                    // Hold the slot briefly so waiters genuinely queue up
                    // behind a full semaphore before releases begin.
                    std::thread::sleep(Duration::from_millis(5));
                    admission.release();
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("waiter thread");
        }
        assert_eq!(admitted.load(Ordering::SeqCst), WAITERS);
        let (in_flight, peak) = admission.snapshot();
        assert_eq!(in_flight, 0, "every slot returned");
        assert!(peak <= BOUND, "peak {peak} exceeded the bound {BOUND}");
        assert!(peak >= 1, "at least one admission was observed");
        // All slots are usable again: the releases leaked nothing.
        for _ in 0..BOUND {
            admission.try_acquire().expect("slot available");
        }
        assert_eq!(admission.try_acquire(), Err(BOUND));
    }

    /// A failed `try_acquire` must not consume a slot: after the rejection
    /// the same number of slots is still available.
    #[test]
    fn failed_try_acquire_leaks_no_permit() {
        let admission = Admission::new(1);
        admission.try_acquire().expect("first slot");
        for _ in 0..10 {
            assert_eq!(admission.try_acquire(), Err(1), "full semaphore rejects");
        }
        admission.release();
        let (in_flight, _) = admission.snapshot();
        assert_eq!(in_flight, 0);
        admission
            .try_acquire()
            .expect("slot came back after release");
    }
}
