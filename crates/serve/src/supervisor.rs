//! Engine supervision: per-engine health, death after repeated failures,
//! and cooldown-based revival.
//!
//! The engine pool used to assume every worker lives forever; a worker that
//! died (or was killed by fault injection) stranded whatever shard it held
//! and left its query's merge barrier counting down forever. The
//! supervisor closes that hole:
//!
//! * Every shard outcome is reported per engine. After
//!   [`crate::ServiceConfig::with_failure_threshold`] *consecutive*
//!   failures (worker panics or injected kills — storage faults are the
//!   tile's fault, not the engine's) the engine is marked **dead**.
//! * A dead engine stops popping work: its worker task parks on the job
//!   queue's waker list like an idle one, so the shards it would have taken
//!   go to surviving eligible engines instead. Merge slots are
//!   position-pinned, so a re-dispatched shard produces a bit-identical
//!   response no matter which engine ends up computing it.
//! * Revival is **cooldown-based and poll-driven**: the executor has no
//!   timers, so a dead engine is re-checked whenever its parked worker is
//!   woken by queue activity (the supervisor's `may_pop` check); once
//!   [`crate::ServiceConfig::with_revival_cooldown`] has elapsed the engine
//!   rejoins the pool with a clean slate.
//!
//! Health is exported per engine as [`EngineHealth`] in
//! [`crate::ServiceStats`], alongside the fleet-wide re-dispatch count.

use sccg::pixelbox::AggregationDevice;
use sccg::sync::lock;
use serde::Serialize;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One engine's health, as exported in [`crate::ServiceStats::engines`].
#[derive(Debug, Clone, PartialEq, Serialize)]
#[non_exhaustive]
pub struct EngineHealth {
    /// Pool index of the engine.
    pub engine: usize,
    /// The engine's aggregation device (e.g. `Cpu`, `Gpu`, `Hybrid`).
    pub device: String,
    /// Whether the supervisor currently considers the engine alive. Dead
    /// engines pop no shards until their revival cooldown elapses.
    pub alive: bool,
    /// Failures since the engine's last successful shard (a success resets
    /// this; reaching the threshold kills the engine).
    pub consecutive_failures: u64,
    /// Lifetime failures charged to this engine.
    pub total_failures: u64,
    /// Shards this engine abandoned that were re-dispatched to survivors.
    pub redispatched_shards: u64,
    /// Times the engine was revived after a cooldown.
    pub revivals: u64,
}

/// Liveness of one engine.
enum Liveness {
    Alive,
    Dead { since: Instant },
}

/// Per-engine supervision state.
struct EngineState {
    device: AggregationDevice,
    consecutive: AtomicU32,
    total: AtomicU64,
    redispatched: AtomicU64,
    revivals: AtomicU64,
    liveness: Mutex<Liveness>,
}

/// Tracks engine health for a [`crate::ComparisonService`]'s pool. See the
/// [module docs](self).
pub(crate) struct Supervisor {
    engines: Vec<EngineState>,
    threshold: u32,
    cooldown: Duration,
    redispatches: AtomicU64,
}

impl Supervisor {
    pub(crate) fn new(devices: &[AggregationDevice], threshold: u32, cooldown: Duration) -> Self {
        Supervisor {
            engines: devices
                .iter()
                .map(|&device| EngineState {
                    device,
                    consecutive: AtomicU32::new(0),
                    total: AtomicU64::new(0),
                    redispatched: AtomicU64::new(0),
                    revivals: AtomicU64::new(0),
                    liveness: Mutex::new(Liveness::Alive),
                })
                .collect(),
            threshold: threshold.max(1),
            cooldown,
            redispatches: AtomicU64::new(0),
        }
    }

    /// Charges a failure (panic or injected kill) to `engine`. Returns
    /// `true` when this failure crossed the threshold and killed the engine.
    pub(crate) fn record_failure(&self, engine: usize) -> bool {
        let Some(state) = self.engines.get(engine) else {
            return false;
        };
        state.total.fetch_add(1, Ordering::Relaxed);
        let consecutive = state.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if consecutive < self.threshold {
            return false;
        }
        let mut liveness = lock(&state.liveness);
        match *liveness {
            Liveness::Alive => {
                *liveness = Liveness::Dead {
                    since: Instant::now(),
                };
                true
            }
            Liveness::Dead { .. } => false,
        }
    }

    /// Records a successful shard: the engine's consecutive-failure count
    /// resets, so isolated hiccups never accumulate into a death.
    pub(crate) fn record_success(&self, engine: usize) {
        if let Some(state) = self.engines.get(engine) {
            state.consecutive.store(0, Ordering::Relaxed);
        }
    }

    /// Whether `engine` may pop a shard right now. Checked on every poll of
    /// the worker's pop future — this is where a dead engine whose cooldown
    /// has elapsed is lazily revived (the executor has no timers, so
    /// revival rides on queue activity rather than a clock).
    pub(crate) fn may_pop(&self, engine: usize) -> bool {
        let Some(state) = self.engines.get(engine) else {
            return true;
        };
        let mut liveness = lock(&state.liveness);
        match *liveness {
            Liveness::Alive => true,
            Liveness::Dead { since } => {
                if since.elapsed() < self.cooldown {
                    return false;
                }
                *liveness = Liveness::Alive;
                state.consecutive.store(0, Ordering::Relaxed);
                state.revivals.fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    }

    /// Whether a *live* engine eligible for `device` exists (`None` = any
    /// device). Peeks liveness without triggering revival — this answers
    /// "can someone else take this shard right now", not "poll me".
    pub(crate) fn live_eligible_exists(&self, device: Option<AggregationDevice>) -> bool {
        self.engines.iter().any(|state| {
            device.is_none_or(|d| d == state.device)
                && matches!(*lock(&state.liveness), Liveness::Alive)
        })
    }

    /// Counts a shard abandoned by `engine` and re-dispatched to survivors.
    pub(crate) fn note_redispatch(&self, engine: usize) {
        self.redispatches.fetch_add(1, Ordering::Relaxed);
        if let Some(state) = self.engines.get(engine) {
            state.redispatched.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fleet-wide count of re-dispatched shards.
    pub(crate) fn redispatches(&self) -> u64 {
        self.redispatches.load(Ordering::Relaxed)
    }

    /// Per-engine health snapshot. Read-only: peeking never revives.
    pub(crate) fn health(&self) -> Vec<EngineHealth> {
        self.engines
            .iter()
            .enumerate()
            .map(|(engine, state)| EngineHealth {
                engine,
                device: format!("{:?}", state.device),
                alive: matches!(*lock(&state.liveness), Liveness::Alive),
                consecutive_failures: state.consecutive.load(Ordering::Relaxed) as u64,
                total_failures: state.total.load(Ordering::Relaxed),
                redispatched_shards: state.redispatched.load(Ordering::Relaxed),
                revivals: state.revivals.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Supervisor {
        Supervisor::new(
            &[AggregationDevice::Cpu, AggregationDevice::Gpu],
            3,
            Duration::from_secs(3600),
        )
    }

    #[test]
    fn threshold_consecutive_failures_kill_the_engine() {
        let supervisor = pool();
        assert!(!supervisor.record_failure(0));
        assert!(!supervisor.record_failure(0));
        assert!(supervisor.record_failure(0), "third strike kills");
        assert!(!supervisor.may_pop(0), "dead engines pop nothing");
        assert!(supervisor.may_pop(1), "the other engine is unaffected");
        assert!(
            !supervisor.record_failure(0),
            "further failures do not re-kill"
        );
        let health = supervisor.health();
        assert!(!health[0].alive);
        assert_eq!(health[0].total_failures, 4);
        assert!(health[1].alive);
        assert_eq!(health[1].device, "Gpu");
    }

    #[test]
    fn a_success_resets_the_consecutive_count() {
        let supervisor = pool();
        for round in 0..5 {
            assert!(!supervisor.record_failure(0), "round {round}");
            assert!(!supervisor.record_failure(0), "round {round}");
            supervisor.record_success(0);
        }
        assert!(supervisor.may_pop(0), "never two in a row past a success");
        assert_eq!(supervisor.health()[0].total_failures, 10);
    }

    #[test]
    fn eligibility_respects_device_and_liveness() {
        let supervisor = pool();
        assert!(supervisor.live_eligible_exists(None));
        assert!(supervisor.live_eligible_exists(Some(AggregationDevice::Cpu)));
        assert!(!supervisor.live_eligible_exists(Some(AggregationDevice::Hybrid)));
        for _ in 0..3 {
            supervisor.record_failure(0);
        }
        assert!(!supervisor.live_eligible_exists(Some(AggregationDevice::Cpu)));
        assert!(supervisor.live_eligible_exists(None), "engine 1 lives");
        for _ in 0..3 {
            supervisor.record_failure(1);
        }
        assert!(!supervisor.live_eligible_exists(None), "whole pool dead");
    }

    #[test]
    fn revival_after_cooldown_is_poll_driven() {
        let supervisor = Supervisor::new(&[AggregationDevice::Cpu], 1, Duration::ZERO);
        assert!(supervisor.record_failure(0));
        assert!(!matches!(
            *lock(&supervisor.engines[0].liveness),
            Liveness::Alive
        ));
        // Zero cooldown: the next pop check revives with a clean slate.
        assert!(supervisor.may_pop(0));
        let health = supervisor.health();
        assert!(health[0].alive);
        assert_eq!(health[0].consecutive_failures, 0);
        assert_eq!(health[0].revivals, 1);
    }

    #[test]
    fn redispatches_are_counted_fleet_wide_and_per_engine() {
        let supervisor = pool();
        supervisor.note_redispatch(0);
        supervisor.note_redispatch(0);
        supervisor.note_redispatch(1);
        assert_eq!(supervisor.redispatches(), 3);
        let health = supervisor.health();
        assert_eq!(health[0].redispatched_shards, 2);
        assert_eq!(health[1].redispatched_shards, 1);
    }

    #[test]
    fn out_of_range_engines_are_harmless() {
        let supervisor = pool();
        assert!(!supervisor.record_failure(9));
        supervisor.record_success(9);
        supervisor.note_redispatch(9);
        assert!(supervisor.may_pop(9));
        assert_eq!(supervisor.redispatches(), 1);
    }
}
