//! The slide registry: parse once, query many times.
//!
//! The paper's workflow (Figure 1) registers each segmentation result as a
//! table of polygon records before any cross-comparison query runs. The
//! [`SlideStore`] is that registry: callers hand in parsed (or raw-text)
//! per-tile polygon records once and get back [`SlideId`]/[`TileId`] handles;
//! every later [`crate::QueryRequest`] references the handles, so the parse
//! and validation cost is paid exactly once per slide rather than once per
//! query.
//!
//! # Out-of-core backing
//!
//! A store created with [`SlideStore::with_spill`] keeps registered slides
//! *on disk* in the `sccg-store` columnar tile format instead of in memory:
//!
//! * [`SlideStore::register_slide_streaming`] parses tile texts one at a
//!   time and streams the parse output through a bounded executor channel
//!   (the pipeline's [`sccg::pipeline::exec`] seam) to a writer task that
//!   appends each tile to the slide file — the whole slide is never
//!   materialized in memory, so registration runs in O(channel × tile).
//! * [`SlideStore::tile`] faults disk-backed tiles in through a per-slide
//!   demand pager ([`sccg_store::TileStorage`]) holding at most the
//!   configured residency bound of decoded tiles; query sharding touches
//!   tiles through exactly this path, so peak memory during a whole-slide
//!   query is bounded regardless of slide size.
//! * A corrupt or truncated tile fails *its own* reads with
//!   [`SccgError::Storage`]; other tiles, other slides and the process stay
//!   healthy. A tile that keeps failing is quarantined by the pager's
//!   circuit breaker ([`sccg_store::QUARANTINE_THRESHOLD`]) so queries fail
//!   fast instead of re-reading a sick block forever.
//!
//! # Crash safety
//!
//! Streaming registration writes through a temp file and publishes the
//! final slide file with one atomic rename ([`SlideFileWriter`]), so a
//! crash — or an injected write error — at *any* point leaves either the
//! complete file or nothing. Orphaned `*.partial` temp files from a
//! previous crashed process are swept at startup by the spilling
//! constructors (and on demand by [`SlideStore::recover`]).
//!
//! A store without a spill directory behaves exactly as before: everything
//! in memory, and the streaming registration degrades to an in-memory
//! accumulation with identical results.

use parking_lot::Mutex;
use sccg::pipeline::exec::{channel, Executor};
use sccg::{FaultInjector, SccgError};
use sccg_geometry::text::{parse_polygon_file, PolygonRecord};
use sccg_store::{recover_dir, PagerStats, ResidencySnapshot, SlideFileWriter, TileStorage};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Handle of a registered slide (one segmentation result: a sequence of
/// tiles of polygon records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct SlideId(pub(crate) u64);

impl SlideId {
    /// The raw id value (stable for the lifetime of the store).
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from a raw id value (for example one read back
    /// from exported telemetry). Only meaningful for the store that
    /// originally issued it; an unknown id fails lookups with
    /// [`SccgError::UnknownSlide`] rather than panicking.
    pub fn from_raw(value: u64) -> Self {
        SlideId(value)
    }
}

/// Handle of one tile within a registered slide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct TileId {
    /// The slide the tile belongs to.
    pub slide: SlideId,
    /// Zero-based tile index within the slide.
    pub index: usize,
}

/// Where a slide's tiles live.
enum TileBacking {
    /// Fully decoded in memory (the classic path).
    Memory(Vec<Arc<Vec<PolygonRecord>>>),
    /// On disk in the columnar tile format, paged in on demand.
    Disk(Arc<TileStorage>),
}

impl TileBacking {
    fn tile_count(&self) -> usize {
        match self {
            TileBacking::Memory(tiles) => tiles.len(),
            TileBacking::Disk(storage) => storage.tile_count(),
        }
    }

    fn polygons(&self) -> usize {
        match self {
            TileBacking::Memory(tiles) => tiles.iter().map(|t| t.len()).sum(),
            TileBacking::Disk(storage) => storage.total_polygons(),
        }
    }
}

/// Immutable per-slide registry entry.
struct SlideEntry {
    name: String,
    backing: TileBacking,
}

/// Summary of one registered slide.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SlideInfo {
    /// The slide's handle.
    pub id: SlideId,
    /// The name it was registered under.
    pub name: String,
    /// Number of registered tiles.
    pub tiles: usize,
    /// Total polygon records across all tiles.
    pub polygons: usize,
    /// Whether the slide's tiles live on disk (paged in on demand) rather
    /// than in memory.
    pub on_disk: bool,
}

/// Where one tile of a slide pair currently lives, from the scheduler's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileResidency {
    /// The slide is in-memory: the tile is always immediately available.
    Memory,
    /// Disk-backed and currently decoded in the slide's pager — a fetch is
    /// a hit, no disk fault needed.
    Resident,
    /// Disk-backed and not resident (or the handle is unknown): a fetch
    /// would fault the tile in from disk.
    Absent,
}

/// Aggregate out-of-core telemetry across every disk-backed slide of a
/// store. A store with no disk-backed slides reports all zeros.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
#[non_exhaustive]
pub struct StorageStats {
    /// Number of disk-backed slides.
    pub disk_slides: usize,
    /// Decoded tiles currently resident across all pagers.
    pub resident_tiles: usize,
    /// Sum of each pager's peak resident-tile count.
    pub peak_resident_tiles: usize,
    /// Tile fetches served from the resident sets.
    pub pager_hits: u64,
    /// Tile fetches that read and decoded a block from disk.
    pub pager_misses: u64,
    /// Tile fetches that joined another caller's in-flight disk read
    /// (single-flight coalescing) instead of decoding the block again.
    pub coalesced_faults: u64,
    /// `hits / (hits + misses)` across all pagers, or 0.0 before any fetch.
    pub pager_hit_rate: f64,
    /// Total bytes of slide files on disk.
    pub bytes_on_disk: u64,
    /// Tiles currently quarantined by their pager's circuit breaker after
    /// repeated failed reads.
    pub quarantined_tiles: usize,
}

impl StorageStats {
    fn absorb(&mut self, stats: &PagerStats) {
        self.disk_slides += 1;
        self.resident_tiles += stats.resident;
        self.peak_resident_tiles += stats.peak_resident;
        self.pager_hits += stats.hits;
        self.pager_misses += stats.misses;
        self.coalesced_faults += stats.coalesced_faults;
        self.bytes_on_disk += stats.bytes_on_disk;
        self.quarantined_tiles += stats.quarantined_tiles;
    }
}

/// Out-of-core configuration plus the executor that drives streaming
/// registration's writer task.
struct SpillState {
    dir: PathBuf,
    residency_bound: usize,
    /// One-thread executor the per-registration writer tasks run on (the
    /// pipeline's event-driven executor, not a dedicated thread per call).
    executor: Executor,
    next_file: AtomicU64,
    /// Fault-injection hook threaded into every slide file this store
    /// writes or reads; `None` in production (zero-cost no-op).
    faults: Option<Arc<FaultInjector>>,
}

/// Registry of parsed slide data, shared between callers and a
/// [`crate::ComparisonService`].
///
/// Cheap to clone: clones share the same underlying registry. Tiles are
/// immutable once registered (appending new tiles to an in-memory slide is
/// allowed and simply extends the slide), so queries can snapshot `Arc`s to
/// tile data without copying polygons.
#[derive(Clone, Default)]
pub struct SlideStore {
    inner: Arc<Mutex<Vec<SlideEntry>>>,
    spill: Option<Arc<SpillState>>,
}

impl std::fmt::Debug for SlideStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slides = self.inner.lock();
        f.debug_struct("SlideStore")
            .field("slides", &slides.len())
            .field("spilling", &self.spill.is_some())
            .finish()
    }
}

impl SlideStore {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        SlideStore::default()
    }

    /// Creates an empty store that keeps registered slides on disk under
    /// `dir` (created if missing), paging at most `residency_bound` decoded
    /// tiles per slide back into memory on demand (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] if the spill directory cannot be created.
    pub fn with_spill(dir: impl Into<PathBuf>, residency_bound: usize) -> Result<Self, SccgError> {
        SlideStore::with_spill_and_faults(dir, residency_bound, None)
    }

    /// Like [`SlideStore::with_spill`], additionally threading a
    /// [`FaultInjector`] into every slide file the store writes or reads —
    /// the fault-injection seam the chaos harness drives. Production code
    /// passes `None` (via [`SlideStore::with_spill`]) and pays nothing.
    ///
    /// Both spilling constructors sweep orphaned partial files left under
    /// `dir` by a previous crashed process (see [`SlideStore::recover`]).
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] if the spill directory cannot be created or
    /// the recovery sweep cannot read it.
    pub fn with_spill_and_faults(
        dir: impl Into<PathBuf>,
        residency_bound: usize,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Self, SccgError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SccgError::Storage {
            detail: format!("create spill directory {}: {e}", dir.display()),
        })?;
        SlideStore::recover(&dir)?;
        Ok(SlideStore {
            inner: Arc::new(Mutex::new(Vec::new())),
            spill: Some(Arc::new(SpillState {
                dir,
                residency_bound: residency_bound.max(1),
                executor: Executor::new(1),
                next_file: AtomicU64::new(0),
                faults,
            })),
        })
    }

    /// Removes orphaned partial slide files (`*.sccgt.partial`) left under
    /// `dir` by a crashed writer, returning the removed paths. Completed
    /// slide files are never touched; a missing directory is an empty
    /// sweep, not an error.
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] if the directory cannot be read or an orphan
    /// cannot be removed.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, SccgError> {
        recover_dir(dir.as_ref())
    }

    /// The per-slide residency bound, when the store spills to disk.
    pub fn residency_bound(&self) -> Option<usize> {
        self.spill.as_ref().map(|s| s.residency_bound)
    }

    /// Registers a slide from already-parsed per-tile polygon records and
    /// returns its handle. Always lands in memory — out-of-core
    /// registration goes through [`SlideStore::register_slide_streaming`].
    pub fn register_slide(
        &self,
        name: impl Into<String>,
        tiles: Vec<Vec<PolygonRecord>>,
    ) -> SlideId {
        self.push_entry(SlideEntry {
            name: name.into(),
            backing: TileBacking::Memory(tiles.into_iter().map(Arc::new).collect()),
        })
    }

    /// Registers a slide from raw polygon-file texts (one text per tile),
    /// parsing each tile up front into memory. Unlike the batch pipeline —
    /// which skips malformed tiles so one bad file cannot abort a
    /// whole-slide run — the serving route fails registration with
    /// [`SccgError::Parse`]: a service must not silently serve queries over
    /// partially-loaded slides.
    pub fn register_slide_text(
        &self,
        name: impl Into<String>,
        tile_texts: &[String],
    ) -> Result<SlideId, SccgError> {
        let mut tiles = Vec::with_capacity(tile_texts.len());
        for (index, text) in tile_texts.iter().enumerate() {
            tiles.push(parse_tile(index, text)?);
        }
        Ok(self.register_slide(name, tiles))
    }

    /// Registers a slide by *streaming*: tile texts are parsed one at a
    /// time and, on a spilling store, the parse output flows tile-by-tile
    /// through a bounded executor channel to a writer task appending the
    /// on-disk slide file — the whole slide is never materialized in
    /// memory. Queries then page tiles back in on demand. On a store
    /// without a spill directory this degrades to an in-memory
    /// registration with identical query results.
    ///
    /// A parse or write failure aborts the registration, removes the
    /// partial file, and leaves no slide entry behind.
    ///
    /// # Errors
    ///
    /// [`SccgError::Parse`] for a malformed tile text;
    /// [`SccgError::Storage`] for an I/O failure on the slide file.
    pub fn register_slide_streaming<I>(
        &self,
        name: impl Into<String>,
        tile_texts: I,
    ) -> Result<SlideId, SccgError>
    where
        I: IntoIterator<Item = String>,
    {
        let Some(spill) = &self.spill else {
            let mut tiles = Vec::new();
            for (index, text) in tile_texts.into_iter().enumerate() {
                tiles.push(parse_tile(index, &text)?);
            }
            return Ok(self.register_slide(name, tiles));
        };

        let file_id = spill.next_file.fetch_add(1, Ordering::Relaxed);
        let path = spill.dir.join(format!("slide-{file_id:06}.sccgt"));
        let mut writer = SlideFileWriter::create_with_faults(&path, spill.faults.clone())?;
        // The streaming seam: a bounded channel keeps at most a couple of
        // parsed tiles in flight between this thread and the writer task.
        let (tile_tx, tile_rx) = channel::<Vec<PolygonRecord>>(2);
        let (done_tx, done_rx) = crossbeam::channel::bounded(1);
        spill.executor.spawn(async move {
            let result = loop {
                match tile_rx.recv().await {
                    Some(records) => {
                        if let Err(error) = writer.append_tile(&records) {
                            break Err(error);
                        }
                    }
                    None => break writer.finish(),
                }
            };
            let _ = done_tx.send(result);
        });

        let mut parse_error = None;
        for (index, text) in tile_texts.into_iter().enumerate() {
            match parse_tile(index, &text) {
                // A send fails only when the writer task already died on a
                // write error; stop feeding and surface that error below.
                Ok(records) => {
                    if tile_tx.send_blocking(records).is_err() {
                        break;
                    }
                }
                Err(error) => {
                    parse_error = Some(error);
                    break;
                }
            }
        }
        drop(tile_tx);
        let written = done_rx.recv().map_err(|_| SccgError::Storage {
            detail: "slide writer task vanished before finishing".to_string(),
        })?;

        let failure = parse_error.or(written.as_ref().err().cloned());
        if let Some(error) = failure {
            // A write failure never published the final file (the writer
            // cleans its own partial on drop); a parse failure after a
            // clean finish leaves a renamed-but-unwanted file to delete.
            let _ = std::fs::remove_file(&path);
            return Err(error);
        }
        let file = written.expect("checked above");
        Ok(self.push_entry(SlideEntry {
            name: name.into(),
            backing: TileBacking::Disk(Arc::new(TileStorage::new(file, spill.residency_bound))),
        }))
    }

    fn push_entry(&self, entry: SlideEntry) -> SlideId {
        let mut slides = self.inner.lock();
        let id = SlideId(slides.len() as u64);
        slides.push(entry);
        id
    }

    /// Appends one tile's records to an existing in-memory slide, returning
    /// the new tile's handle. Disk-backed slides are immutable once
    /// registered (their footer index is final) and fail with
    /// [`SccgError::Storage`].
    pub fn append_tile(
        &self,
        slide: SlideId,
        records: Vec<PolygonRecord>,
    ) -> Result<TileId, SccgError> {
        let mut slides = self.inner.lock();
        let entry = slides
            .get_mut(slide.0 as usize)
            .ok_or(SccgError::UnknownSlide { slide: slide.0 })?;
        match &mut entry.backing {
            TileBacking::Memory(tiles) => {
                tiles.push(Arc::new(records));
                Ok(TileId {
                    slide,
                    index: tiles.len() - 1,
                })
            }
            TileBacking::Disk(_) => Err(SccgError::Storage {
                detail: format!(
                    "slide {} is disk-backed and immutable; register a new slide instead",
                    slide.0
                ),
            }),
        }
    }

    /// Number of registered slides.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store has no slides.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Summary of a registered slide.
    pub fn slide(&self, slide: SlideId) -> Result<SlideInfo, SccgError> {
        let slides = self.inner.lock();
        let entry = slides
            .get(slide.0 as usize)
            .ok_or(SccgError::UnknownSlide { slide: slide.0 })?;
        Ok(SlideInfo {
            id: slide,
            name: entry.name.clone(),
            tiles: entry.backing.tile_count(),
            polygons: entry.backing.polygons(),
            on_disk: matches!(entry.backing, TileBacking::Disk(_)),
        })
    }

    /// Number of tiles a slide currently has.
    pub fn tile_count(&self, slide: SlideId) -> Result<usize, SccgError> {
        Ok(self.slide(slide)?.tiles)
    }

    /// The records of one tile: a shared snapshot for in-memory slides, a
    /// demand-paged fetch for disk-backed ones (at most the residency bound
    /// of decoded tiles stays resident per slide).
    ///
    /// # Errors
    ///
    /// [`SccgError::UnknownSlide`]/[`SccgError::UnknownTile`] for bad
    /// handles; [`SccgError::Storage`] when a disk-backed tile's block is
    /// corrupt, truncated or unreadable — contained to this tile.
    pub fn tile(&self, tile: TileId) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        self.tile_tagged(tile, None)
    }

    /// Like [`SlideStore::tile`], additionally recording `engine` as the
    /// tile's last faulter when the fetch performs a disk read — the
    /// affinity signal [`SlideStore::tile_affinity`] reports. In-memory
    /// slides ignore the tag (there is nothing to fault).
    ///
    /// # Errors
    ///
    /// As for [`SlideStore::tile`].
    pub fn tile_tagged(
        &self,
        tile: TileId,
        engine: Option<usize>,
    ) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        // Clone the pager handle out of the registry lock before the
        // (possibly I/O-bound) fetch: a disk read must not block lookups.
        let storage = {
            let slides = self.inner.lock();
            let entry = slides
                .get(tile.slide.0 as usize)
                .ok_or(SccgError::UnknownSlide {
                    slide: tile.slide.0,
                })?;
            match &entry.backing {
                TileBacking::Memory(tiles) => {
                    return tiles
                        .get(tile.index)
                        .cloned()
                        .ok_or(SccgError::UnknownTile {
                            slide: tile.slide.0,
                            tile: tile.index,
                            tiles: tiles.len(),
                        });
                }
                TileBacking::Disk(storage) => {
                    if tile.index >= storage.tile_count() {
                        return Err(SccgError::UnknownTile {
                            slide: tile.slide.0,
                            tile: tile.index,
                            tiles: storage.tile_count(),
                        });
                    }
                    Arc::clone(storage)
                }
            }
        };
        storage.fetch_tagged(tile.index, engine)
    }

    /// The pager behind a disk-backed slide, or `None` for in-memory or
    /// unknown handles. Cloned out of the registry lock so callers never
    /// hold it across pager operations.
    fn disk_pager(&self, slide: SlideId) -> Option<Arc<TileStorage>> {
        let slides = self.inner.lock();
        match slides.get(slide.0 as usize).map(|entry| &entry.backing) {
            Some(TileBacking::Disk(storage)) => Some(Arc::clone(storage)),
            _ => None,
        }
    }

    /// Where `tile` currently lives — the scheduler's placement signal.
    /// Infallible by design (placement must never fail a query): unknown
    /// handles and out-of-range indices report [`TileResidency::Absent`].
    pub fn tile_residency(&self, tile: TileId) -> TileResidency {
        let slides = self.inner.lock();
        match slides
            .get(tile.slide.0 as usize)
            .map(|entry| &entry.backing)
        {
            Some(TileBacking::Memory(tiles)) if tile.index < tiles.len() => TileResidency::Memory,
            Some(TileBacking::Disk(storage)) => {
                let storage = Arc::clone(storage);
                drop(slides);
                if storage.is_resident(tile.index) {
                    TileResidency::Resident
                } else {
                    TileResidency::Absent
                }
            }
            _ => TileResidency::Absent,
        }
    }

    /// The engine that last faulted a disk-backed tile in (see
    /// [`SlideStore::tile_tagged`]); `None` for in-memory slides, unknown
    /// handles, or tiles never fault-tagged.
    pub fn tile_affinity(&self, tile: TileId) -> Option<usize> {
        self.disk_pager(tile.slide)?.last_faulter(tile.index)
    }

    /// A recency-neutral residency snapshot of a disk-backed slide's pager,
    /// or `None` for in-memory or unknown handles (whose tiles are all
    /// trivially available).
    pub fn residency_snapshot(&self, slide: SlideId) -> Option<ResidencySnapshot> {
        Some(self.disk_pager(slide)?.residency_snapshot())
    }

    /// Prefetches a disk-backed tile into its pager's *free* capacity (a
    /// prefetch never evicts — see [`TileStorage::prefetch`]). Returns
    /// `Ok(true)` when this call performed a disk read; `Ok(false)` when
    /// the tile was already resident or in flight, the pager is full, or
    /// the handle targets an in-memory slide, an unknown slide, or an
    /// out-of-range index (prefetch is advisory, so bad handles are a no-op
    /// rather than an error — the demand fetch will report them).
    ///
    /// # Errors
    ///
    /// [`SccgError::Storage`] when the tile's block is corrupt, truncated
    /// or unreadable.
    pub fn prefetch_tile(&self, tile: TileId) -> Result<bool, SccgError> {
        let Some(storage) = self.disk_pager(tile.slide) else {
            return Ok(false);
        };
        if tile.index >= storage.tile_count() {
            return Ok(false);
        }
        storage.prefetch(tile.index)
    }

    /// Aggregate out-of-core telemetry across every disk-backed slide.
    pub fn storage_stats(&self) -> StorageStats {
        let pagers: Vec<Arc<TileStorage>> = {
            let slides = self.inner.lock();
            slides
                .iter()
                .filter_map(|entry| match &entry.backing {
                    TileBacking::Disk(storage) => Some(Arc::clone(storage)),
                    TileBacking::Memory(_) => None,
                })
                .collect()
        };
        let mut stats = StorageStats::default();
        for pager in pagers {
            stats.absorb(&pager.stats());
        }
        let fetches = stats.pager_hits + stats.pager_misses;
        if fetches > 0 {
            stats.pager_hit_rate = stats.pager_hits as f64 / fetches as f64;
        }
        stats
    }
}

fn parse_tile(index: usize, text: &str) -> Result<Vec<PolygonRecord>, SccgError> {
    parse_polygon_file(text).map_err(|e| SccgError::Parse {
        detail: format!("tile {index}: {e}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::text::write_polygon_file;

    fn record() -> PolygonRecord {
        parse_polygon_file("0 4 0 0 10 0 10 10 0 10")
            .unwrap()
            .remove(0)
    }

    fn spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("sccg-serve-store-tests")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn register_and_inspect_slides() {
        let store = SlideStore::new();
        assert!(store.is_empty());
        let id = store.register_slide("algo-a", vec![vec![record()], vec![]]);
        assert_eq!(store.len(), 1);
        let info = store.slide(id).unwrap();
        assert_eq!(info.name, "algo-a");
        assert_eq!(info.tiles, 2);
        assert_eq!(info.polygons, 1);
        assert!(!info.on_disk);
        assert_eq!(store.tile_count(id).unwrap(), 2);
    }

    #[test]
    fn append_tile_extends_a_slide() {
        let store = SlideStore::new();
        let id = store.register_slide("s", vec![]);
        let tile = store.append_tile(id, vec![record()]).unwrap();
        assert_eq!(tile.index, 0);
        assert_eq!(store.tile(tile).unwrap().len(), 1);
        assert_eq!(store.tile_count(id).unwrap(), 1);
    }

    #[test]
    fn unknown_handles_are_errors_not_panics() {
        let store = SlideStore::new();
        let missing = SlideId(42);
        assert_eq!(
            store.slide(missing),
            Err(SccgError::UnknownSlide { slide: 42 })
        );
        let id = store.register_slide("s", vec![vec![record()]]);
        let bad_tile = TileId {
            slide: id,
            index: 5,
        };
        assert_eq!(
            store.tile(bad_tile),
            Err(SccgError::UnknownTile {
                slide: id.0,
                tile: 5,
                tiles: 1
            })
        );
        assert!(store.append_tile(missing, Vec::new()).is_err());
    }

    #[test]
    fn text_registration_fails_on_malformed_tiles() {
        let store = SlideStore::new();
        let good = "0 4 0 0 10 0 10 10 0 10".to_string();
        let id = store
            .register_slide_text("parsed", std::slice::from_ref(&good))
            .unwrap();
        assert_eq!(store.tile_count(id).unwrap(), 1);
        let err = store
            .register_slide_text("broken", &[good, "not a polygon".to_string()])
            .unwrap_err();
        assert!(matches!(err, SccgError::Parse { .. }), "{err:?}");
        // The failed registration left no partial slide behind.
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn streaming_registration_spills_to_disk_and_pages_back() {
        let dir = spill_dir("spill");
        let store = SlideStore::with_spill(&dir, 2).unwrap();
        assert_eq!(store.residency_bound(), Some(2));
        let texts: Vec<String> = (0..6)
            .map(|i| {
                let mut rec = record();
                rec.id = i;
                write_polygon_file(&[rec])
            })
            .collect();
        let id = store
            .register_slide_streaming("disk", texts.clone())
            .unwrap();
        let info = store.slide(id).unwrap();
        assert!(info.on_disk);
        assert_eq!(info.tiles, 6);
        assert_eq!(info.polygons, 6);
        // Every tile pages back bit-identical to its source text.
        for (index, text) in texts.iter().enumerate() {
            let fetched = store.tile(TileId { slide: id, index }).unwrap();
            assert_eq!(&write_polygon_file(&fetched), text);
        }
        let stats = store.storage_stats();
        assert_eq!(stats.disk_slides, 1);
        assert!(stats.resident_tiles <= 2);
        assert!(stats.peak_resident_tiles <= 2);
        assert_eq!(stats.pager_hits + stats.pager_misses, 6);
        assert!(stats.bytes_on_disk > 0);
        // Disk-backed slides are immutable.
        assert!(matches!(
            store.append_tile(id, vec![record()]),
            Err(SccgError::Storage { .. })
        ));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_registration_without_spill_lands_in_memory() {
        let store = SlideStore::new();
        let id = store
            .register_slide_streaming("mem", vec![write_polygon_file(&[record()])])
            .unwrap();
        let info = store.slide(id).unwrap();
        assert!(!info.on_disk);
        assert_eq!(info.tiles, 1);
        assert_eq!(store.storage_stats(), StorageStats::default());
    }

    #[test]
    fn failed_streaming_registration_leaves_nothing_behind() {
        let dir = spill_dir("abort");
        let store = SlideStore::with_spill(&dir, 4).unwrap();
        let err = store
            .register_slide_streaming(
                "broken",
                vec![write_polygon_file(&[record()]), "not a polygon".to_string()],
            )
            .unwrap_err();
        assert!(matches!(err, SccgError::Parse { .. }), "{err:?}");
        assert_eq!(store.len(), 0);
        // The partial slide file was deleted.
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupting_a_disk_tile_fails_only_that_tile() {
        let dir = spill_dir("corrupt");
        let store = SlideStore::with_spill(&dir, 1).unwrap();
        let texts: Vec<String> = (0..3)
            .map(|i| {
                let mut rec = record();
                rec.id = i;
                write_polygon_file(&[rec])
            })
            .collect();
        let id = store.register_slide_streaming("c", texts.clone()).unwrap();
        // Flip one byte inside tile 1's block, behind the pager's back.
        let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap();
        let mut bytes = std::fs::read(file.path()).unwrap();
        // Header is 16 bytes; tile blocks are identical in size, so tile 1
        // starts at 16 + len and we flip a byte a little inside it.
        let block_len = (bytes.len() - 16 - 24 - 4 - 3 * 28) / 3;
        bytes[16 + block_len + 6] ^= 0xFF;
        std::fs::write(file.path(), &bytes).unwrap();
        let err = store
            .tile(TileId {
                slide: id,
                index: 1,
            })
            .unwrap_err();
        assert!(matches!(err, SccgError::Storage { .. }), "{err:?}");
        // The other tiles still page in fine.
        for index in [0usize, 2] {
            let fetched = store.tile(TileId { slide: id, index }).unwrap();
            assert_eq!(&write_polygon_file(&fetched), &texts[index]);
        }
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The scheduler-facing locality surface: residency classification,
    /// fault affinity tagging, snapshots, and never-evicting prefetch —
    /// across memory slides, disk slides, and bad handles.
    #[test]
    fn residency_affinity_and_prefetch_surface() {
        let dir = spill_dir("locality");
        let store = SlideStore::with_spill(&dir, 2).unwrap();
        let texts: Vec<String> = (0..4)
            .map(|i| {
                let mut rec = record();
                rec.id = i;
                write_polygon_file(&[rec])
            })
            .collect();
        let disk = store.register_slide_streaming("disk", texts).unwrap();

        // A memory slide in the same store: always Memory, never prefetched.
        let mem_store = SlideStore::new();
        let mem = mem_store.register_slide("mem", vec![vec![record()]]);
        let mem_tile = TileId {
            slide: mem,
            index: 0,
        };
        assert_eq!(mem_store.tile_residency(mem_tile), TileResidency::Memory);
        assert_eq!(mem_store.tile_affinity(mem_tile), None);
        assert_eq!(mem_store.prefetch_tile(mem_tile), Ok(false));
        assert!(mem_store.residency_snapshot(mem).is_none());

        // Disk tiles start absent; a tagged fetch makes them resident and
        // records the faulting engine.
        let t0 = TileId {
            slide: disk,
            index: 0,
        };
        assert_eq!(store.tile_residency(t0), TileResidency::Absent);
        assert_eq!(store.tile_affinity(t0), None);
        store.tile_tagged(t0, Some(3)).unwrap();
        assert_eq!(store.tile_residency(t0), TileResidency::Resident);
        assert_eq!(store.tile_affinity(t0), Some(3));

        // Prefetch fills the one free slot, then refuses to evict.
        let t1 = TileId {
            slide: disk,
            index: 1,
        };
        assert_eq!(store.prefetch_tile(t1), Ok(true));
        assert_eq!(store.tile_residency(t1), TileResidency::Resident);
        assert_eq!(
            store.prefetch_tile(TileId {
                slide: disk,
                index: 2,
            }),
            Ok(false),
            "full pager: prefetch must not evict"
        );
        let snapshot = store.residency_snapshot(disk).unwrap();
        assert!(snapshot.is_resident(0) && snapshot.is_resident(1));
        assert_eq!(snapshot.resident_count(), 2);

        // Bad handles are placement no-ops, not errors.
        let missing = TileId {
            slide: SlideId(99),
            index: 0,
        };
        assert_eq!(store.tile_residency(missing), TileResidency::Absent);
        assert_eq!(store.tile_affinity(missing), None);
        assert_eq!(store.prefetch_tile(missing), Ok(false));
        assert_eq!(
            store.prefetch_tile(TileId {
                slide: disk,
                index: 42,
            }),
            Ok(false)
        );
        assert!(store.storage_stats().coalesced_faults == 0);
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
