//! The slide registry: parse once, query many times.
//!
//! The paper's workflow (Figure 1) registers each segmentation result as a
//! table of polygon records before any cross-comparison query runs. The
//! [`SlideStore`] is that registry: callers hand in parsed (or raw-text)
//! per-tile polygon records once and get back [`SlideId`]/[`TileId`] handles;
//! every later [`crate::QueryRequest`] references the handles, so the parse
//! and validation cost is paid exactly once per slide rather than once per
//! query.

use parking_lot::Mutex;
use sccg::SccgError;
use sccg_geometry::text::{parse_polygon_file, PolygonRecord};
use serde::Serialize;
use std::sync::Arc;

/// Handle of a registered slide (one segmentation result: a sequence of
/// tiles of polygon records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct SlideId(pub(crate) u64);

impl SlideId {
    /// The raw id value (stable for the lifetime of the store).
    pub fn value(&self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from a raw id value (for example one read back
    /// from exported telemetry). Only meaningful for the store that
    /// originally issued it; an unknown id fails lookups with
    /// [`SccgError::UnknownSlide`] rather than panicking.
    pub fn from_raw(value: u64) -> Self {
        SlideId(value)
    }
}

/// Handle of one tile within a registered slide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct TileId {
    /// The slide the tile belongs to.
    pub slide: SlideId,
    /// Zero-based tile index within the slide.
    pub index: usize,
}

/// Immutable per-slide registry entry.
struct SlideEntry {
    name: String,
    tiles: Vec<Arc<Vec<PolygonRecord>>>,
}

/// Summary of one registered slide.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct SlideInfo {
    /// The slide's handle.
    pub id: SlideId,
    /// The name it was registered under.
    pub name: String,
    /// Number of registered tiles.
    pub tiles: usize,
    /// Total polygon records across all tiles.
    pub polygons: usize,
}

/// Registry of parsed slide data, shared between callers and a
/// [`crate::ComparisonService`].
///
/// Cheap to clone: clones share the same underlying registry. Tiles are
/// immutable once registered (appending new tiles is allowed and simply
/// extends the slide), so queries can snapshot `Arc`s to tile data without
/// copying polygons.
#[derive(Clone, Default)]
pub struct SlideStore {
    inner: Arc<Mutex<Vec<SlideEntry>>>,
}

impl std::fmt::Debug for SlideStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slides = self.inner.lock();
        f.debug_struct("SlideStore")
            .field("slides", &slides.len())
            .finish()
    }
}

impl SlideStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        SlideStore::default()
    }

    /// Registers a slide from already-parsed per-tile polygon records and
    /// returns its handle.
    pub fn register_slide(
        &self,
        name: impl Into<String>,
        tiles: Vec<Vec<PolygonRecord>>,
    ) -> SlideId {
        let mut slides = self.inner.lock();
        let id = SlideId(slides.len() as u64);
        slides.push(SlideEntry {
            name: name.into(),
            tiles: tiles.into_iter().map(Arc::new).collect(),
        });
        id
    }

    /// Registers a slide from raw polygon-file texts (one text per tile),
    /// parsing each tile up front. Unlike the batch pipeline — which skips
    /// malformed tiles so one bad file cannot abort a whole-slide run — the
    /// serving route fails registration with [`SccgError::Parse`]: a service
    /// must not silently serve queries over partially-loaded slides.
    pub fn register_slide_text(
        &self,
        name: impl Into<String>,
        tile_texts: &[String],
    ) -> Result<SlideId, SccgError> {
        let mut tiles = Vec::with_capacity(tile_texts.len());
        for (index, text) in tile_texts.iter().enumerate() {
            let records = parse_polygon_file(text).map_err(|e| SccgError::Parse {
                detail: format!("tile {index}: {e}"),
            })?;
            tiles.push(records);
        }
        Ok(self.register_slide(name, tiles))
    }

    /// Appends one tile's records to an existing slide, returning the new
    /// tile's handle.
    pub fn append_tile(
        &self,
        slide: SlideId,
        records: Vec<PolygonRecord>,
    ) -> Result<TileId, SccgError> {
        let mut slides = self.inner.lock();
        let entry = slides
            .get_mut(slide.0 as usize)
            .ok_or(SccgError::UnknownSlide { slide: slide.0 })?;
        entry.tiles.push(Arc::new(records));
        Ok(TileId {
            slide,
            index: entry.tiles.len() - 1,
        })
    }

    /// Number of registered slides.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store has no slides.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Summary of a registered slide.
    pub fn slide(&self, slide: SlideId) -> Result<SlideInfo, SccgError> {
        let slides = self.inner.lock();
        let entry = slides
            .get(slide.0 as usize)
            .ok_or(SccgError::UnknownSlide { slide: slide.0 })?;
        Ok(SlideInfo {
            id: slide,
            name: entry.name.clone(),
            tiles: entry.tiles.len(),
            polygons: entry.tiles.iter().map(|t| t.len()).sum(),
        })
    }

    /// Number of tiles a slide currently has.
    pub fn tile_count(&self, slide: SlideId) -> Result<usize, SccgError> {
        Ok(self.slide(slide)?.tiles)
    }

    /// Snapshots the records of one tile (shared, no copy).
    pub fn tile(&self, tile: TileId) -> Result<Arc<Vec<PolygonRecord>>, SccgError> {
        let slides = self.inner.lock();
        let entry = slides
            .get(tile.slide.0 as usize)
            .ok_or(SccgError::UnknownSlide {
                slide: tile.slide.0,
            })?;
        entry
            .tiles
            .get(tile.index)
            .cloned()
            .ok_or(SccgError::UnknownTile {
                slide: tile.slide.0,
                tile: tile.index,
                tiles: entry.tiles.len(),
            })
    }

    /// Snapshots the tiles of `slide` at the given indices (shared `Arc`s,
    /// no polygon copies), validating every index.
    pub(crate) fn snapshot(
        &self,
        slide: SlideId,
        indices: &[usize],
    ) -> Result<Vec<Arc<Vec<PolygonRecord>>>, SccgError> {
        let slides = self.inner.lock();
        let entry = slides
            .get(slide.0 as usize)
            .ok_or(SccgError::UnknownSlide { slide: slide.0 })?;
        indices
            .iter()
            .map(|&index| {
                entry
                    .tiles
                    .get(index)
                    .cloned()
                    .ok_or(SccgError::UnknownTile {
                        slide: slide.0,
                        tile: index,
                        tiles: entry.tiles.len(),
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> PolygonRecord {
        parse_polygon_file("0 4 0 0 10 0 10 10 0 10")
            .unwrap()
            .remove(0)
    }

    #[test]
    fn register_and_inspect_slides() {
        let store = SlideStore::new();
        assert!(store.is_empty());
        let id = store.register_slide("algo-a", vec![vec![record()], vec![]]);
        assert_eq!(store.len(), 1);
        let info = store.slide(id).unwrap();
        assert_eq!(info.name, "algo-a");
        assert_eq!(info.tiles, 2);
        assert_eq!(info.polygons, 1);
        assert_eq!(store.tile_count(id).unwrap(), 2);
    }

    #[test]
    fn append_tile_extends_a_slide() {
        let store = SlideStore::new();
        let id = store.register_slide("s", vec![]);
        let tile = store.append_tile(id, vec![record()]).unwrap();
        assert_eq!(tile.index, 0);
        assert_eq!(store.tile(tile).unwrap().len(), 1);
        assert_eq!(store.tile_count(id).unwrap(), 1);
    }

    #[test]
    fn unknown_handles_are_errors_not_panics() {
        let store = SlideStore::new();
        let missing = SlideId(42);
        assert_eq!(
            store.slide(missing),
            Err(SccgError::UnknownSlide { slide: 42 })
        );
        let id = store.register_slide("s", vec![vec![record()]]);
        let bad_tile = TileId {
            slide: id,
            index: 5,
        };
        assert_eq!(
            store.tile(bad_tile),
            Err(SccgError::UnknownTile {
                slide: id.0,
                tile: 5,
                tiles: 1
            })
        );
        assert!(store.append_tile(missing, Vec::new()).is_err());
    }

    #[test]
    fn text_registration_fails_on_malformed_tiles() {
        let store = SlideStore::new();
        let good = "0 4 0 0 10 0 10 10 0 10".to_string();
        let id = store
            .register_slide_text("parsed", std::slice::from_ref(&good))
            .unwrap();
        assert_eq!(store.tile_count(id).unwrap(), 1);
        let err = store
            .register_slide_text("broken", &[good, "not a polygon".to_string()])
            .unwrap_err();
        assert!(matches!(err, SccgError::Parse { .. }), "{err:?}");
        // The failed registration left no partial slide behind.
        assert_eq!(store.len(), 1);
    }
}
