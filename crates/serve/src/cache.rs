//! Response-cache keying for the serving layer.
//!
//! Repeated analytics over the same slide pair dominate real serving
//! workloads (re-rendered viewers, dashboards, parameter sweeps that revisit
//! a baseline), so the service memoizes full [`crate::QueryResponse`]s in an
//! [`LruCache`]. The cache implementation itself is the workspace-shared
//! [`sccg::collections::LruCache`] (the storage layer's tile pager and the
//! wire front-end's routing cache use the same one); this module re-exports
//! it and owns what is serve-specific: the cache key and the configuration
//! fingerprint. The key captures everything that determines the result *and*
//! the response shape: the slide pair, the resolved tile index list (in
//! merge order), the effective PixelBox configuration fingerprint, and the
//! device preference (results are bit-identical across devices, but the
//! response records which substrate served it, so preferences cache
//! separately).

use crate::store::SlideId;
use sccg::pixelbox::{AggregationDevice, PixelBoxConfig, Variant};

pub use sccg::collections::LruCache;

/// Cache key of one query's response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub first: SlideId,
    pub second: SlideId,
    /// Resolved tile indices in merge order.
    pub tiles: Vec<usize>,
    /// Fingerprint of the effective [`PixelBoxConfig`].
    pub config: u64,
    pub device: Option<AggregationDevice>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Process-stable fingerprint of a PixelBox configuration: FNV-1a 64 over an
/// explicit field-wise encoding (integers as little-endian bytes, the variant
/// as a fixed tag, flags as single bytes).
///
/// `DefaultHasher` over the `Debug` rendering would be simpler, but its
/// output is deliberately randomized per process — once cache keys are
/// observable over the wire or ever persisted, a restart would silently
/// change every fingerprint. The encoding below is the contract instead; the
/// `paper_default` value is pinned in a unit test so accidental changes fail
/// loudly.
pub(crate) fn config_fingerprint(config: &PixelBoxConfig) -> u64 {
    let variant_tag: u8 = match config.variant {
        Variant::PixelOnly => 0,
        Variant::NoSep => 1,
        Variant::Full => 2,
    };
    let mut hash = FNV_OFFSET;
    hash = fnv1a(hash, &config.block_size.to_le_bytes());
    hash = fnv1a(hash, &config.grid_size.to_le_bytes());
    hash = fnv1a(hash, &config.threshold.to_le_bytes());
    hash = fnv1a(hash, &[variant_tag]);
    hash = fnv1a(
        hash,
        &[
            u8::from(config.opts.shared_memory_vertices),
            u8::from(config.opts.avoid_bank_conflicts),
            u8::from(config.opts.unroll_loops),
        ],
    );
    fnv1a(hash, &config.cpu_fanout.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: usize) -> CacheKey {
        CacheKey {
            first: SlideId(0),
            second: SlideId(1),
            tiles: vec![tile],
            config: 7,
            device: None,
        }
    }

    /// The hoisted cache still works keyed by the serve-specific `CacheKey`
    /// (the shape the response cache uses).
    #[test]
    fn lru_works_with_cache_keys() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(1), "b");
        assert_eq!(cache.get(&key(0)), Some("a")); // 0 becomes most recent
        cache.insert(key(2), "c"); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(0)), Some("a"));
        assert_eq!(cache.get(&key(2)), Some("c"));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = PixelBoxConfig::paper_default();
        let other = base.with_variant(sccg::pixelbox::Variant::NoSep);
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
        let flags = PixelBoxConfig {
            opts: sccg::pixelbox::OptimizationFlags::none(),
            ..base
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&flags));
    }

    /// The fingerprint is a process-independent contract: the value for the
    /// paper-default configuration is pinned. If this test fails, the
    /// encoding changed — which invalidates any persisted or on-the-wire
    /// cache key.
    #[test]
    fn fingerprint_of_paper_default_is_pinned() {
        assert_eq!(
            config_fingerprint(&PixelBoxConfig::paper_default()),
            PAPER_DEFAULT_FINGERPRINT,
        );
    }

    /// FNV-1a 64 over: block_size=64, grid_size=256, threshold=2048 (LE
    /// u32s), variant tag 2 (Full), flags [1, 1, 1], cpu_fanout=4 (LE u32).
    /// Computed independently (reference FNV-1a over those 20 bytes).
    const PAPER_DEFAULT_FINGERPRINT: u64 = 0x098f_65e7_7c9c_a161;

    /// The independent const re-derivation must agree with the pinned
    /// literal, so the byte listing above is auditable in place.
    #[test]
    fn pinned_fingerprint_matches_byte_listing() {
        assert_eq!(compute_paper_default(), PAPER_DEFAULT_FINGERPRINT);
    }

    /// Independent const re-derivation of the same encoding, so the pinned
    /// value is auditable without an external tool.
    const fn compute_paper_default() -> u64 {
        const BYTES: [u8; 20] = [
            64, 0, 0, 0, // block_size
            0, 1, 0, 0, // grid_size
            0, 8, 0, 0, // threshold = 2048
            2, // Variant::Full
            1, 1, 1, // optimization flags
            4, 0, 0, 0, // cpu_fanout
        ];
        let mut hash = FNV_OFFSET;
        let mut i = 0;
        while i < BYTES.len() {
            hash = (hash ^ BYTES[i] as u64).wrapping_mul(FNV_PRIME);
            i += 1;
        }
        hash
    }
}
