//! Bounded LRU cache of query responses (and, via [`LruCache`]'s generic
//! form, of the wire front-end's per-client routing state).
//!
//! Repeated analytics over the same slide pair dominate real serving
//! workloads (re-rendered viewers, dashboards, parameter sweeps that revisit
//! a baseline), so the service memoizes full [`crate::QueryResponse`]s. The
//! key captures everything that determines the result *and* the response
//! shape: the slide pair, the resolved tile index list (in merge order), the
//! effective PixelBox configuration fingerprint, and the device preference
//! (results are bit-identical across devices, but the response records which
//! substrate served it, so preferences cache separately).

use crate::store::SlideId;
use sccg::pixelbox::{AggregationDevice, PixelBoxConfig, Variant};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Cache key of one query's response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub first: SlideId,
    pub second: SlideId,
    /// Resolved tile indices in merge order.
    pub tiles: Vec<usize>,
    /// Fingerprint of the effective [`PixelBoxConfig`].
    pub config: u64,
    pub device: Option<AggregationDevice>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Process-stable fingerprint of a PixelBox configuration: FNV-1a 64 over an
/// explicit field-wise encoding (integers as little-endian bytes, the variant
/// as a fixed tag, flags as single bytes).
///
/// `DefaultHasher` over the `Debug` rendering would be simpler, but its
/// output is deliberately randomized per process — once cache keys are
/// observable over the wire or ever persisted, a restart would silently
/// change every fingerprint. The encoding below is the contract instead; the
/// `paper_default` value is pinned in a unit test so accidental changes fail
/// loudly.
pub(crate) fn config_fingerprint(config: &PixelBoxConfig) -> u64 {
    let variant_tag: u8 = match config.variant {
        Variant::PixelOnly => 0,
        Variant::NoSep => 1,
        Variant::Full => 2,
    };
    let mut hash = FNV_OFFSET;
    hash = fnv1a(hash, &config.block_size.to_le_bytes());
    hash = fnv1a(hash, &config.grid_size.to_le_bytes());
    hash = fnv1a(hash, &config.threshold.to_le_bytes());
    hash = fnv1a(hash, &[variant_tag]);
    hash = fnv1a(
        hash,
        &[
            u8::from(config.opts.shared_memory_vertices),
            u8::from(config.opts.avoid_bank_conflicts),
            u8::from(config.opts.unroll_loops),
        ],
    );
    fnv1a(hash, &config.cpu_fanout.to_le_bytes())
}

/// A bounded map with least-recently-used eviction. Capacity `0` disables
/// caching entirely.
///
/// Recency is tracked with monotonic sequence numbers instead of reordering
/// a queue: every access stamps the entry with a fresh sequence and appends
/// `(seq, key)` to the order queue, leaving the old position behind as a
/// stale marker that eviction skips (its sequence no longer matches the
/// entry's). `get`/`insert` are O(1) amortized — the queue is compacted down
/// to live markers whenever stale ones outnumber the capacity — where the
/// previous scheme scanned the whole queue on every hit, exactly the path
/// the wire front-end makes hot.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, Stamped<V>>,
    /// `(sequence, key)` markers from least- to most-recently stamped; an
    /// entry whose sequence differs from its map stamp is stale.
    order: VecDeque<(u64, K)>,
    next_seq: u64,
}

#[derive(Debug)]
struct Stamped<V> {
    value: V,
    seq: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Stamps `key` as most recently used. The caller guarantees the key is
    /// in the map.
    fn touch(&mut self, key: &K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.get_mut(key).expect("touched key is present").seq = seq;
        self.order.push_back((seq, key.clone()));
        self.compact();
    }

    /// Drops stale markers once they outnumber live entries by more than the
    /// capacity, bounding the queue at O(capacity) without per-access scans.
    fn compact(&mut self) {
        if self.order.len() <= 2 * self.capacity + 8 {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(seq, key)| map.get(key).is_some_and(|entry| entry.seq == *seq));
    }

    /// Returns a clone of the value under `key`, marking it most recently
    /// used.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let value = self.map.get(key)?.value.clone();
        self.touch(key);
        Some(value)
    }

    /// Inserts (or replaces) the value under `key` as the most recently used
    /// entry, evicting the least recently used entries beyond capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(key.clone(), Stamped { value, seq });
        self.order.push_back((seq, key));
        while self.map.len() > self.capacity {
            let (seq, key) = self
                .order
                .pop_front()
                .expect("entries beyond capacity have markers");
            // Only a *live* marker (sequence still current) names the LRU
            // entry; stale markers were superseded by a later touch.
            if self.map.get(&key).is_some_and(|entry| entry.seq == seq) {
                self.map.remove(&key);
            }
        }
        self.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: usize) -> CacheKey {
        CacheKey {
            first: SlideId(0),
            second: SlideId(1),
            tiles: vec![tile],
            config: 7,
            device: None,
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(1), "b");
        assert_eq!(cache.get(&key(0)), Some("a")); // 0 becomes most recent
        cache.insert(key(2), "c"); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(0)), Some("a"));
        assert_eq!(cache.get(&key(2)), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(key(0), "a");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&key(0)), None);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(0), "b");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(0)), Some("b"));
    }

    /// Many repeated hits must not let stale markers evict the wrong entry
    /// or grow the order queue without bound.
    #[test]
    fn repeated_hits_keep_recency_exact_and_queue_bounded() {
        let mut cache = LruCache::new(3);
        cache.insert(key(0), 0usize);
        cache.insert(key(1), 1);
        cache.insert(key(2), 2);
        for _ in 0..1000 {
            assert_eq!(cache.get(&key(0)), Some(0));
            assert_eq!(cache.get(&key(1)), Some(1));
        }
        // Queue stays O(capacity) despite 2000 touches.
        assert!(cache.order.len() <= 2 * 3 + 8, "order queue is bounded");
        cache.insert(key(3), 3); // evicts 2, the only untouched entry
        assert_eq!(cache.get(&key(2)), None);
        assert_eq!(cache.get(&key(0)), Some(0));
        assert_eq!(cache.get(&key(1)), Some(1));
        assert_eq!(cache.get(&key(3)), Some(3));
    }

    /// Eviction order follows touches even when every marker in front is
    /// stale.
    #[test]
    fn eviction_skips_stale_markers() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(1), "b");
        // Touch 0 repeatedly: its old markers go stale in place.
        for _ in 0..5 {
            cache.get(&key(0));
        }
        cache.insert(key(2), "c"); // must evict 1, not 0
        assert_eq!(cache.get(&key(0)), Some("a"));
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(2)), Some("c"));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = PixelBoxConfig::paper_default();
        let other = base.with_variant(sccg::pixelbox::Variant::NoSep);
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
        let flags = PixelBoxConfig {
            opts: sccg::pixelbox::OptimizationFlags::none(),
            ..base
        };
        assert_ne!(config_fingerprint(&base), config_fingerprint(&flags));
    }

    /// The fingerprint is a process-independent contract: the value for the
    /// paper-default configuration is pinned. If this test fails, the
    /// encoding changed — which invalidates any persisted or on-the-wire
    /// cache key.
    #[test]
    fn fingerprint_of_paper_default_is_pinned() {
        assert_eq!(
            config_fingerprint(&PixelBoxConfig::paper_default()),
            PAPER_DEFAULT_FINGERPRINT,
        );
    }

    /// FNV-1a 64 over: block_size=64, grid_size=256, threshold=2048 (LE
    /// u32s), variant tag 2 (Full), flags [1, 1, 1], cpu_fanout=4 (LE u32).
    /// Computed independently (reference FNV-1a over those 20 bytes).
    const PAPER_DEFAULT_FINGERPRINT: u64 = 0x098f_65e7_7c9c_a161;

    /// The independent const re-derivation must agree with the pinned
    /// literal, so the byte listing above is auditable in place.
    #[test]
    fn pinned_fingerprint_matches_byte_listing() {
        assert_eq!(compute_paper_default(), PAPER_DEFAULT_FINGERPRINT);
    }

    /// Independent const re-derivation of the same encoding, so the pinned
    /// value is auditable without an external tool.
    const fn compute_paper_default() -> u64 {
        const BYTES: [u8; 20] = [
            64, 0, 0, 0, // block_size
            0, 1, 0, 0, // grid_size
            0, 8, 0, 0, // threshold = 2048
            2, // Variant::Full
            1, 1, 1, // optimization flags
            4, 0, 0, 0, // cpu_fanout
        ];
        let mut hash = FNV_OFFSET;
        let mut i = 0;
        while i < BYTES.len() {
            hash = (hash ^ BYTES[i] as u64).wrapping_mul(FNV_PRIME);
            i += 1;
        }
        hash
    }
}
