//! Bounded LRU cache of query responses.
//!
//! Repeated analytics over the same slide pair dominate real serving
//! workloads (re-rendered viewers, dashboards, parameter sweeps that revisit
//! a baseline), so the service memoizes full [`crate::QueryResponse`]s. The
//! key captures everything that determines the result *and* the response
//! shape: the slide pair, the resolved tile index list (in merge order), the
//! effective PixelBox configuration fingerprint, and the device preference
//! (results are bit-identical across devices, but the response records which
//! substrate served it, so preferences cache separately).

use crate::store::SlideId;
use sccg::pixelbox::{AggregationDevice, PixelBoxConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Cache key of one query's response.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    pub first: SlideId,
    pub second: SlideId,
    /// Resolved tile indices in merge order.
    pub tiles: Vec<usize>,
    /// Fingerprint of the effective [`PixelBoxConfig`].
    pub config: u64,
    pub device: Option<AggregationDevice>,
}

/// Stable-within-process fingerprint of a PixelBox configuration.
///
/// `PixelBoxConfig` intentionally does not implement `Hash` (it carries
/// tuning floats in some forks); its `Debug` rendering covers every field,
/// so hashing that rendering fingerprints the configuration without adding
/// trait obligations to the core crate.
pub(crate) fn config_fingerprint(config: &PixelBoxConfig) -> u64 {
    let mut hasher = DefaultHasher::new();
    format!("{config:?}").hash(&mut hasher);
    hasher.finish()
}

/// A bounded map with least-recently-used eviction. Capacity `0` disables
/// caching entirely.
#[derive(Debug)]
pub(crate) struct LruCache<V> {
    capacity: usize,
    map: HashMap<CacheKey, V>,
    /// Keys from least- to most-recently used.
    order: VecDeque<CacheKey>,
}

impl<V: Clone> LruCache<V> {
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let key = self.order.remove(pos).expect("position is in bounds");
            self.order.push_back(key);
        }
    }

    pub fn get(&mut self, key: &CacheKey) -> Option<V> {
        let value = self.map.get(key).cloned()?;
        self.touch(key);
        Some(value)
    }

    pub fn insert(&mut self, key: CacheKey, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        self.order.push_back(key);
        while self.map.len() > self.capacity {
            let evicted = self.order.pop_front().expect("map and order in sync");
            self.map.remove(&evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tile: usize) -> CacheKey {
        CacheKey {
            first: SlideId(0),
            second: SlideId(1),
            tiles: vec![tile],
            config: 7,
            device: None,
        }
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(1), "b");
        assert_eq!(cache.get(&key(0)), Some("a")); // 0 becomes most recent
        cache.insert(key(2), "c"); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&key(1)), None);
        assert_eq!(cache.get(&key(0)), Some("a"));
        assert_eq!(cache.get(&key(2)), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(key(0), "a");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&key(0)), None);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut cache = LruCache::new(2);
        cache.insert(key(0), "a");
        cache.insert(key(0), "b");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(0)), Some("b"));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = PixelBoxConfig::paper_default();
        let other = base.with_variant(sccg::pixelbox::Variant::NoSep);
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other));
    }
}
