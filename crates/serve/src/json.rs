//! Minimal JSON rendering of service telemetry.
//!
//! The workspace's offline `serde` shim provides no-op derives (the real
//! registry crate is swapped in when network access exists — see the root
//! README), so the `Serialize` annotations on [`QueryResponse`] and
//! [`sccg::pixelbox::SplitTrace`] document the contract while these
//! hand-rolled writers produce the actual JSON the `reproduce -- serve`
//! subcommand emits. The output is plain standard JSON: object keys match
//! the Rust field names, and non-finite floats render as `null`.

use crate::service::{QueryResponse, ServiceStats, TileReport};
use crate::supervisor::EngineHealth;
use sccg::pixelbox::SplitTrace;
use sccg::JaccardSummary;
use std::fmt::Write as _;

/// Renders a float as a JSON number, mapping non-finite values to `null`.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn summary_json(summary: &JaccardSummary) -> String {
    format!(
        "{{\"similarity\":{},\"intersecting_pairs\":{},\"candidate_pairs\":{},\
         \"total_intersection_area\":{},\"total_union_area\":{}}}",
        json_f64(summary.similarity),
        summary.intersecting_pairs,
        summary.candidate_pairs,
        summary.total_intersection_area,
        summary.total_union_area,
    )
}

fn tile_json(tile: &TileReport) -> String {
    format!(
        "{{\"tile\":{},\"engine\":{},\"backend\":{},\"candidate_pairs\":{},\"summary\":{}}}",
        tile.tile,
        tile.engine,
        json_string(&tile.backend),
        tile.candidate_pairs,
        summary_json(&tile.summary),
    )
}

/// Renders a [`QueryResponse`] as a JSON object.
pub fn response_to_json(response: &QueryResponse) -> String {
    let tiles: Vec<String> = response.tiles.iter().map(tile_json).collect();
    let device = match response.device {
        Some(device) => json_string(&format!("{device:?}")),
        None => "null".to_string(),
    };
    format!(
        "{{\"first\":{},\"second\":{},\"similarity\":{},\"summary\":{},\"shards\":{},\
         \"cache_hit\":{},\"priority\":{},\"device\":{},\"tiles\":[{}]}}",
        response.first.value(),
        response.second.value(),
        json_f64(response.similarity()),
        summary_json(&response.summary),
        response.shards,
        response.cache_hit,
        json_string(&format!("{:?}", response.priority)),
        device,
        tiles.join(","),
    )
}

fn engine_json(health: &EngineHealth) -> String {
    format!(
        "{{\"engine\":{},\"device\":{},\"alive\":{},\"consecutive_failures\":{},\
         \"total_failures\":{},\"redispatched_shards\":{},\"revivals\":{}}}",
        health.engine,
        json_string(&health.device),
        health.alive,
        health.consecutive_failures,
        health.total_failures,
        health.redispatched_shards,
        health.revivals,
    )
}

/// Renders a [`ServiceStats`] snapshot as a JSON object.
pub fn stats_to_json(stats: &ServiceStats) -> String {
    let shards: Vec<String> = stats
        .shards_per_engine
        .iter()
        .map(|n| n.to_string())
        .collect();
    let engines: Vec<String> = stats.engines.iter().map(engine_json).collect();
    let scheduler = &stats.scheduler;
    format!(
        "{{\"submitted\":{},\"completed\":{},\"cache_hits\":{},\"backend_batches\":{},\
         \"in_flight\":{},\"peak_in_flight\":{},\"cache_entries\":{},\"shards_per_engine\":[{}],\
         \"redispatches\":{},\"engines\":[{}],\
         \"resident_tiles\":{},\"pager_hit_rate\":{},\"bytes_on_disk\":{},\
         \"coalesced_faults\":{},\"scheduler\":{{\"policy\":{},\"affinity_hits\":{},\
         \"affinity_misses\":{},\"prefetch_issued\":{},\"prefetch_used\":{},\
         \"prefetch_wasted\":{},\"faults_avoided\":{}}}}}",
        stats.submitted,
        stats.completed,
        stats.cache_hits,
        stats.backend_batches,
        stats.in_flight,
        stats.peak_in_flight,
        stats.cache_entries,
        shards.join(","),
        stats.redispatches,
        engines.join(","),
        stats.resident_tiles,
        json_f64(stats.pager_hit_rate),
        stats.bytes_on_disk,
        stats.coalesced_faults,
        json_string(&scheduler.policy),
        scheduler.affinity_hits,
        scheduler.affinity_misses,
        scheduler.prefetch_issued,
        scheduler.prefetch_used,
        scheduler.prefetch_wasted,
        scheduler.faults_avoided,
    )
}

/// Renders a hybrid [`SplitTrace`] as a JSON array of per-batch samples.
pub fn split_trace_to_json(trace: &SplitTrace) -> String {
    let samples: Vec<String> = trace
        .samples()
        .iter()
        .map(|s| {
            format!(
                "{{\"batch\":{},\"fraction\":{},\"gpu_pairs\":{},\"cpu_pairs\":{},\
                 \"gpu_seconds\":{},\"cpu_seconds\":{},\"next_fraction\":{}}}",
                s.batch,
                json_f64(s.fraction),
                s.gpu_pairs,
                s.cpu_pairs,
                json_f64(s.gpu_seconds),
                json_f64(s.cpu_seconds),
                json_f64(s.next_fraction),
            )
        })
        .collect();
    format!("[{}]", samples.join(","))
}

impl QueryResponse {
    /// Renders this response as a JSON object (see [`response_to_json`]).
    pub fn to_json(&self) -> String {
        response_to_json(self)
    }
}

impl ServiceStats {
    /// Renders this snapshot as a JSON object (see [`stats_to_json`]).
    pub fn to_json(&self) -> String {
        stats_to_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak\u{1}"), "\"line\\nbreak\\u0001\"");
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_trace_renders_an_empty_array() {
        assert_eq!(split_trace_to_json(&SplitTrace::default()), "[]");
    }

    #[test]
    fn engine_health_renders_every_field() {
        let health = EngineHealth {
            engine: 2,
            device: "Gpu".to_string(),
            alive: false,
            consecutive_failures: 3,
            total_failures: 7,
            redispatched_shards: 4,
            revivals: 1,
        };
        assert_eq!(
            engine_json(&health),
            "{\"engine\":2,\"device\":\"Gpu\",\"alive\":false,\"consecutive_failures\":3,\
             \"total_failures\":7,\"redispatched_shards\":4,\"revivals\":1}"
        );
    }
}
