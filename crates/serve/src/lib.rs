//! Slide-serving query API for the SCCG reproduction.
//!
//! The paper's system (Wang et al., PVLDB 2012, Figure 1) is a *query
//! service*: segmentation results are registered once as slide tables, and
//! cross-comparison queries over them execute on a hybrid CPU-GPU runtime.
//! The one-shot library entry points ([`sccg::CrossComparison`],
//! [`sccg::pipeline::Pipeline`]) re-parse inputs and own a private engine
//! per call;
//! this crate is the persistent serving layer on top of them:
//!
//! * [`SlideStore`] — register parsed (or raw-text) slide/tile data once,
//!   get back [`SlideId`]/[`TileId`] handles.
//! * [`QueryRequest`] — a builder-style query over a slide pair: tile subset
//!   or whole slide, device preference, PixelBox variant, priority.
//! * [`ComparisonService`] — owns a pool of engines (CPU/GPU/hybrid mix),
//!   shards whole-slide queries across the pool, merges per-tile Jaccard
//!   accumulators in deterministic tile order, caches responses, bounds
//!   in-flight queries with admission control, and pools hybrid
//!   [`sccg::pixelbox::SplitController`] observations across engines.
//! * [`QueryHandle`] / [`QueryResponse`] — resolve asynchronously-computed
//!   results; [`json`] renders responses and telemetry as JSON.
//!
//! # Quick start
//!
//! ```
//! use sccg_serve::prelude::*;
//!
//! // Register two segmentation results (2 tiles each) once.
//! let spec = |seed| sccg_datagen::TileSpec {
//!     target_polygons: 40, width: 512, height: 512, seed, ..Default::default()
//! };
//! let tiles: Vec<_> = (0..2).map(|i| sccg_datagen::generate_tile_pair(&spec(i))).collect();
//! let store = SlideStore::new();
//! let a = store.register_slide("result-a", tiles.iter().map(|t| t.first.clone()).collect());
//! let b = store.register_slide("result-b", tiles.iter().map(|t| t.second.clone()).collect());
//!
//! // Serve whole-slide comparison queries over them.
//! let service = ComparisonService::new(store, ServiceConfig::default()).unwrap();
//! let response = service.submit(QueryRequest::new(a, b)).unwrap().wait().unwrap();
//! assert!(response.similarity() > 0.0 && response.similarity() <= 1.0);
//!
//! // A resubmission answers from the cache without touching any backend.
//! let again = service.submit(QueryRequest::new(a, b)).unwrap().wait().unwrap();
//! assert!(again.cache_hit);
//! assert_eq!(again.summary, response.summary);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod request;
pub mod scheduler;
pub mod service;
pub mod store;
pub mod supervisor;

pub use cache::LruCache;
pub use request::{QueryPriority, QueryRequest, TileSelection};
pub use scheduler::{PlacementPolicy, SchedulerStats};
pub use service::{
    ComparisonService, QueryEvent, QueryHandle, QueryResponse, ServiceConfig, ServiceStats,
    StreamingHandle, TileReport,
};
pub use store::{SlideId, SlideInfo, SlideStore, StorageStats, TileId, TileResidency};
pub use supervisor::EngineHealth;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::cache::LruCache;
    pub use crate::request::{QueryPriority, QueryRequest, TileSelection};
    pub use crate::scheduler::{PlacementPolicy, SchedulerStats};
    pub use crate::service::{
        ComparisonService, QueryEvent, QueryHandle, QueryResponse, ServiceConfig, ServiceStats,
        StreamingHandle, TileReport,
    };
    pub use crate::store::{SlideId, SlideInfo, SlideStore, StorageStats, TileId, TileResidency};
    pub use crate::supervisor::EngineHealth;
}
