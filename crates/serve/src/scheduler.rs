//! The placement layer: which engine runs which shard, and when.
//!
//! [`crate::ComparisonService`] used to pop shards first-come-first-served;
//! this module makes the dispatch decision an explicit, swappable
//! **placement policy**. The (crate-private) `JobQueue` still owns the
//! priority lanes and
//! the worker wakers, but *which* eligible shard a worker takes — and how a
//! query's shards are ordered before they are enqueued — is delegated to
//! the configured [`PlacementPolicy`]:
//!
//! * [`PlacementPolicy::RoundRobin`] — the historical behaviour: the first
//!   eligible shard in the most urgent lane, no reordering, no prefetch.
//! * [`PlacementPolicy::ResidencyAware`] (the default) — places work where
//!   its data already is. A query's shards are ordered so tiles resident in
//!   the store's pagers compute first; at pop time a worker prefers shards
//!   whose tiles are resident, breaking ties toward tiles *it* last faulted
//!   in ([`crate::SlideStore::tile_affinity`]); and a background prefetcher
//!   task (spawned on the service executor, the PR 4 seam) faults upcoming
//!   tiles into the pagers' free capacity a bounded window ahead of
//!   compute. An anti-starvation guard caps how often any eligible shard
//!   may be bypassed.
//!
//! Placement changes only *where and when* a shard runs — never its
//! position in the response's merge order — so responses are bit-identical
//! across policies by construction (the equivalence proptests in
//! `tests/placement_proptests.rs` pin this).
//!
//! Every decision is exported: [`SchedulerStats`] counts affinity hits and
//! misses, prefetches issued/used/wasted, and disk faults avoided, surfaced
//! through [`crate::ServiceStats`] and its JSON rendering.

use crate::service::QueryState;
use crate::store::{TileId, TileResidency};
use crate::supervisor::Supervisor;
use sccg::pipeline::exec::register_waker;
use sccg::pixelbox::AggregationDevice;
use sccg::sync::lock;
use serde::Serialize;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// How many eligible shards a residency-aware pop inspects before settling:
/// residency probes cost a lock acquisition each, so a very deep queue is
/// scanned only this far (the tail is reached as the queue drains).
const SCAN_LIMIT: usize = 32;

/// How many times one eligible shard may be passed over for a
/// better-placed one before the policy takes it unconditionally — the
/// anti-starvation guard: locality is a preference, never a denial of
/// service.
const BYPASS_LIMIT: u32 = 64;

/// Which placement policy a [`crate::ComparisonService`] dispatches with
/// (see [`crate::ServiceConfig::with_placement`] and the [module
/// docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum PlacementPolicy {
    /// First eligible shard wins; no reordering, no prefetch. The
    /// historical dispatch order.
    RoundRobin,
    /// Resident tiles first, affinity tie-break, background prefetch — the
    /// default.
    #[default]
    ResidencyAware,
}

impl PlacementPolicy {
    /// Stable telemetry name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::RoundRobin => "round-robin",
            PlacementPolicy::ResidencyAware => "residency-aware",
        }
    }
}

/// Snapshot of the scheduler's placement counters (all zero under
/// [`PlacementPolicy::RoundRobin`], which makes no placement decisions).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
#[non_exhaustive]
pub struct SchedulerStats {
    /// Telemetry name of the active policy ([`PlacementPolicy::name`]).
    pub policy: String,
    /// Shards dispatched while every disk-backed tile they touch was
    /// already resident — the dispatch paid no disk fault.
    pub affinity_hits: u64,
    /// Shards dispatched that still had to fault at least one tile in.
    pub affinity_misses: u64,
    /// Disk reads issued by the background prefetcher.
    pub prefetch_issued: u64,
    /// Prefetched shards whose tiles were still resident when the shard was
    /// dispatched: the prefetch converted a would-be fault into a hit.
    pub prefetch_used: u64,
    /// Prefetched shards whose tiles had been evicted again (or whose query
    /// finished) before dispatch: the prefetch read was wasted.
    pub prefetch_wasted: u64,
    /// Resident disk-backed tiles encountered at dispatch — demand faults
    /// the placement (ordering, affinity, prefetch) avoided.
    pub faults_avoided: u64,
}

/// Lock-free counters behind [`SchedulerStats`], shared by the queue, the
/// policy and the prefetcher tasks.
#[derive(Debug, Default)]
pub(crate) struct SchedulerCounters {
    pub(crate) affinity_hits: AtomicU64,
    pub(crate) affinity_misses: AtomicU64,
    pub(crate) prefetch_issued: AtomicU64,
    pub(crate) prefetch_used: AtomicU64,
    pub(crate) prefetch_wasted: AtomicU64,
    pub(crate) faults_avoided: AtomicU64,
}

impl SchedulerCounters {
    fn snapshot(&self, policy: PlacementPolicy) -> SchedulerStats {
        SchedulerStats {
            policy: policy.name().to_string(),
            affinity_hits: self.affinity_hits.load(Ordering::Relaxed),
            affinity_misses: self.affinity_misses.load(Ordering::Relaxed),
            prefetch_issued: self.prefetch_issued.load(Ordering::Relaxed),
            prefetch_used: self.prefetch_used.load(Ordering::Relaxed),
            prefetch_wasted: self.prefetch_wasted.load(Ordering::Relaxed),
            faults_avoided: self.faults_avoided.load(Ordering::Relaxed),
        }
    }
}

/// The worker identity a pop runs as: its device (eligibility) and its pool
/// index (affinity).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Worker {
    pub(crate) device: AggregationDevice,
    pub(crate) index: usize,
}

/// One unit of engine work: a single tile of a query. Carries only the tile
/// *index* — the worker faults both slides' records in through the store
/// (the pager, for disk-backed slides) when the shard actually runs.
pub(crate) struct ShardJob {
    pub(crate) query: Arc<QueryState>,
    /// Index into the query's merge-ordered tile list.
    pub(crate) position: usize,
    /// Original tile index (reported to the caller).
    pub(crate) tile_index: usize,
    /// Device restriction copied from the request.
    pub(crate) device: Option<AggregationDevice>,
    /// How many pops passed this shard over for a better-placed one —
    /// feeds the [`BYPASS_LIMIT`] anti-starvation guard.
    pub(crate) bypassed: u32,
}

impl ShardJob {
    pub(crate) fn eligible(&self, worker_device: AggregationDevice) -> bool {
        self.device.is_none_or(|d| d == worker_device)
    }

    /// Residency of the shard's two tiles (first slide, second slide).
    fn residency(&self) -> (TileResidency, TileResidency) {
        let query = &self.query;
        (
            query.store.tile_residency(TileId {
                slide: query.meta.first,
                index: self.tile_index,
            }),
            query.store.tile_residency(TileId {
                slide: query.meta.second,
                index: self.tile_index,
            }),
        )
    }

    /// Whether either of the shard's tiles was last faulted in by
    /// `worker` — the engine whose past activity pulled this data in.
    fn affine_to(&self, worker: &Worker) -> bool {
        let query = &self.query;
        [query.meta.first, query.meta.second].iter().any(|&slide| {
            query.store.tile_affinity(TileId {
                slide,
                index: self.tile_index,
            }) == Some(worker.index)
        })
    }
}

/// The placement decisions a policy makes, over the crate's internal shard
/// and query types. Object-safe; the queue holds one boxed instance.
trait Placement: Send + Sync {
    /// Whether queries under this policy get a background prefetcher task.
    fn wants_prefetch(&self) -> bool {
        false
    }

    /// Reorders a query's `(position, tile_index)` shards before they are
    /// enqueued. Only the *enqueue* order changes — `position` still names
    /// each tile's slot in the merge-ordered response, so placement cannot
    /// alter the fold.
    fn order_shards(&self, query: &QueryState, shards: &mut [(usize, usize)]) {
        let _ = (query, shards);
    }

    /// Picks the index of the shard `worker` should take from `lane`, or
    /// `None` if no shard in the lane is eligible. May mutate bypass
    /// counters on the shards it passes over.
    fn select(&self, lane: &mut VecDeque<ShardJob>, worker: &Worker) -> Option<usize>;

    /// Observes a dispatch (the chosen shard, just removed from its lane)
    /// for the placement counters.
    fn on_dispatch(&self, job: &ShardJob, worker: &Worker, counters: &SchedulerCounters) {
        let _ = (job, worker, counters);
    }
}

/// The historical first-eligible dispatch. Counts nothing and reorders
/// nothing: with this policy the scheduler behaves exactly as before the
/// placement layer existed.
struct RoundRobin;

impl Placement for RoundRobin {
    fn select(&self, lane: &mut VecDeque<ShardJob>, worker: &Worker) -> Option<usize> {
        lane.iter().position(|job| job.eligible(worker.device))
    }
}

/// Resident tiles first, affinity tie-break, bounded bypass.
struct ResidencyAware;

impl ResidencyAware {
    /// Whether both of the shard's tiles can be served without a disk fault
    /// right now (in-memory tiles always can).
    fn available(residency: (TileResidency, TileResidency)) -> bool {
        residency.0 != TileResidency::Absent && residency.1 != TileResidency::Absent
    }
}

impl Placement for ResidencyAware {
    fn wants_prefetch(&self) -> bool {
        true
    }

    fn order_shards(&self, query: &QueryState, shards: &mut [(usize, usize)]) {
        let first = query.store.residency_snapshot(query.meta.first);
        let second = query.store.residency_snapshot(query.meta.second);
        if first.is_none() && second.is_none() {
            return; // fully in-memory: every order is equally local
        }
        let resident = |tile: usize| {
            first.as_ref().is_none_or(|s| s.is_resident(tile))
                && second.as_ref().is_none_or(|s| s.is_resident(tile))
        };
        // Stable: resident tiles keep their relative order in front,
        // non-resident ones behind — the prefetcher walks this same order.
        shards.sort_by_key(|&(_, tile)| !resident(tile));
    }

    fn select(&self, lane: &mut VecDeque<ShardJob>, worker: &Worker) -> Option<usize> {
        let mut first_eligible = None;
        let mut first_available = None;
        let mut affine = None;
        let mut scanned = 0;
        for (pos, job) in lane.iter().enumerate() {
            if !job.eligible(worker.device) {
                continue;
            }
            if first_eligible.is_none() {
                first_eligible = Some(pos);
                if job.bypassed >= BYPASS_LIMIT {
                    // Anti-starvation: the oldest eligible shard has waited
                    // long enough; locality yields.
                    break;
                }
            }
            scanned += 1;
            if scanned > SCAN_LIMIT {
                break;
            }
            let residency = job.residency();
            if Self::available(residency) {
                if first_available.is_none() {
                    first_available = Some(pos);
                }
                if job.affine_to(worker) {
                    affine = Some(pos);
                    break; // best tier: resident *and* this worker's data
                }
            }
        }
        let choice = if first_eligible
            .and_then(|pos| lane.get(pos))
            .is_some_and(|job| job.bypassed >= BYPASS_LIMIT)
        {
            first_eligible
        } else {
            affine.or(first_available).or(first_eligible)
        };
        if let Some(chosen) = choice {
            for (pos, job) in lane.iter_mut().enumerate() {
                if pos == chosen {
                    break;
                }
                if job.eligible(worker.device) {
                    job.bypassed = job.bypassed.saturating_add(1);
                }
            }
        }
        choice
    }

    fn on_dispatch(&self, job: &ShardJob, _worker: &Worker, counters: &SchedulerCounters) {
        let residency = job.residency();
        let touches_disk =
            residency.0 != TileResidency::Memory || residency.1 != TileResidency::Memory;
        if touches_disk {
            if Self::available(residency) {
                counters.affinity_hits.fetch_add(1, Ordering::Relaxed);
                let resident = [residency.0, residency.1]
                    .iter()
                    .filter(|&&r| r == TileResidency::Resident)
                    .count() as u64;
                counters
                    .faults_avoided
                    .fetch_add(resident, Ordering::Relaxed);
            } else {
                counters.affinity_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if lock(&job.query.prefetched).remove(&job.tile_index) {
            if Self::available(residency) {
                counters.prefetch_used.fetch_add(1, Ordering::Relaxed);
            } else {
                counters.prefetch_wasted.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Priority-laned job queue shared by every worker task, dispatching
/// through the configured placement policy. Workers await [`JobQueue::pop`]:
/// an idle worker is a suspended future on the waker list — it holds no OS
/// thread and is re-polled when a shard arrives or the queue closes.
pub(crate) struct JobQueue {
    state: Mutex<QueueState>,
    policy: Box<dyn Placement>,
    kind: PlacementPolicy,
    counters: Arc<SchedulerCounters>,
    /// Engine liveness: a dead engine's pop parks instead of taking work
    /// (and is lazily revived there once its cooldown elapses).
    supervisor: Arc<Supervisor>,
}

struct QueueState {
    /// One FIFO lane per [`crate::QueryPriority`], most urgent first.
    lanes: [VecDeque<ShardJob>; 3],
    closed: bool,
    /// Worker tasks waiting for an eligible shard. Eligibility differs per
    /// worker, so every push wakes all of them to re-scan.
    wakers: Vec<Waker>,
}

impl JobQueue {
    pub(crate) fn new(kind: PlacementPolicy, supervisor: Arc<Supervisor>) -> Self {
        let policy: Box<dyn Placement> = match kind {
            PlacementPolicy::RoundRobin => Box::new(RoundRobin),
            PlacementPolicy::ResidencyAware => Box::new(ResidencyAware),
        };
        JobQueue {
            state: Mutex::new(QueueState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
                wakers: Vec::new(),
            }),
            policy,
            kind,
            counters: Arc::new(SchedulerCounters::default()),
            supervisor,
        }
    }

    /// Removes and returns every queued shard no live engine is eligible
    /// for. Called after an engine death: shards pinned to a device the
    /// surviving pool cannot serve would otherwise sit in the lanes forever,
    /// leaving their queries' merge barriers waiting — the caller fails each
    /// drained shard with a typed error instead.
    pub(crate) fn drain_ineligible(&self) -> Vec<ShardJob> {
        let mut state = lock(&self.state);
        let mut orphaned = Vec::new();
        for lane in state.lanes.iter_mut() {
            let mut kept = VecDeque::with_capacity(lane.len());
            while let Some(job) = lane.pop_front() {
                if self.supervisor.live_eligible_exists(job.device) {
                    kept.push_back(job);
                } else {
                    orphaned.push(job);
                }
            }
            *lane = kept;
        }
        orphaned
    }

    /// Whether queries dispatched through this queue should get a
    /// background prefetcher (see [`run_prefetch`]).
    pub(crate) fn wants_prefetch(&self) -> bool {
        self.policy.wants_prefetch()
    }

    /// Applies the policy's shard ordering before enqueueing (see
    /// [`Placement::order_shards`]).
    pub(crate) fn place(&self, query: &QueryState, shards: &mut [(usize, usize)]) {
        self.policy.order_shards(query, shards);
    }

    /// The shared placement counters (handed to prefetcher tasks).
    pub(crate) fn counters(&self) -> Arc<SchedulerCounters> {
        Arc::clone(&self.counters)
    }

    /// Snapshot of the placement counters.
    pub(crate) fn stats(&self) -> SchedulerStats {
        self.counters.snapshot(self.kind)
    }

    pub(crate) fn push(&self, job: ShardJob, lane: usize) {
        let wakers = {
            let mut state = lock(&self.state);
            state.lanes[lane].push_back(job);
            std::mem::take(&mut state.wakers)
        };
        for waker in wakers {
            waker.wake();
        }
    }

    /// Resolves to the shard the policy places on `worker`, suspending
    /// while none is eligible. Resolves to `None` once the queue is closed
    /// and no eligible work remains (pending work is drained before
    /// shutdown).
    pub(crate) fn pop(&self, worker: Worker) -> PopJob<'_> {
        PopJob {
            queue: self,
            worker,
        }
    }

    pub(crate) fn close(&self) {
        let wakers = {
            let mut state = lock(&self.state);
            state.closed = true;
            std::mem::take(&mut state.wakers)
        };
        for waker in wakers {
            waker.wake();
        }
    }
}

/// Future returned by [`JobQueue::pop`].
pub(crate) struct PopJob<'a> {
    queue: &'a JobQueue,
    worker: Worker,
}

impl Future for PopJob<'_> {
    type Output = Option<ShardJob>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // A dead engine parks instead of popping: the shards it would have
        // taken go to survivors. Each poll (the queue wakes all parked
        // workers on every push) re-checks liveness, which is where a
        // cooled-down engine revives.
        if !self.queue.supervisor.may_pop(self.worker.index) {
            let mut state = lock(&self.queue.state);
            if state.closed {
                // Shutdown must terminate dead workers too, or the
                // executor's drain would wait on them forever.
                return Poll::Ready(None);
            }
            register_waker(&mut state.wakers, cx.waker());
            return Poll::Pending;
        }
        let mut state = lock(&self.queue.state);
        for lane in state.lanes.iter_mut() {
            if let Some(pos) = self.queue.policy.select(lane, &self.worker) {
                let job = lane.remove(pos).expect("selected shard is in the lane");
                self.queue
                    .policy
                    .on_dispatch(&job, &self.worker, &self.queue.counters);
                return Poll::Ready(Some(job));
            }
        }
        if state.closed {
            return Poll::Ready(None);
        }
        register_waker(&mut state.wakers, cx.waker());
        Poll::Pending
    }
}

/// Wakes the prefetcher when a query's compute progress advances (see
/// [`run_prefetch`]): workers notify after every completed shard.
pub(crate) struct ProgressNotify {
    wakers: Mutex<Vec<Waker>>,
}

impl ProgressNotify {
    pub(crate) fn new() -> Self {
        ProgressNotify {
            wakers: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn notify(&self) {
        for waker in std::mem::take(&mut *lock(&self.wakers)) {
            waker.wake();
        }
    }
}

/// Resolves `true` once `target` is within `window` shards of the query's
/// compute progress, `false` once the query has finished (nothing left to
/// prefetch for). Re-checks under the notify lock, so a worker's progress
/// notification between check and registration cannot be lost.
struct WithinWindow<'a> {
    query: &'a QueryState,
    target: usize,
    window: usize,
}

impl WithinWindow<'_> {
    fn check(&self) -> Option<bool> {
        let remaining = self.query.remaining.load(Ordering::Acquire);
        if remaining == 0 {
            return Some(false);
        }
        let progress = self.query.shard_total - remaining.min(self.query.shard_total);
        if self.target <= progress + self.window {
            return Some(true);
        }
        None
    }
}

impl Future for WithinWindow<'_> {
    type Output = bool;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Some(ready) = self.check() {
            return Poll::Ready(ready);
        }
        let mut wakers = lock(&self.query.progress.wakers);
        if let Some(ready) = self.check() {
            return Poll::Ready(ready);
        }
        register_waker(&mut wakers, cx.waker());
        Poll::Pending
    }
}

/// The background prefetcher task of one query (an executor task on the
/// PR 4 seam): walks the placement order, staying at most `window` tiles
/// ahead of compute, and faults each upcoming tile of both slides into the
/// pagers' *free* capacity ([`crate::SlideStore::prefetch_tile`] never
/// evicts, so prefetch cannot push out tiles the queries still need).
/// Exits as soon as the query finishes; read failures are left for the
/// demand fetch to surface as the query's typed error.
pub(crate) async fn run_prefetch(
    query: Arc<QueryState>,
    order: Vec<usize>,
    counters: Arc<SchedulerCounters>,
    window: usize,
) {
    for (target, tile_index) in order.into_iter().enumerate() {
        let within = WithinWindow {
            query: &query,
            target,
            window,
        };
        if !within.await {
            return;
        }
        let mut issued = false;
        for slide in [query.meta.first, query.meta.second] {
            if let Ok(true) = query.store.prefetch_tile(TileId {
                slide,
                index: tile_index,
            }) {
                counters.prefetch_issued.fetch_add(1, Ordering::Relaxed);
                issued = true;
            }
        }
        if issued {
            lock(&query.prefetched).insert(tile_index);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheKey;
    use crate::request::QueryPriority;
    use crate::service::{QueryMeta, QueryState};
    use crate::store::{SlideId, SlideStore};
    use sccg::pipeline::exec::block_on;
    use sccg::pixelbox::PixelBoxConfig;
    use sccg_geometry::text::{parse_polygon_file, write_polygon_file};
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicBool, AtomicUsize};
    use std::task::Wake;

    /// A waker that records whether it was woken.
    struct Flag(AtomicBool);

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    /// A queue whose supervisor considers every engine alive (large
    /// threshold, irrelevant cooldown) — supervision is exercised in the
    /// service-level fault tests, not here.
    fn open_queue(kind: PlacementPolicy) -> JobQueue {
        let devices = [AggregationDevice::Gpu, AggregationDevice::Cpu];
        JobQueue::new(
            kind,
            Arc::new(Supervisor::new(
                &devices,
                u32::MAX,
                std::time::Duration::from_secs(3600),
            )),
        )
    }

    fn test_query(
        store: SlideStore,
        first: SlideId,
        second: SlideId,
        shards: usize,
    ) -> Arc<QueryState> {
        let (responder, _keepalive) = crossbeam::channel::bounded(1);
        Arc::new(QueryState {
            key: CacheKey {
                first,
                second,
                tiles: Vec::new(),
                config: 0,
                device: None,
            },
            meta: QueryMeta {
                first,
                second,
                priority: QueryPriority::Normal,
                device: None,
            },
            store,
            pixelbox: PixelBoxConfig::paper_default(),
            partials: Mutex::new(Vec::new()),
            remaining: AtomicUsize::new(shards),
            failure: Mutex::new(None),
            responder,
            stream: None,
            prefetched: Mutex::new(HashSet::new()),
            progress: ProgressNotify::new(),
            shard_total: shards,
            deadline: None,
        })
    }

    fn job(query: &Arc<QueryState>, tile: usize, device: Option<AggregationDevice>) -> ShardJob {
        ShardJob {
            query: Arc::clone(query),
            position: tile,
            tile_index: tile,
            device,
            bypassed: 0,
        }
    }

    fn poll_pop(queue: &JobQueue, worker: Worker, flag: &Arc<Flag>) -> Poll<Option<ShardJob>> {
        let waker = Waker::from(Arc::clone(flag));
        let mut cx = Context::from_waker(&waker);
        let mut pop = queue.pop(worker);
        Pin::new(&mut pop).poll(&mut cx)
    }

    /// The fairness satellite: a CPU-only shard queued *behind* GPU-pinned
    /// shards must be handed to a CPU worker immediately — the eligibility
    /// scan skips over ineligible work rather than head-of-line blocking —
    /// and a GPU worker parked before the pushes must have been woken by
    /// them. Checked for both policies.
    #[test]
    fn cpu_job_behind_gpu_jobs_is_not_starved() {
        for kind in [PlacementPolicy::RoundRobin, PlacementPolicy::ResidencyAware] {
            let queue = open_queue(kind);
            let gpu_worker = Worker {
                device: AggregationDevice::Gpu,
                index: 0,
            };
            let cpu_worker = Worker {
                device: AggregationDevice::Cpu,
                index: 1,
            };
            // Park a GPU worker on the empty queue.
            let parked = Arc::new(Flag(AtomicBool::new(false)));
            assert!(poll_pop(&queue, gpu_worker, &parked).is_pending());

            let store = SlideStore::new();
            let first = store.register_slide("a", vec![vec![]; 4]);
            let second = store.register_slide("b", vec![vec![]; 4]);
            let query = test_query(store, first, second, 4);
            for tile in 0..3 {
                queue.push(job(&query, tile, Some(AggregationDevice::Gpu)), 1);
            }
            queue.push(job(&query, 3, Some(AggregationDevice::Cpu)), 1);
            assert!(
                parked.0.load(Ordering::SeqCst),
                "{kind:?}: the parked GPU worker was woken by the pushes"
            );

            // The CPU worker gets its shard on the first poll, despite the
            // three GPU-pinned shards ahead of it in the lane.
            let idle = Arc::new(Flag(AtomicBool::new(false)));
            match poll_pop(&queue, cpu_worker, &idle) {
                Poll::Ready(Some(job)) => assert_eq!(job.tile_index, 3, "{kind:?}"),
                other => panic!(
                    "{kind:?}: CPU worker starved: {other:?}",
                    other = other.is_pending()
                ),
            }
        }
    }

    /// The residency-aware bypass guard: a shard whose tiles are never
    /// resident must still be dispatched after at most [`BYPASS_LIMIT`]
    /// better-placed dispatches.
    #[test]
    fn bypassed_shards_are_eventually_dispatched() {
        let dir = std::env::temp_dir()
            .join("sccg-serve-scheduler-tests")
            .join(format!("bypass-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SlideStore::with_spill(&dir, 1).unwrap();
        let texts: Vec<String> = (0..2)
            .map(|i| {
                let records = parse_polygon_file(&format!("{i} 4 0 0 10 0 10 10 0 10")).unwrap();
                write_polygon_file(&records)
            })
            .collect();
        let first = store.register_slide_streaming("a", texts.clone()).unwrap();
        let second = store.register_slide_streaming("b", texts).unwrap();
        // Make tile 1 resident in both pagers; tile 0 stays absent (bound 1).
        for slide in [first, second] {
            store
                .tile(crate::store::TileId { slide, index: 1 })
                .unwrap();
        }

        let queue = open_queue(PlacementPolicy::ResidencyAware);
        let worker = Worker {
            device: AggregationDevice::Cpu,
            index: 0,
        };
        let query = test_query(store, first, second, 2);
        queue.push(job(&query, 0, None), 1); // absent: gets bypassed
        let mut dispatches = 0u32;
        loop {
            queue.push(job(&query, 1, None), 1); // resident: preferred
            let popped = block_on(queue.pop(worker)).expect("open queue");
            dispatches += 1;
            if popped.tile_index == 0 {
                break;
            }
            assert!(
                dispatches <= BYPASS_LIMIT + 2,
                "absent shard starved past the bypass guard"
            );
        }
        assert!(
            dispatches > 1,
            "the resident shard was preferred at least once"
        );
        let stats = queue.stats();
        assert_eq!(stats.policy, "residency-aware");
        assert!(stats.affinity_hits >= 1, "{stats:?}");
        assert!(stats.affinity_misses >= 1, "{stats:?}");
        drop(query);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Closing the queue wakes parked workers and drains pending work
    /// before reporting `None` — under both policies.
    #[test]
    fn close_drains_then_resolves_none() {
        for kind in [PlacementPolicy::RoundRobin, PlacementPolicy::ResidencyAware] {
            let queue = open_queue(kind);
            let worker = Worker {
                device: AggregationDevice::Cpu,
                index: 0,
            };
            let store = SlideStore::new();
            let first = store.register_slide("a", vec![vec![]]);
            let second = store.register_slide("b", vec![vec![]]);
            let query = test_query(store, first, second, 1);
            queue.push(job(&query, 0, None), 2);
            queue.close();
            assert!(block_on(queue.pop(worker)).is_some(), "{kind:?}: drained");
            assert!(block_on(queue.pop(worker)).is_none(), "{kind:?}: closed");
        }
    }
}
