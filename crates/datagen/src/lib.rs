//! Synthetic pathology imaging workloads.
//!
//! The paper evaluates SCCG on 18 real data sets extracted from brain-tumor
//! whole-slide images (§5.1): each data set is a pair of segmentation results
//! for the same image, each result a group of per-tile polygon files, each
//! polygon a small rectilinear nucleus boundary (average area ≈ 150 pixels,
//! σ ≈ 100; roughly half a million polygons per result on average, with the
//! largest data set above two million). Those data sets are not public, so
//! this crate generates synthetic workloads that match the published
//! characteristics:
//!
//! * [`nucleus`] — single nucleus-like rectilinear polygons built from noisy
//!   discrete ellipses.
//! * [`tile`] — image tiles populated with nuclei, and a *perturbed* second
//!   segmentation of the same tile (jittered centres, radii and boundaries,
//!   plus dropped/added objects), so that cross-comparison produces realistic
//!   pair counts and Jaccard ratios.
//! * [`dataset`] — whole data sets (many tiles), the 18-entry catalog
//!   mirroring the paper's study, and serialization to the polygon-file text
//!   format consumed by the parser stage.
//!
//! All generation is seeded and fully deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod nucleus;
pub mod tile;

pub use dataset::{catalog, generate_dataset, Dataset, DatasetSpec};
pub use nucleus::{generate_nucleus, NucleusParams};
pub use tile::{generate_tile_pair, TilePair, TileSpec};
