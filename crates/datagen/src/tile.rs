//! Tile-level generation: two segmentation results for the same image tile.

use crate::nucleus::{generate_nucleus, NucleusParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sccg_geometry::text::{write_polygon_file, PolygonRecord};

/// Parameters of one generated image tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileSpec {
    /// Identifier of the tile within its image.
    pub tile_id: u32,
    /// Tile width in pixels.
    pub width: u32,
    /// Tile height in pixels.
    pub height: u32,
    /// Approximate number of nuclei to place in the tile.
    pub target_polygons: u32,
    /// Base nucleus shape parameters for the first segmentation result.
    pub nucleus: NucleusParams,
    /// Probability that the second segmentation misses an object present in
    /// the first (and vice versa, at half this rate for spurious objects).
    pub dropout: f64,
    /// Maximum centre displacement between the two segmentations, in pixels.
    pub max_shift: u32,
    /// Random seed; every tile derives its own generator, so tiles can be
    /// produced independently and in any order.
    pub seed: u64,
}

impl Default for TileSpec {
    fn default() -> Self {
        TileSpec {
            tile_id: 0,
            width: 4096,
            height: 4096,
            target_polygons: 500,
            nucleus: NucleusParams::default(),
            dropout: 0.05,
            max_shift: 2,
            seed: 0,
        }
    }
}

/// The two segmentation results for one image tile, in the paper's polygon
/// file representation ("polygons extracted from a single tile are contained
/// in a single polygon file", §2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct TilePair {
    /// Identifier of the tile.
    pub tile_id: u32,
    /// Polygon records produced by the first segmentation.
    pub first: Vec<PolygonRecord>,
    /// Polygon records produced by the second segmentation.
    pub second: Vec<PolygonRecord>,
}

impl TilePair {
    /// Serializes the first segmentation result to the text file format.
    pub fn first_as_text(&self) -> String {
        write_polygon_file(&self.first)
    }

    /// Serializes the second segmentation result to the text file format.
    pub fn second_as_text(&self) -> String {
        write_polygon_file(&self.second)
    }

    /// Total number of polygons across both segmentations.
    pub fn polygon_count(&self) -> usize {
        self.first.len() + self.second.len()
    }
}

/// Generates the polygon files of both segmentation results for one tile.
///
/// Nuclei of the first result are placed on a jittered grid (so that objects
/// within one result rarely overlap each other, as in real tissue). The
/// second result re-segments the *same* objects with jittered centres, radii
/// and boundaries, drops a small fraction of them and adds a few spurious
/// ones — the kind of disagreement that algorithm-validation studies measure.
pub fn generate_tile_pair(spec: &TileSpec) -> TilePair {
    let mut rng = StdRng::seed_from_u64(spec.seed ^ (u64::from(spec.tile_id) << 32));

    // Cell size of the placement grid: large enough for one nucleus plus
    // breathing room.
    let cell = (2 * spec.nucleus.radius_x.max(spec.nucleus.radius_y) + 6).max(8) as i32;
    let cols = (spec.width as i32 / cell).max(1);
    let rows = (spec.height as i32 / cell).max(1);
    let capacity = (cols * rows) as u32;
    let count = spec.target_polygons.min(capacity);

    // Choose `count` distinct cells deterministically.
    let mut cells: Vec<u32> = (0..capacity).collect();
    for i in (1..cells.len()).rev() {
        let j = rng.gen_range(0..=i);
        cells.swap(i, j);
    }
    cells.truncate(count as usize);

    let mut first = Vec::with_capacity(count as usize);
    let mut second = Vec::with_capacity(count as usize);

    for (next_id, &cell_idx) in (1_u64..).zip(cells.iter()) {
        let col = (cell_idx as i32) % cols;
        let row = (cell_idx as i32) / cols;
        let margin = spec.nucleus.radius_x.max(spec.nucleus.radius_y) as i32 + 2;
        let cx = col * cell + margin + rng.gen_range(0..(cell - 2 * margin).max(1));
        let cy = row * cell + margin + rng.gen_range(0..(cell - 2 * margin).max(1));

        let poly_a = generate_nucleus(cx, cy, &spec.nucleus, &mut rng);
        first.push(PolygonRecord {
            id: next_id,
            polygon: poly_a,
        });

        // Second segmentation: usually re-detects the same nucleus slightly
        // differently; sometimes misses it entirely.
        if rng.gen_bool(1.0 - spec.dropout) {
            let shift = spec.max_shift as i32;
            let dx = if shift > 0 {
                rng.gen_range(-shift..=shift)
            } else {
                0
            };
            let dy = if shift > 0 {
                rng.gen_range(-shift..=shift)
            } else {
                0
            };
            let jittered = NucleusParams {
                radius_x: (spec.nucleus.radius_x as i32 + rng.gen_range(-1i32..=1)).max(2) as u32,
                radius_y: (spec.nucleus.radius_y as i32 + rng.gen_range(-1i32..=1)).max(2) as u32,
                boundary_jitter: spec.nucleus.boundary_jitter,
            };
            let poly_b = generate_nucleus(cx + dx, cy + dy, &jittered, &mut rng);
            second.push(PolygonRecord {
                id: next_id,
                polygon: poly_b,
            });
        }
        // Spurious detection present only in the second result.
        if rng.gen_bool(spec.dropout / 2.0) {
            let sx = rng.gen_range(margin..(spec.width as i32 - margin).max(margin + 1));
            let sy = rng.gen_range(margin..(spec.height as i32 - margin).max(margin + 1));
            let poly_s = generate_nucleus(sx, sy, &spec.nucleus, &mut rng);
            second.push(PolygonRecord {
                id: 1_000_000 + next_id,
                polygon: poly_s,
            });
        }
    }

    TilePair {
        tile_id: spec.tile_id,
        first,
        second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::text::{file_stats, parse_polygon_file};
    use sccg_geometry::Rect;

    fn small_spec() -> TileSpec {
        TileSpec {
            tile_id: 3,
            width: 512,
            height: 512,
            target_polygons: 120,
            seed: 99,
            ..TileSpec::default()
        }
    }

    #[test]
    fn tile_pair_has_requested_polygon_counts() {
        let pair = generate_tile_pair(&small_spec());
        assert_eq!(pair.first.len(), 120);
        // The second result loses ~5% and gains ~2.5%; allow generous slack.
        assert!(pair.second.len() >= 100 && pair.second.len() <= 130);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_tile_pair(&small_spec());
        let b = generate_tile_pair(&small_spec());
        assert_eq!(a, b);
        let mut other = small_spec();
        other.seed = 100;
        assert_ne!(generate_tile_pair(&other), a);
    }

    #[test]
    fn polygons_lie_within_tile_bounds() {
        let spec = small_spec();
        let pair = generate_tile_pair(&spec);
        let bounds = Rect::new(-8, -8, spec.width as i32 + 8, spec.height as i32 + 8);
        for rec in pair.first.iter().chain(pair.second.iter()) {
            assert!(
                bounds.contains_rect(&rec.polygon.mbr()),
                "{:?}",
                rec.polygon.mbr()
            );
        }
    }

    #[test]
    fn first_result_polygons_rarely_overlap_each_other() {
        let pair = generate_tile_pair(&small_spec());
        let mut overlaps = 0;
        for (i, a) in pair.first.iter().enumerate() {
            for b in &pair.first[i + 1..] {
                if a.polygon.mbr().intersects(&b.polygon.mbr()) {
                    overlaps += 1;
                }
            }
        }
        // Grid placement keeps same-result nuclei essentially disjoint.
        assert!(overlaps * 20 < pair.first.len(), "{overlaps} overlaps");
    }

    #[test]
    fn most_first_polygons_have_an_overlapping_partner_in_second() {
        let pair = generate_tile_pair(&small_spec());
        let mut matched = 0;
        for a in &pair.first {
            if pair
                .second
                .iter()
                .any(|b| a.polygon.mbr().intersects(&b.polygon.mbr()))
            {
                matched += 1;
            }
        }
        // At least ~85% of objects should be re-detected with overlap.
        assert!(matched * 100 >= pair.first.len() * 85, "{matched} matched");
    }

    #[test]
    fn text_round_trip_preserves_records() {
        let pair = generate_tile_pair(&small_spec());
        let parsed = parse_polygon_file(&pair.first_as_text()).unwrap();
        assert_eq!(parsed, pair.first);
        let stats = file_stats(&parsed);
        assert!(stats.mean_area > 50.0 && stats.mean_area < 400.0);
    }

    #[test]
    fn polygon_count_helper() {
        let pair = generate_tile_pair(&small_spec());
        assert_eq!(pair.polygon_count(), pair.first.len() + pair.second.len());
    }
}
