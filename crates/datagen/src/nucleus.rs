//! Generation of single nucleus-like rectilinear polygons.

use rand::Rng;
use sccg_geometry::{Point, RectilinearPolygon};

/// Parameters controlling the shape of a generated nucleus polygon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NucleusParams {
    /// Horizontal semi-axis of the underlying ellipse, in pixels.
    pub radius_x: u32,
    /// Vertical semi-axis of the underlying ellipse, in pixels.
    pub radius_y: u32,
    /// Maximum absolute per-row boundary jitter, in pixels. Jitter makes the
    /// boundary irregular the way real segmentation output is.
    pub boundary_jitter: u32,
}

impl Default for NucleusParams {
    fn default() -> Self {
        // Defaults produce areas around 150 pixels, matching the published
        // average polygon size of the brain-tumor data sets (§5.1).
        NucleusParams {
            radius_x: 7,
            radius_y: 7,
            boundary_jitter: 1,
        }
    }
}

/// Generates one nucleus-like rectilinear polygon centred at `(cx, cy)`.
///
/// Construction: a discrete ellipse is sampled row by row; each row's
/// horizontal extent is jittered; the resulting row intervals (which always
/// overlap between adjacent rows, keeping the polygon simple) are traced into
/// a closed rectilinear boundary.
pub fn generate_nucleus<R: Rng>(
    cx: i32,
    cy: i32,
    params: &NucleusParams,
    rng: &mut R,
) -> RectilinearPolygon {
    let rx = params.radius_x.max(2) as i64;
    let ry = params.radius_y.max(2) as i64;
    let rows = (2 * ry) as i32;

    // Per-row half widths of the discrete ellipse.
    let mut lefts: Vec<i32> = Vec::with_capacity(rows as usize);
    let mut rights: Vec<i32> = Vec::with_capacity(rows as usize);
    for row in 0..rows {
        // Row centre measured from the ellipse centre in [-ry+0.5, ry-0.5].
        let dy = row as f64 - ry as f64 + 0.5;
        let frac = 1.0 - (dy / ry as f64) * (dy / ry as f64);
        let half_w = (rx as f64 * frac.max(0.0).sqrt()).round().max(1.0) as i32;
        let jitter = if params.boundary_jitter > 0 {
            rng.gen_range(-(params.boundary_jitter as i32)..=(params.boundary_jitter as i32))
        } else {
            0
        };
        // Jitter the width but keep at least one pixel; jitter left and right
        // edges oppositely half of the time for asymmetry.
        let half_w = (half_w + jitter).max(1);
        let skew = if params.boundary_jitter > 0 {
            rng.gen_range(-(params.boundary_jitter as i32)..=(params.boundary_jitter as i32))
        } else {
            0
        };
        lefts.push(cx - half_w + skew);
        rights.push(cx + half_w + skew);
    }

    // Adjacent rows must overlap for the traced boundary to be simple; clamp
    // each row's interval so it intersects the previous one.
    for i in 1..rows as usize {
        if lefts[i] >= rights[i - 1] {
            lefts[i] = rights[i - 1] - 1;
        }
        if rights[i] <= lefts[i - 1] {
            rights[i] = lefts[i - 1] + 1;
        }
        if rights[i] <= lefts[i] {
            rights[i] = lefts[i] + 1;
        }
    }

    // Rows were generated from the bottom of the ellipse upward; anchor them
    // so the shape is vertically centred on `cy`.
    trace_row_intervals(cy - ry as i32, &lefts, &rights)
}

/// Traces the boundary of a "row-convex" region described by one horizontal
/// interval `[lefts[r], rights[r])` per pixel row, starting at pixel row
/// `base_y`. Adjacent intervals must overlap.
fn trace_row_intervals(base_y: i32, lefts: &[i32], rights: &[i32]) -> RectilinearPolygon {
    let rows = lefts.len();
    assert!(rows >= 1 && rights.len() == rows);
    let mut vertices: Vec<Point> = Vec::with_capacity(rows * 4 + 4);

    // Right side, walking upward in y.
    vertices.push(Point::new(rights[0], base_y));
    for r in 0..rows {
        let y_top = base_y + r as i32 + 1;
        vertices.push(Point::new(rights[r], y_top));
        if r + 1 < rows && rights[r + 1] != rights[r] {
            vertices.push(Point::new(rights[r + 1], y_top));
        }
    }
    // Top edge.
    vertices.push(Point::new(lefts[rows - 1], base_y + rows as i32));
    // Left side, walking downward in y.
    for r in (0..rows).rev() {
        let y_bottom = base_y + r as i32;
        vertices.push(Point::new(lefts[r], y_bottom));
        if r > 0 && lefts[r - 1] != lefts[r] {
            vertices.push(Point::new(lefts[r - 1], y_bottom));
        }
    }

    RectilinearPolygon::canonicalize(vertices)
        .expect("traced row intervals form a valid rectilinear polygon")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sccg_geometry::raster;

    #[test]
    fn default_nucleus_has_plausible_area() {
        let mut rng = StdRng::seed_from_u64(1);
        let poly = generate_nucleus(100, 100, &NucleusParams::default(), &mut rng);
        let area = poly.area();
        // A 7x7 semi-axis ellipse has area ~ pi*7*7 ~ 154.
        assert!(area > 80 && area < 260, "area {area}");
    }

    #[test]
    fn nucleus_area_matches_raster_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..20 {
            let params = NucleusParams {
                radius_x: 3 + seed % 6,
                radius_y: 3 + (seed * 3) % 6,
                boundary_jitter: seed % 3,
            };
            let poly = generate_nucleus(50, 60, &params, &mut rng);
            assert_eq!(poly.area(), raster::polygon_area(&poly), "seed {seed}");
        }
    }

    #[test]
    fn nucleus_is_centred_near_requested_position() {
        let mut rng = StdRng::seed_from_u64(3);
        let poly = generate_nucleus(200, 300, &NucleusParams::default(), &mut rng);
        let mbr = poly.mbr();
        let (cx, cy) = mbr.center_pixel();
        assert!((cx - 200).abs() <= 4, "cx {cx}");
        assert!((cy - 300).abs() <= 4, "cy {cy}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_nucleus(
            10,
            10,
            &NucleusParams::default(),
            &mut StdRng::seed_from_u64(42),
        );
        let b = generate_nucleus(
            10,
            10,
            &NucleusParams::default(),
            &mut StdRng::seed_from_u64(42),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_jitter_produces_smooth_symmetric_ellipse() {
        let params = NucleusParams {
            radius_x: 6,
            radius_y: 9,
            boundary_jitter: 0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let poly = generate_nucleus(0, 0, &params, &mut rng);
        let mbr = poly.mbr();
        assert_eq!(mbr.height(), 18);
        assert!(mbr.width() <= 14);
        // Mirror symmetry about the vertical axis when jitter is off.
        for (x, y) in mbr.pixels() {
            let mirrored_x = -1 - x; // reflect pixel column about x = -0.5
            assert_eq!(
                poly.contains_pixel(x, y),
                poly.contains_pixel(mirrored_x, y),
                "asymmetry at ({x},{y})"
            );
        }
    }

    #[test]
    fn tiny_radii_are_clamped() {
        let params = NucleusParams {
            radius_x: 0,
            radius_y: 0,
            boundary_jitter: 0,
        };
        let mut rng = StdRng::seed_from_u64(9);
        let poly = generate_nucleus(0, 0, &params, &mut rng);
        assert!(poly.area() >= 4);
    }
}
