//! Data-set level generation and the 18-entry study catalog.

use crate::tile::{generate_tile_pair, TilePair, TileSpec};
use crate::NucleusParams;
use serde::{Deserialize, Serialize};

/// Specification of one synthetic data set (one whole-slide image compared
/// across two segmentation runs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Data-set name, mirroring the paper's naming (e.g. `oligoastroIII_1`).
    pub name: String,
    /// Number of image tiles (= polygon files per segmentation result).
    pub tiles: u32,
    /// Approximate number of polygons per tile in the first result.
    pub polygons_per_tile: u32,
    /// Tile side length in pixels.
    pub tile_size: u32,
    /// Base random seed for the whole data set.
    pub seed: u64,
    /// Nucleus semi-axis used for this data set (varies slightly between
    /// images, changing polygon sizes and pair counts as in Figure 12).
    pub nucleus_radius: u32,
}

impl DatasetSpec {
    /// Expected total polygon count of the first segmentation result.
    pub fn expected_polygons(&self) -> u64 {
        u64::from(self.tiles) * u64::from(self.polygons_per_tile)
    }

    /// Returns a copy of the spec with tile and polygon counts multiplied by
    /// `factor` (clamped to at least one tile / one polygon). Benchmarks use
    /// small factors so full sweeps finish quickly; examples can scale up.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        let mut out = self.clone();
        out.tiles = ((f64::from(self.tiles) * factor).round() as u32).max(1);
        out.polygons_per_tile =
            ((f64::from(self.polygons_per_tile) * factor).round() as u32).max(1);
        out
    }
}

/// A fully generated data set: one [`TilePair`] per image tile.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The specification the data set was generated from.
    pub spec: DatasetSpec,
    /// Generated tile pairs.
    pub tiles: Vec<TilePair>,
}

impl Dataset {
    /// Total polygons in the first segmentation result.
    pub fn first_polygon_count(&self) -> usize {
        self.tiles.iter().map(|t| t.first.len()).sum()
    }

    /// Total polygons in the second segmentation result.
    pub fn second_polygon_count(&self) -> usize {
        self.tiles.iter().map(|t| t.second.len()).sum()
    }

    /// Total raw text size of all polygon files, in bytes — the quantity the
    /// paper's throughput metric divides by ("size of data set divided by
    /// execution time", §5.6).
    pub fn text_size_bytes(&self) -> usize {
        self.tiles
            .iter()
            .map(|t| t.first_as_text().len() + t.second_as_text().len())
            .sum()
    }
}

/// Generates a data set from its specification.
pub fn generate_dataset(spec: &DatasetSpec) -> Dataset {
    let tiles = (0..spec.tiles)
        .map(|tile_id| {
            generate_tile_pair(&TileSpec {
                tile_id,
                width: spec.tile_size,
                height: spec.tile_size,
                target_polygons: spec.polygons_per_tile,
                nucleus: NucleusParams {
                    radius_x: spec.nucleus_radius,
                    radius_y: spec.nucleus_radius,
                    boundary_jitter: 1,
                },
                dropout: 0.05,
                max_shift: 2,
                seed: spec.seed,
            })
        })
        .collect();
    Dataset {
        spec: spec.clone(),
        tiles,
    }
}

/// The 18-data-set study catalog, mirroring the structure of the paper's
/// evaluation (§5.1, §5.7): data sets differ in the number of polygon files
/// (tiles), the number of polygons and slightly in polygon size. The counts
/// here are reduced by roughly 1000× relative to the real study (first data
/// set ≈ 20 files / 57k polygons, last ≈ 442 files / 4M polygons) so that the
/// full 18-set sweep completes on a laptop-class machine; the *relative*
/// proportions between data sets follow the paper.
pub fn catalog() -> Vec<DatasetSpec> {
    // (tiles, polygons per tile, nucleus radius) roughly interpolating from
    // the smallest to the largest data set in the study.
    let shapes: [(u32, u32, u32); 18] = [
        (6, 30, 6),
        (8, 40, 7),
        (9, 60, 7),
        (11, 60, 6),
        (12, 80, 7),
        (14, 80, 8),
        (15, 100, 7),
        (17, 100, 6),
        (19, 120, 7),
        (21, 120, 8),
        (24, 130, 7),
        (27, 140, 7),
        (30, 150, 6),
        (33, 160, 7),
        (36, 170, 8),
        (42, 180, 7),
        (51, 200, 7),
        (66, 220, 7),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(tiles, per_tile, radius))| DatasetSpec {
            name: format!("oligoastroIII_{}", i + 1),
            tiles,
            polygons_per_tile: per_tile,
            tile_size: 1024,
            seed: 0x5CC6_0000 ^ (i as u64 * 7919),
            nucleus_radius: radius,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eighteen_increasingly_large_datasets() {
        let cat = catalog();
        assert_eq!(cat.len(), 18);
        assert!(cat.first().unwrap().expected_polygons() < cat.last().unwrap().expected_polygons());
        let names: std::collections::HashSet<_> = cat.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 18, "data set names must be unique");
    }

    #[test]
    fn generate_dataset_matches_spec() {
        let spec = catalog()[0].clone();
        let ds = generate_dataset(&spec);
        assert_eq!(ds.tiles.len(), spec.tiles as usize);
        assert_eq!(ds.first_polygon_count() as u64, spec.expected_polygons());
        assert!(ds.second_polygon_count() > 0);
        assert!(ds.text_size_bytes() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = catalog()[1].clone();
        let a = generate_dataset(&spec);
        let b = generate_dataset(&spec);
        assert_eq!(a.tiles, b.tiles);
    }

    #[test]
    fn different_tiles_have_different_content() {
        let spec = catalog()[2].clone();
        let ds = generate_dataset(&spec);
        assert_ne!(ds.tiles[0].first, ds.tiles[1].first);
    }

    #[test]
    fn scaled_spec_changes_counts_but_not_identity() {
        let spec = catalog()[17].clone();
        let bigger = spec.scaled(2.0);
        assert_eq!(bigger.name, spec.name);
        assert_eq!(bigger.tiles, spec.tiles * 2);
        let tiny = spec.scaled(0.0001);
        assert_eq!(tiny.tiles, 1);
        assert_eq!(tiny.polygons_per_tile, 1);
    }

    #[test]
    fn spec_debug_output_names_the_dataset() {
        let spec = catalog()[5].clone();
        let debug = format!("{spec:?}");
        assert!(debug.contains("oligoastroIII_6"));
        assert!(debug.contains("polygons_per_tile"));
    }
}
