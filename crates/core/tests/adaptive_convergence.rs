//! Convergence integration test for the adaptive hybrid split.
//!
//! Drives the real feedback loop — [`SplitController`] decisions, the
//! hybrid prefix/suffix split, and a real [`GpuBackend`] whose *simulated*
//! seconds are the GPU timing signal — against a CPU substrate with a fixed
//! synthetic per-pair cost. The simulated device is deterministic, so the
//! whole trajectory is reproducible bit-for-bit: the test asserts the
//! convergence behavior itself (where the fraction goes and how fast), not
//! just final answers.
//!
//! The trajectory assertions are wall-clock independent but the workload is
//! larger than a unit test, so the test is `#[ignore]`d in the default local
//! loop and run by CI's release-mode `--include-ignored` pass.

use sccg::pixelbox::backend::hybrid_split_point;
use sccg::pixelbox::{
    BatchObservation, ComputeBackend, GpuBackend, PixelBoxConfig, PolygonPair, SplitConfig,
    SplitController,
};
use sccg_geometry::{Rect, RectilinearPolygon};
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn batch_pairs(n: i32) -> Vec<PolygonPair> {
    (0..n)
        .map(|i| {
            let x = (i * 7) % 900;
            let y = (i * 13) % 900;
            let p =
                RectilinearPolygon::rectangle(Rect::new(x, y, x + 12 + (i % 6), y + 10)).unwrap();
            let q = RectilinearPolygon::rectangle(Rect::new(x + 3, y + 2, x + 17, y + 13)).unwrap();
            PolygonPair::new(p, q)
        })
        .collect()
}

/// Runs `batches` controller-steered hybrid batches: the GPU share executes
/// on `gpu` (its simulated seconds are the GPU timing), the CPU share costs
/// `cpu_seconds_per_pair` per pair. Returns nothing — state accumulates in
/// the controller's trace.
fn run_batches(
    controller: &SplitController,
    gpu: &GpuBackend,
    pairs: &[PolygonPair],
    config: &PixelBoxConfig,
    cpu_seconds_per_pair: f64,
    batches: usize,
) {
    for _ in 0..batches {
        let fraction = controller.next_fraction();
        let split = hybrid_split_point(pairs.len(), fraction);
        let (gpu_share, cpu_share) = pairs.split_at(split);
        let gpu_batch = gpu.compute_batch(gpu_share, config);
        controller.record(BatchObservation {
            gpu_pairs: gpu_share.len(),
            gpu_seconds: gpu_batch.total_simulated_seconds(),
            gpu_simulated_seconds: gpu_batch.total_simulated_seconds(),
            cpu_pairs: cpu_share.len(),
            cpu_seconds: cpu_share.len() as f64 * cpu_seconds_per_pair,
            cpu_workers: 1,
            fraction_used: Some(fraction),
        });
    }
}

#[test]
#[ignore = "slow convergence trajectory; CI runs it via --include-ignored in release mode"]
fn adaptive_split_converges_then_reconverges_after_a_speed_flip() {
    let pairs = batch_pairs(200);
    let config = PixelBoxConfig::paper_default();

    // Calibrate the simulated GPU's per-pair cost on this workload, then
    // make the CPU substrate ~4x slower per pair.
    let fast_gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let calibration = fast_gpu.compute_batch(&pairs, &config);
    let gpu_seconds_per_pair = calibration.total_simulated_seconds() / pairs.len() as f64;
    let cpu_seconds_per_pair = 4.0 * gpu_seconds_per_pair;

    let controller = SplitController::new(SplitConfig::adaptive(0.5));
    assert_eq!(controller.next_fraction(), 0.5, "starts at the seed");

    // Phase 1: GPU ~4x faster → the balanced fraction is ≈0.8. The trace
    // must move from the 0.5 seed above 0.7 within 12 batches.
    run_batches(
        &controller,
        &fast_gpu,
        &pairs,
        &config,
        cpu_seconds_per_pair,
        12,
    );
    let phase1 = controller.trace();
    assert_eq!(phase1.len(), 12);
    let reached = phase1
        .first_within(0.8, 0.1)
        .expect("GPU fraction must reach the 0.7..0.9 neighborhood");
    assert!(reached < 12, "reached only at batch {reached}");
    let converged = controller.next_fraction();
    assert!(converged > 0.7, "converged fraction {converged}");
    // Convergence was gradual: no step exceeded the configured clamp.
    assert!(phase1.max_step_taken() <= controller.config().max_step + 1e-12);

    // Phase 2: the GPU is now shared/slowed 16x (§5.6's Config-III trick),
    // flipping the speed ratio to CPU ~4x faster. The controller must
    // re-converge the other way, below the 0.5 seed.
    let slow_gpu = GpuBackend::new(Arc::new(Device::new(
        DeviceConfig::gtx580().slowed_down(16.0),
    )));
    run_batches(
        &controller,
        &slow_gpu,
        &pairs,
        &config,
        cpu_seconds_per_pair,
        25,
    );
    let final_fraction = controller.next_fraction();
    assert!(
        final_fraction < 0.4,
        "after the flip the GPU share must collapse, got {final_fraction}"
    );
    assert!(final_fraction < converged - 0.3);

    // The full trajectory stayed inside the unit interval throughout.
    let trace = controller.trace();
    assert!(trace
        .samples()
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.fraction) && (0.0..=1.0).contains(&s.next_fraction)));
}
