//! Equivalence suite for the interval-scanline pixelization fast path.
//!
//! The fast path must be *observationally indistinguishable* from the seed
//! per-pixel loop it replaced: for random rectilinear polygon pairs, every
//! `Variant`, and pixelization thresholds across `1..=4096`, both the areas
//! and the full execution [`Trace`](sccg::pixelbox::algorithm::Trace) must
//! be bit-identical (the GPU simulator's cost model and the Figure 8 claims
//! are defined over the trace counts). The per-pixel oracle is retained as
//! [`compute_pair_reference`]; a second, independent check goes through the
//! brute-force raster oracle in `sccg_geometry::raster::brute`.

use proptest::prelude::*;
use sccg::pixelbox::algorithm::{compute_pair, compute_pair_reference};
use sccg::pixelbox::cpu::compute_batch_cpu;
use sccg::pixelbox::{PixelBoxConfig, PolygonPair, Variant};
use sccg_geometry::edge_table::{
    overlap_len_in, overlap_len_in_scalar, span_len_in, span_len_in_scalar, LANES,
};
use sccg_geometry::{raster, Point, RectilinearPolygon};

/// A random rectilinear polygon drawn from three families:
///
/// * **skyline** — a flat base with columns of varying heights: rows cross
///   many inside intervals, stressing the interval merge;
/// * **sideways skyline** — the same shape transposed, so *columns* vary and
///   rows exercise long single intervals at varying offsets;
/// * **staircase** — a monotone step boundary, the degenerate one-interval
///   case.
fn rectilinear_polygon() -> impl Strategy<Value = RectilinearPolygon> {
    (0u8..3, 2usize..8).prop_flat_map(|(family, segments)| {
        (
            prop::collection::vec(1i32..5, segments),
            prop::collection::vec(1i32..8, segments),
            -12i32..12,
            -12i32..12,
        )
            .prop_map(move |(widths, heights, ox, oy)| {
                let mut vertices = vec![Point::new(ox, oy)];
                let mut x = ox;
                match family {
                    // Skyline: columns of varying heights above y = oy.
                    0 => {
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            vertices.push(Point::new(x, oy + h));
                            x += w;
                            vertices.push(Point::new(x, oy + h));
                        }
                        vertices.push(Point::new(x, oy));
                    }
                    // Sideways skyline: rows of varying widths right of
                    // x = ox (the transpose of the above).
                    1 => {
                        let mut y = oy;
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            vertices.push(Point::new(ox + w, y));
                            y += h;
                            vertices.push(Point::new(ox + w, y));
                        }
                        vertices.push(Point::new(ox, y));
                        vertices.reverse(); // keep the chain closed cleanly
                    }
                    // Staircase descending from the top-left.
                    _ => {
                        let total_h: i32 = heights.iter().sum();
                        vertices.push(Point::new(ox, oy + total_h));
                        let mut y = oy + total_h;
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            x += w;
                            vertices.push(Point::new(x, y));
                            y -= h;
                            vertices.push(Point::new(x, y));
                        }
                    }
                }
                RectilinearPolygon::canonicalize(vertices).expect("generated polygon is valid")
            })
    })
}

fn polygon_pair() -> impl Strategy<Value = PolygonPair> {
    (rectilinear_polygon(), rectilinear_polygon()).prop_map(|(p, q)| PolygonPair::new(p, q))
}

/// A raw sorted crossing list of length `0..=4·LANES+3` — lengths straddle
/// every chunk boundary of the lane-chunked kernels (including odd lengths,
/// whose trailing element both implementations ignore, and the empty list of
/// a row outside the polygon). Sorting makes consecutive pairs disjoint
/// (possibly touching or empty) intervals, the invariant real crossing lists
/// hold.
fn crossing_list() -> impl Strategy<Value = Vec<i32>> {
    prop::collection::vec(-40i32..=120, 0usize..(4 * LANES + 4)).prop_map(|mut xs| {
        xs.sort_unstable();
        xs
    })
}

/// A comb polygon with up to `2·LANES + 2` teeth: its tooth rows carry up to
/// `4·LANES + 4` crossings, so pixelizing a comb pair pushes the interval
/// kernels across multiple lane chunks within a single row. One tooth
/// degenerates to a single-column polygon (a single-column scan window).
fn wide_comb() -> impl Strategy<Value = RectilinearPolygon> {
    (
        1usize..=(2 * LANES + 2),
        1i32..4,
        1i32..4,
        -20i32..20,
        -20i32..20,
    )
        .prop_map(|(teeth, base_h, tooth_h, ox, oy)| {
            let w = 2 * teeth as i32 - 1;
            let base_top = oy + base_h;
            let top = base_top + tooth_h;
            let mut vertices = vec![
                Point::new(ox, oy),
                Point::new(ox + w, oy),
                Point::new(ox + w, top),
            ];
            // Walk the gaps between teeth right to left: down into the gap,
            // across, back up the next tooth.
            for k in (1..teeth).rev() {
                let gap = ox + 2 * k as i32 - 1;
                vertices.push(Point::new(gap + 1, top));
                vertices.push(Point::new(gap + 1, base_top));
                vertices.push(Point::new(gap, base_top));
                vertices.push(Point::new(gap, top));
            }
            vertices.push(Point::new(ox, top));
            RectilinearPolygon::canonicalize(vertices).expect("generated comb is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The acceptance property: fast path vs retained per-pixel oracle,
    // areas and traces bit-identical across all variants and the full
    // threshold range.
    #[test]
    fn scanline_matches_per_pixel_oracle(
        pair in polygon_pair(),
        threshold in 1u32..=4096,
        fanout in 2u32..32,
    ) {
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let fast = compute_pair(&pair, threshold, fanout, variant);
            let brute = compute_pair_reference(&pair, threshold, fanout, variant);
            prop_assert_eq!(&fast.0, &brute.0);
            prop_assert_eq!(&fast.1, &brute.1);
        }
    }

    // Independent ground truth: the brute-force raster oracle (per-pixel
    // even–odd tests, untouched by the fast path) agrees with every
    // variant's areas.
    #[test]
    fn all_variants_match_the_brute_raster_oracle(
        pair in polygon_pair(),
        threshold in 1u32..=4096,
    ) {
        let (ri, ru) = raster::brute::intersection_union_area(&pair.p, &pair.q);
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let (areas, _) = compute_pair(&pair, threshold, 16, variant);
            prop_assert_eq!((areas.intersection, areas.union), (ri, ru));
        }
    }

    // Lane-boundary property: the lane-chunked interval kernels are
    // bit-identical to their scalar references for crossing lists of every
    // length `0..=4·LANES+3` (odd and even, empty rows included) and for
    // windows of width `0..=1..` — including the degenerate empty and
    // single-column windows.
    #[test]
    fn lane_kernels_match_scalar_references_at_every_chunk_boundary(
        a in crossing_list(),
        b in crossing_list(),
        lo in -50i32..=130,
        width in 0i32..=64,
    ) {
        let hi = lo + width;
        prop_assert_eq!(span_len_in(&a, lo, hi), span_len_in_scalar(&a, lo, hi));
        prop_assert_eq!(span_len_in(&b, lo, hi), span_len_in_scalar(&b, lo, hi));
        prop_assert_eq!(
            overlap_len_in(&a, &b, lo, hi),
            overlap_len_in_scalar(&a, &b, lo, hi)
        );
        prop_assert_eq!(
            overlap_len_in(&b, &a, lo, hi),
            overlap_len_in_scalar(&b, &a, lo, hi)
        );
    }

    // Pair-level lane-boundary property: wide-comb pairs whose rows cross
    // several lane chunks stay bit-identical — areas AND traces — between
    // the chunked scanline kernel and the per-pixel oracle, across all three
    // variants.
    #[test]
    fn wide_comb_pairs_are_bit_identical_across_kernels(
        p in wide_comb(),
        q in wide_comb(),
        threshold in 1u32..=4096,
    ) {
        let pair = PolygonPair::new(p, q);
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let fast = compute_pair(&pair, threshold, 16, variant);
            let brute = compute_pair_reference(&pair, threshold, 16, variant);
            prop_assert_eq!(&fast.0, &brute.0);
            prop_assert_eq!(&fast.1, &brute.1);
        }
    }

    // The persistent worker pool preserves batch results exactly for any
    // worker count (PixelBox-CPU over the pool vs strict sequential).
    #[test]
    fn pooled_batches_match_sequential(
        pairs in prop::collection::vec(polygon_pair(), 0usize..24),
        workers in 2usize..8,
        threshold in 1u32..=4096,
    ) {
        let config = PixelBoxConfig::paper_default().with_threshold(threshold);
        let sequential = compute_batch_cpu(&pairs, &config, 1);
        let pooled = compute_batch_cpu(&pairs, &config, workers);
        prop_assert_eq!(sequential, pooled);
    }
}
