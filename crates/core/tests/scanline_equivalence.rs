//! Equivalence suite for the interval-scanline pixelization fast path.
//!
//! The fast path must be *observationally indistinguishable* from the seed
//! per-pixel loop it replaced: for random rectilinear polygon pairs, every
//! `Variant`, and pixelization thresholds across `1..=4096`, both the areas
//! and the full execution [`Trace`](sccg::pixelbox::algorithm::Trace) must
//! be bit-identical (the GPU simulator's cost model and the Figure 8 claims
//! are defined over the trace counts). The per-pixel oracle is retained as
//! [`compute_pair_reference`]; a second, independent check goes through the
//! brute-force raster oracle in `sccg_geometry::raster::brute`.

use proptest::prelude::*;
use sccg::pixelbox::algorithm::{compute_pair, compute_pair_reference};
use sccg::pixelbox::cpu::compute_batch_cpu;
use sccg::pixelbox::{PixelBoxConfig, PolygonPair, Variant};
use sccg_geometry::{raster, Point, RectilinearPolygon};

/// A random rectilinear polygon drawn from three families:
///
/// * **skyline** — a flat base with columns of varying heights: rows cross
///   many inside intervals, stressing the interval merge;
/// * **sideways skyline** — the same shape transposed, so *columns* vary and
///   rows exercise long single intervals at varying offsets;
/// * **staircase** — a monotone step boundary, the degenerate one-interval
///   case.
fn rectilinear_polygon() -> impl Strategy<Value = RectilinearPolygon> {
    (0u8..3, 2usize..8).prop_flat_map(|(family, segments)| {
        (
            prop::collection::vec(1i32..5, segments),
            prop::collection::vec(1i32..8, segments),
            -12i32..12,
            -12i32..12,
        )
            .prop_map(move |(widths, heights, ox, oy)| {
                let mut vertices = vec![Point::new(ox, oy)];
                let mut x = ox;
                match family {
                    // Skyline: columns of varying heights above y = oy.
                    0 => {
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            vertices.push(Point::new(x, oy + h));
                            x += w;
                            vertices.push(Point::new(x, oy + h));
                        }
                        vertices.push(Point::new(x, oy));
                    }
                    // Sideways skyline: rows of varying widths right of
                    // x = ox (the transpose of the above).
                    1 => {
                        let mut y = oy;
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            vertices.push(Point::new(ox + w, y));
                            y += h;
                            vertices.push(Point::new(ox + w, y));
                        }
                        vertices.push(Point::new(ox, y));
                        vertices.reverse(); // keep the chain closed cleanly
                    }
                    // Staircase descending from the top-left.
                    _ => {
                        let total_h: i32 = heights.iter().sum();
                        vertices.push(Point::new(ox, oy + total_h));
                        let mut y = oy + total_h;
                        for (w, h) in widths.iter().zip(heights.iter()) {
                            x += w;
                            vertices.push(Point::new(x, y));
                            y -= h;
                            vertices.push(Point::new(x, y));
                        }
                    }
                }
                RectilinearPolygon::canonicalize(vertices).expect("generated polygon is valid")
            })
    })
}

fn polygon_pair() -> impl Strategy<Value = PolygonPair> {
    (rectilinear_polygon(), rectilinear_polygon()).prop_map(|(p, q)| PolygonPair::new(p, q))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The acceptance property: fast path vs retained per-pixel oracle,
    // areas and traces bit-identical across all variants and the full
    // threshold range.
    #[test]
    fn scanline_matches_per_pixel_oracle(
        pair in polygon_pair(),
        threshold in 1u32..=4096,
        fanout in 2u32..32,
    ) {
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let fast = compute_pair(&pair, threshold, fanout, variant);
            let brute = compute_pair_reference(&pair, threshold, fanout, variant);
            prop_assert_eq!(&fast.0, &brute.0);
            prop_assert_eq!(&fast.1, &brute.1);
        }
    }

    // Independent ground truth: the brute-force raster oracle (per-pixel
    // even–odd tests, untouched by the fast path) agrees with every
    // variant's areas.
    #[test]
    fn all_variants_match_the_brute_raster_oracle(
        pair in polygon_pair(),
        threshold in 1u32..=4096,
    ) {
        let (ri, ru) = raster::brute::intersection_union_area(&pair.p, &pair.q);
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let (areas, _) = compute_pair(&pair, threshold, 16, variant);
            prop_assert_eq!((areas.intersection, areas.union), (ri, ru));
        }
    }

    // The persistent worker pool preserves batch results exactly for any
    // worker count (PixelBox-CPU over the pool vs strict sequential).
    #[test]
    fn pooled_batches_match_sequential(
        pairs in prop::collection::vec(polygon_pair(), 0usize..24),
        workers in 2usize..8,
        threshold in 1u32..=4096,
    ) {
        let config = PixelBoxConfig::paper_default().with_threshold(threshold);
        let sequential = compute_batch_cpu(&pairs, &config, 1);
        let pooled = compute_batch_cpu(&pairs, &config, workers);
        prop_assert_eq!(sequential, pooled);
    }
}
