//! Property tests for the hybrid CPU+GPU backend: for *any* split ratio in
//! `[0, 1]` the hybrid backend must preserve pair order and produce exactly
//! the results of a single-substrate run — splitting and merging is a
//! performance decision, never a correctness one.

use proptest::prelude::*;
use sccg::pixelbox::backend::hybrid_split_point;
use sccg::pixelbox::{
    ComputeBackend, CpuBackend, HybridBackend, PixelBoxConfig, PolygonPair, SplitConfig,
};
use sccg_geometry::{Rect, RectilinearPolygon};
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

/// Strategy for a batch of overlapping rectangle pairs with varied sizes and
/// offsets, indexed so order scrambling would be caught.
fn pair_batch() -> impl Strategy<Value = Vec<PolygonPair>> {
    prop::collection::vec(
        (0i32..400, 0i32..400, 1i32..24, 1i32..24, -6i32..6, -6i32..6),
        0usize..24,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .map(|(x, y, w, h, dx, dy)| {
                let p = RectilinearPolygon::rectangle(Rect::new(x, y, x + w, y + h)).unwrap();
                let q = RectilinearPolygon::rectangle(Rect::new(
                    x + dx,
                    y + dy,
                    x + dx + w + 2,
                    y + dy + h + 1,
                ))
                .unwrap();
                PolygonPair::new(p, q)
            })
            .collect()
    })
}

fn hybrid(fraction: f64) -> HybridBackend {
    HybridBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())), 2, fraction)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_split_ratio_preserves_pair_order_and_areas(
        pairs in pair_batch(),
        fraction in 0.0f64..1.0,
    ) {
        let config = PixelBoxConfig::paper_default();
        let reference = CpuBackend::new(1).compute_batch(&pairs, &config);
        let split = hybrid(fraction).compute_batch(&pairs, &config);
        // Bit-identical per-pair areas, in the original pair order.
        prop_assert_eq!(&split.areas, &reference.areas);
    }

    #[test]
    fn any_split_ratio_preserves_totals(
        pairs in pair_batch(),
        fraction in 0.0f64..1.0,
    ) {
        let config = PixelBoxConfig::paper_default();
        let reference = CpuBackend::new(1).compute_batch(&pairs, &config);
        let split = hybrid(fraction).compute_batch(&pairs, &config);
        let total = |areas: &[sccg::pixelbox::PairAreas]| -> (i64, i64) {
            (
                areas.iter().map(|a| a.intersection).sum(),
                areas.iter().map(|a| a.union).sum(),
            )
        };
        prop_assert_eq!(split.areas.len(), pairs.len());
        prop_assert_eq!(total(&split.areas), total(&reference.areas));
    }

    #[test]
    fn split_point_is_monotone_and_bounded(
        len in 0usize..10_000,
        fraction in -2.0f64..3.0,
        delta in 0.0f64..1.0,
    ) {
        let here = hybrid_split_point(len, fraction);
        prop_assert!(here <= len);
        // Monotone in the fraction: more GPU share never shrinks the prefix.
        let larger = hybrid_split_point(len, fraction + delta);
        prop_assert!(larger >= here);
        // Clamped extremes.
        prop_assert_eq!(hybrid_split_point(len, 0.0), 0);
        prop_assert_eq!(hybrid_split_point(len, 1.0), len);
    }

    #[test]
    fn adaptive_split_agrees_bit_for_bit_across_consecutive_batches(
        pairs in pair_batch(),
        seed in 0.0f64..1.0,
        batches in 1usize..5,
    ) {
        // Whatever trajectory the controller takes from any seed, the merged
        // results of every batch must stay bit-identical to the CPU
        // reference — adaptation is a performance decision, never a
        // correctness one.
        let config = PixelBoxConfig::paper_default();
        let reference = CpuBackend::new(1).compute_batch(&pairs, &config);
        let backend = HybridBackend::with_split(
            Arc::new(Device::new(DeviceConfig::gtx580())),
            2,
            SplitConfig::adaptive(seed).with_warmup_batches(0),
        );
        for _ in 0..batches {
            let batch = backend.compute_batch(&pairs, &config);
            prop_assert_eq!(&batch.areas, &reference.areas);
        }
        // Telemetry invariants: one sample per nonempty batch, fractions in
        // bounds, steps within the clamp.
        let trace = backend.controller().trace();
        if pairs.is_empty() {
            prop_assert!(trace.is_empty());
        } else {
            prop_assert_eq!(trace.len(), batches);
        }
        for sample in trace.samples() {
            prop_assert!((0.0..=1.0).contains(&sample.fraction));
            prop_assert!((0.0..=1.0).contains(&sample.next_fraction));
        }
        prop_assert!(
            trace.max_step_taken() <= backend.controller().config().max_step + 1e-12
        );
    }

    #[test]
    fn gpu_share_strictly_tracks_the_split(
        pairs in pair_batch(),
        fraction in 0.0f64..1.0,
    ) {
        // The number of pairs the GPU computed is exactly the split point:
        // with a nonempty GPU share there is a launch, otherwise none.
        let backend = hybrid(fraction);
        let split = backend.split_point(pairs.len());
        let batch = backend.compute_batch(&pairs, &PixelBoxConfig::paper_default());
        prop_assert_eq!(batch.launch.is_some(), split > 0);
        prop_assert_eq!(backend.device().stats().launches > 0, split > 0);
    }
}
