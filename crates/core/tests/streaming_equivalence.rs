//! Integration tests of the streaming executor's two contract guarantees:
//!
//! * **Equivalence** — [`Pipeline::run_streaming`] over an iterator produces
//!   a `PipelineReport` bit-identical to the batch [`Pipeline::run`] on a
//!   mixed-device (hybrid) configuration: same `J'` bits, same exact area
//!   sums, same split-trace length.
//! * **Bounded memory** — streaming N tiles through buffers of capacity C
//!   holds at most O(C) tiles in flight, asserted with a 10 000-task stream
//!   against the analytic bound (the regression test for the formerly
//!   unbounded input channel).
//!
//! Plus a property test that random buffer capacities in `[1, 32]` (with
//! random worker/batch/migration settings) never deadlock.

use proptest::prelude::*;
use sccg::pipeline::{ParseTask, Pipeline, PipelineConfig, PipelineReport};
use sccg::pixelbox::{AggregationDevice, SplitPolicy};
use sccg_datagen::{generate_dataset, DatasetSpec};

fn tasks_of(dataset: &sccg_datagen::Dataset) -> Vec<ParseTask> {
    dataset
        .tiles
        .iter()
        .map(ParseTask::from_tile_pair)
        .collect()
}

fn small_dataset(tiles: u32, seed: u64) -> sccg_datagen::Dataset {
    generate_dataset(&DatasetSpec {
        name: "streaming-test".into(),
        tiles,
        polygons_per_tile: 40,
        tile_size: 512,
        seed,
        nucleus_radius: 6,
    })
}

/// A deterministic single-file configuration: one parser task and one-tile
/// aggregator batches make tile order — and therefore every floating-point
/// fold order — identical across runs, so reports can be compared *bit for
/// bit* even on the hybrid substrate (whatever split fraction the adaptive
/// controller picks, per-pair areas are exact integers and the ratio fold
/// order is the tile order).
fn deterministic_config(device: AggregationDevice, policy: SplitPolicy) -> PipelineConfig {
    PipelineConfig::default()
        .with_parser_workers(1)
        .with_aggregator_batch(1)
        .with_migration(false)
        .with_device(device)
        .with_split_policy(policy)
        .with_buffer_capacity(4)
}

#[test]
fn run_streaming_is_bit_identical_to_batch_run_on_mixed_devices() {
    let dataset = small_dataset(8, 4242);
    let tasks = tasks_of(&dataset);
    for (device, policy) in [
        (AggregationDevice::Gpu, SplitPolicy::Adaptive),
        (AggregationDevice::Cpu, SplitPolicy::Adaptive),
        (AggregationDevice::Hybrid, SplitPolicy::Adaptive),
        (AggregationDevice::Hybrid, SplitPolicy::Static),
    ] {
        let batch = Pipeline::new(deterministic_config(device, policy)).run(tasks.clone());
        let streamed = Pipeline::new(deterministic_config(device, policy))
            .run_streaming(tasks.iter().cloned());

        // J' bit-identical (compare the raw bits, not an epsilon).
        assert_eq!(
            batch.summary.similarity.to_bits(),
            streamed.summary.similarity.to_bits(),
            "{device:?}/{policy:?}"
        );
        // Exact per-pair area sums and counts.
        assert_eq!(
            batch.summary.total_intersection_area, streamed.summary.total_intersection_area,
            "{device:?}/{policy:?}"
        );
        assert_eq!(
            batch.summary.total_union_area, streamed.summary.total_union_area,
            "{device:?}/{policy:?}"
        );
        assert_eq!(
            batch.summary.candidate_pairs, streamed.summary.candidate_pairs,
            "{device:?}/{policy:?}"
        );
        assert_eq!(
            batch.summary.intersecting_pairs, streamed.summary.intersecting_pairs,
            "{device:?}/{policy:?}"
        );
        assert_eq!(batch.tiles, streamed.tiles, "{device:?}/{policy:?}");
        // Same number of hybrid split decisions (one per aggregated batch).
        assert_eq!(
            batch.split_trace.as_ref().map(|t| t.len()),
            streamed.split_trace.as_ref().map(|t| t.len()),
            "{device:?}/{policy:?}"
        );
        if device == AggregationDevice::Hybrid {
            assert_eq!(
                streamed.split_trace.as_ref().map(|t| t.len()),
                Some(dataset.tiles.len()),
                "one-tile batches record one split per tile"
            );
        }
    }
}

/// The bounded-memory regression test for the formerly unbounded input
/// channel: 10 000 tasks stream through capacity-2 buffers while the
/// in-flight high-water mark stays at the O(capacity) analytic bound —
/// three orders of magnitude below the dataset size.
#[test]
fn ten_thousand_task_stream_keeps_in_flight_tiles_bounded_by_capacity() {
    let config = PipelineConfig::default()
        .with_buffer_capacity(2)
        .with_parser_workers(2)
        .with_aggregator_batch(2)
        .with_migration(false);
    let bound = PipelineReport::in_flight_bound(&config);
    let total = 10_000u32;

    // Tiny tasks generated lazily — the full task list never exists.
    let report = Pipeline::new(config).run_streaming((0..total).map(|tile_id| ParseTask {
        tile_id,
        first_text: String::new(),
        second_text: String::new(),
    }));

    assert_eq!(report.tiles, total as usize, "every task processed");
    assert!(
        report.peak_in_flight_tiles <= bound,
        "peak {} exceeds the O(capacity) bound {bound}",
        report.peak_in_flight_tiles
    );
    assert!(
        bound < total as usize / 100,
        "the bound must be far below the dataset size for the test to mean anything"
    );
}

/// Migration's steal quantum is also capacity-bounded, so the guarantee
/// holds with both heuristics live.
#[test]
fn bounded_in_flight_holds_with_migration_enabled() {
    let config = PipelineConfig::default()
        .with_buffer_capacity(3)
        .with_parser_workers(2)
        .with_migration(true);
    let bound = PipelineReport::in_flight_bound(&config);
    let report = Pipeline::new(config).run_streaming((0..2_000u32).map(|tile_id| ParseTask {
        tile_id,
        first_text: String::new(),
        second_text: String::new(),
    }));
    assert_eq!(report.tiles, 2_000);
    assert!(
        report.peak_in_flight_tiles <= bound,
        "peak {} exceeds bound {bound}",
        report.peak_in_flight_tiles
    );
}

// Liveness: no combination of buffer capacity, parser workers, aggregator
// batch and migration setting deadlocks the executor — every run completes
// with all tiles processed and the in-flight bound held. (The offline
// proptest shim's macro matches a bare `#[test]`, so this comment lives
// outside the macro invocation.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_capacities_never_deadlock(
        capacity in 1usize..=32,
        parser_workers in 1usize..=4,
        aggregator_batch in 1usize..=8,
        migration_bit in 0u8..=1,
        tiles in 1u32..=12,
    ) {
        let enable_migration = migration_bit == 1;
        let dataset = small_dataset(tiles, u64::from(capacity as u32) * 1000 + u64::from(tiles));
        let config = PipelineConfig::default()
            .with_buffer_capacity(capacity)
            .with_parser_workers(parser_workers)
            .with_aggregator_batch(aggregator_batch)
            .with_migration(enable_migration);
        let bound = PipelineReport::in_flight_bound(&config);
        let report = Pipeline::new(config).run_streaming(
            dataset.tiles.iter().map(ParseTask::from_tile_pair),
        );
        prop_assert_eq!(report.tiles, dataset.tiles.len());
        prop_assert!(report.candidate_pairs > 0);
        prop_assert!(report.peak_in_flight_tiles <= bound);
    }
}
