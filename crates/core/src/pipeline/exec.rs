//! A minimal futures-style task executor and bounded async channels — the
//! event-driven substrate under the streaming pipeline.
//!
//! The build environment is offline (no tokio, no `futures` crate), so this
//! module hand-rolls the three primitives the pipeline needs, over `std`
//! only:
//!
//! * [`Executor`] — a fixed pool of worker threads polling tasks from a
//!   shared ready queue. Tasks are plain `Future<Output = ()>`s; wakers are
//!   built with [`std::task::Wake`] (no unsafe vtables). A task that is not
//!   ready occupies **no thread** — it is re-queued only when one of its
//!   registered wakers fires, which is what lets thousands of tiles stream
//!   through a handful of threads, and lets a blocked stage or engine wait
//!   without pinning an OS thread.
//! * [`channel`] — a *bounded* multi-producer multi-consumer async channel.
//!   [`Sender::send`] resolves only when buffer space exists, so
//!   backpressure propagates task-by-task all the way back to the input
//!   iterator; peak buffered data is O(capacity), never O(dataset).
//!   Receivers additionally expose [`Receiver::register_watch`], a
//!   queue-depth event subscription: a custom future can be woken on *any*
//!   depth change of a channel it does not itself receive from — this is how
//!   the migration heuristics react to congestion/idleness events instead of
//!   sleep-polling.
//! * [`block_on`] — drives one future on the calling thread with a
//!   park/unpark waker, bridging the synchronous world (the input iterator,
//!   tests) into the async one.
//!
//! Everything here is deliberately small and allocation-light: wakers are
//! deduplicated by [`Waker::will_wake`], wake-ups are wake-all (a woken task
//! that finds nothing to do re-registers and suspends again — spurious
//! wake-ups are cheap, lost wake-ups are deadlocks).

use crate::sync::lock;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

/// Registers `waker` in `wakers` unless an equivalent waker (same task) is
/// already registered — the building block for hand-written futures (the
/// channels here, the service's job queue) that park tasks on a wake list.
pub fn register_waker(wakers: &mut Vec<Waker>, waker: &Waker) {
    if !wakers.iter().any(|existing| existing.will_wake(waker)) {
        wakers.push(waker.clone());
    }
}

/// Wakes and clears a waker list. Callers drop the owning lock first.
fn wake_all(wakers: &mut Vec<Waker>) -> Vec<Waker> {
    std::mem::take(wakers)
}

// ---------------------------------------------------------------------------
// Task + executor
// ---------------------------------------------------------------------------

/// Task scheduling states. A task is in exactly one state; the transitions
/// guarantee it is never queued twice and never misses a wake.
const IDLE: u8 = 0; // suspended, waiting for a waker to fire
const SCHEDULED: u8 = 1; // in the ready queue
const RUNNING: u8 = 2; // currently being polled by a worker
const NOTIFIED: u8 = 3; // woken *while* being polled; re-queue after the poll
const DONE: u8 = 4; // completed (or its poll panicked)

struct Task {
    state: AtomicU8,
    /// The task's future. `None` once completed.
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    exec: Arc<ExecShared>,
}

impl Task {
    /// Moves the task toward the ready queue; called by its wakers.
    fn schedule(self: &Arc<Self>) {
        loop {
            let state = self.state.load(Ordering::Acquire);
            let (target, enqueue) = match state {
                IDLE => (SCHEDULED, true),
                RUNNING => (NOTIFIED, false),
                // Already queued, already re-queue-pending, or finished:
                // nothing to do.
                SCHEDULED | NOTIFIED | DONE => return,
                _ => unreachable!("invalid task state {state}"),
            };
            if self
                .state
                .compare_exchange(state, target, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if enqueue {
                    self.exec.push_ready(Arc::clone(self));
                }
                return;
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

struct ExecShared {
    ready: Mutex<VecDeque<Arc<Task>>>,
    work_available: Condvar,
    shutdown: AtomicBool,
    /// Number of spawned-but-not-completed tasks, with a condvar for
    /// [`Executor::wait_idle`].
    live: Mutex<usize>,
    idle: Condvar,
}

impl ExecShared {
    fn push_ready(&self, task: Arc<Task>) {
        lock(&self.ready).push_back(task);
        self.work_available.notify_one();
    }

    fn task_finished(&self) {
        let mut live = lock(&self.live);
        *live -= 1;
        if *live == 0 {
            self.idle.notify_all();
        }
    }
}

/// A fixed-size thread pool polling spawned futures to completion. See the
/// [module docs](self).
pub struct Executor {
    shared: Arc<ExecShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads.len())
            .field("live_tasks", &*lock(&self.shared.live))
            .finish()
    }
}

impl Executor {
    /// Starts an executor with `threads` worker threads (at least one).
    ///
    /// The thread count bounds *compute* parallelism only: any number of
    /// tasks may be live, and tasks waiting on a channel occupy no thread.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(ExecShared {
            ready: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            live: Mutex::new(0),
            idle: Condvar::new(),
        });
        let threads = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Executor { shared, threads }
    }

    /// Submits a future for execution. The future starts running as soon as
    /// a worker thread is free and is dropped after completing (or if its
    /// poll panics — a panicking task never takes a worker thread down).
    pub fn spawn(&self, future: impl Future<Output = ()> + Send + 'static) {
        *lock(&self.shared.live) += 1;
        let task = Arc::new(Task {
            state: AtomicU8::new(SCHEDULED),
            future: Mutex::new(Some(Box::pin(future))),
            exec: Arc::clone(&self.shared),
        });
        self.shared.push_ready(task);
    }

    /// Blocks until every spawned task has completed. New tasks may be
    /// spawned afterwards; the executor stays usable.
    pub fn wait_idle(&self) {
        let mut live = lock(&self.shared.live);
        while *live > 0 {
            live = self
                .shared
                .idle
                .wait(live)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }
}

impl Drop for Executor {
    /// Stops the worker threads. Tasks still suspended at this point are
    /// dropped without completing — callers that need completion call
    /// [`Executor::wait_idle`] first.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_available.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        lock(&self.shared.ready).clear();
    }
}

fn worker_loop(shared: &Arc<ExecShared>) {
    loop {
        let task = {
            let mut ready = lock(&shared.ready);
            loop {
                if let Some(task) = ready.pop_front() {
                    break task;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                ready = shared
                    .work_available
                    .wait(ready)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        task.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        let mut slot = lock(&task.future);
        let Some(future) = slot.as_mut() else {
            continue; // completed task woken spuriously
        };
        let polled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            future.as_mut().poll(&mut cx)
        }));
        match polled {
            Ok(Poll::Pending) => {
                drop(slot);
                // Suspend — unless a waker fired during the poll, in which
                // case the task goes straight back to the queue.
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    task.state.store(SCHEDULED, Ordering::Release);
                    shared.push_ready(Arc::clone(&task));
                }
            }
            Ok(Poll::Ready(())) | Err(_) => {
                *slot = None;
                drop(slot);
                task.state.store(DONE, Ordering::Release);
                shared.task_finished();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// block_on
// ---------------------------------------------------------------------------

struct ThreadParker {
    thread: std::thread::Thread,
    notified: AtomicBool,
}

impl Wake for ThreadParker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notified.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives `future` to completion on the calling thread, parking between
/// polls. This is the sync→async bridge: the pipeline's input feeder uses it
/// to await buffer space in the bounded input channel, which is exactly how
/// backpressure reaches the input iterator.
pub fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = Box::pin(future);
    let parker = Arc::new(ThreadParker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&parker));
    let mut cx = Context::from_waker(&waker);
    loop {
        if let Poll::Ready(output) = future.as_mut().poll(&mut cx) {
            return output;
        }
        while !parker.notified.swap(false, Ordering::AcqRel) {
            std::thread::park();
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded async MPMC channel with depth-watch subscriptions
// ---------------------------------------------------------------------------

/// Error returned by [`Sender::send`] when every receiver has disconnected;
/// gives the unsent message back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders remain connected.
    Empty,
    /// The channel is empty and every sender has disconnected.
    Disconnected,
}

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// Tasks waiting for buffer space.
    send_wakers: Vec<Waker>,
    /// Tasks waiting for a message.
    recv_wakers: Vec<Waker>,
    /// Depth-event subscribers: woken on *every* state change (push, pop,
    /// disconnect), whether or not they receive from this channel.
    watch_wakers: Vec<Waker>,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    capacity: usize,
}

impl<T> Chan<T> {
    /// Collects the wakers to fire after a push: receivers and watchers.
    fn on_push(state: &mut ChanState<T>) -> Vec<Waker> {
        let mut wakers = wake_all(&mut state.recv_wakers);
        wakers.append(&mut wake_all(&mut state.watch_wakers));
        wakers
    }

    /// Collects the wakers to fire after a pop: senders and watchers.
    fn on_pop(state: &mut ChanState<T>) -> Vec<Waker> {
        let mut wakers = wake_all(&mut state.send_wakers);
        wakers.append(&mut wake_all(&mut state.watch_wakers));
        wakers
    }

    /// Collects every waker: fired when a side disconnects.
    fn on_disconnect(state: &mut ChanState<T>) -> Vec<Waker> {
        let mut wakers = wake_all(&mut state.send_wakers);
        wakers.append(&mut wake_all(&mut state.recv_wakers));
        wakers.append(&mut wake_all(&mut state.watch_wakers));
        wakers
    }
}

/// Creates a bounded async channel. `send` resolves only while fewer than
/// `capacity` messages are buffered (capacity is clamped to at least 1 —
/// rendezvous channels are not implemented).
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            send_wakers: Vec::new(),
            recv_wakers: Vec::new(),
            watch_wakers: Vec::new(),
        }),
        capacity: capacity.max(1),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// The sending half of a bounded channel. Clonable (multi-producer); the
/// channel disconnects for receivers when the last sender drops.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> Sender<T> {
    /// Sends `value` once buffer space exists. Resolves to an error only
    /// when every receiver has disconnected.
    pub fn send(&self, value: T) -> SendFuture<'_, T> {
        SendFuture {
            sender: self,
            value: Some(value),
        }
    }

    /// Synchronous convenience: [`block_on`] around [`Sender::send`]. Blocks
    /// the calling OS thread while the buffer is full.
    pub fn send_blocking(&self, value: T) -> Result<(), SendError<T>> {
        block_on(self.send(value))
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.chan.state).senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut state = lock(&self.chan.state);
            state.senders -= 1;
            if state.senders == 0 {
                Chan::on_disconnect(&mut state)
            } else {
                Vec::new()
            }
        };
        for waker in wakers {
            waker.wake();
        }
    }
}

/// Future returned by [`Sender::send`].
pub struct SendFuture<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
}

impl<T> std::fmt::Debug for SendFuture<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SendFuture").finish_non_exhaustive()
    }
}

impl<T> Unpin for SendFuture<'_, T> {}

impl<T> Future for SendFuture<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let value = this
            .value
            .take()
            .expect("SendFuture polled after completion");
        let wakers = {
            let mut state = lock(&this.sender.chan.state);
            if state.receivers == 0 {
                return Poll::Ready(Err(SendError(value)));
            }
            if state.queue.len() < this.sender.chan.capacity {
                state.queue.push_back(value);
                Chan::on_push(&mut state)
            } else {
                this.value = Some(value);
                register_waker(&mut state.send_wakers, cx.waker());
                return Poll::Pending;
            }
        };
        for waker in wakers {
            waker.wake();
        }
        Poll::Ready(Ok(()))
    }
}

/// The receiving half of a bounded channel. Clonable (multi-consumer); the
/// channel fails for senders when the last receiver drops.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

impl<T> Receiver<T> {
    /// Receives the next message. Resolves to `None` once the channel is
    /// empty and every sender has disconnected.
    pub fn recv(&self) -> RecvFuture<'_, T> {
        RecvFuture { receiver: self }
    }

    /// Receives a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let (popped, wakers) = {
            let mut state = lock(&self.chan.state);
            match state.queue.pop_front() {
                Some(value) => {
                    let wakers = Chan::on_pop(&mut state);
                    (Ok(value), wakers)
                }
                None if state.senders == 0 => (Err(TryRecvError::Disconnected), Vec::new()),
                None => (Err(TryRecvError::Empty), Vec::new()),
            }
        };
        for waker in wakers {
            waker.wake();
        }
        popped
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        lock(&self.chan.state).queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's buffer capacity.
    pub fn capacity(&self) -> usize {
        self.chan.capacity
    }

    /// Whether the channel is drained *and* every sender has disconnected —
    /// no message will ever arrive again.
    pub fn is_finished(&self) -> bool {
        let state = lock(&self.chan.state);
        state.queue.is_empty() && state.senders == 0
    }

    /// Subscribes `waker` to the channel's next state change (push, pop or
    /// disconnect). One-shot: fired subscriptions are cleared, so a pending
    /// future re-registers on every poll. This is the queue-depth event hook
    /// the migration heuristics build on — registering interest *before*
    /// re-checking depth makes the check race-free (any change after
    /// registration re-polls the subscriber).
    pub fn register_watch(&self, waker: &Waker) {
        register_waker(&mut lock(&self.chan.state).watch_wakers, waker);
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.chan.state).receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let wakers = {
            let mut state = lock(&self.chan.state);
            state.receivers -= 1;
            if state.receivers == 0 {
                Chan::on_disconnect(&mut state)
            } else {
                Vec::new()
            }
        };
        for waker in wakers {
            waker.wake();
        }
    }
}

/// Future returned by [`Receiver::recv`].
#[derive(Debug)]
pub struct RecvFuture<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Unpin for RecvFuture<'_, T> {}

impl<T> Future for RecvFuture<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let (result, wakers) = {
            let mut state = lock(&self.receiver.chan.state);
            match state.queue.pop_front() {
                Some(value) => {
                    let wakers = Chan::on_pop(&mut state);
                    (Poll::Ready(Some(value)), wakers)
                }
                None if state.senders == 0 => (Poll::Ready(None), Vec::new()),
                None => {
                    register_waker(&mut state.recv_wakers, cx.waker());
                    (Poll::Pending, Vec::new())
                }
            }
        };
        for waker in wakers {
            waker.wake();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn block_on_returns_the_output() {
        assert_eq!(block_on(async { 6 * 7 }), 42);
    }

    #[test]
    fn executor_runs_spawned_tasks_to_completion() {
        let executor = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            executor.spawn(async move {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        executor.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn channel_round_trips_in_fifo_order() {
        let (tx, rx) = channel(4);
        let executor = Executor::new(1);
        executor.spawn(async move {
            for i in 0..10 {
                tx.send(i).await.unwrap();
            }
        });
        let got: Vec<i32> = block_on(async {
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        executor.wait_idle();
    }

    #[test]
    fn bounded_send_applies_backpressure() {
        // A capacity-2 channel with a slow consumer: the producer cannot run
        // ahead — the buffer never exceeds capacity.
        let (tx, rx) = channel(2);
        let executor = Executor::new(2);
        let peak = Arc::new(AtomicUsize::new(0));
        let peak_producer = Arc::clone(&peak);
        let rx_probe = rx.clone();
        executor.spawn(async move {
            for i in 0..50u32 {
                tx.send(i).await.unwrap();
                peak_producer.fetch_max(rx_probe.len(), Ordering::Relaxed);
            }
        });
        let received = block_on(async {
            let mut count = 0;
            while let Some(_v) = rx.recv().await {
                count += 1;
            }
            count
        });
        executor.wait_idle();
        assert_eq!(received, 50);
        assert!(
            peak.load(Ordering::Relaxed) <= 2,
            "buffer exceeded its capacity"
        );
    }

    #[test]
    fn send_fails_once_all_receivers_drop() {
        let (tx, rx) = channel::<u8>(1);
        drop(rx);
        assert_eq!(block_on(tx.send(7)), Err(SendError(7)));
    }

    #[test]
    fn recv_drains_then_reports_disconnect() {
        let (tx, rx) = channel(4);
        tx.send_blocking(1).unwrap();
        tx.send_blocking(2).unwrap();
        drop(tx);
        assert_eq!(block_on(rx.recv()), Some(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(block_on(rx.recv()), None);
        assert!(rx.is_finished());
    }

    #[test]
    fn multi_consumer_receives_every_message_once() {
        let (tx, rx) = channel(4);
        let executor = Executor::new(3);
        let seen = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let rx = rx.clone();
            let seen = Arc::clone(&seen);
            executor.spawn(async move {
                while let Some(_v) = rx.recv().await {
                    seen.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        drop(rx);
        for i in 0..200 {
            tx.send_blocking(i).unwrap();
        }
        drop(tx);
        executor.wait_idle();
        assert_eq!(seen.load(Ordering::Relaxed), 200);
    }

    /// A future that resolves once another channel's depth crosses a
    /// threshold — the watch-subscription pattern the migration tasks use.
    struct DepthAtLeast<'a> {
        rx: &'a Receiver<u32>,
        threshold: usize,
    }

    impl Future for DepthAtLeast<'_> {
        type Output = usize;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<usize> {
            self.rx.register_watch(cx.waker());
            let len = self.rx.len();
            if len >= self.threshold {
                Poll::Ready(len)
            } else {
                Poll::Pending
            }
        }
    }

    #[test]
    fn watch_subscribers_observe_depth_changes_without_polling() {
        let (tx, rx) = channel(8);
        let executor = Executor::new(2);
        let woke_at = Arc::new(AtomicUsize::new(0));
        let woke = Arc::clone(&woke_at);
        let watcher_rx = rx.clone();
        executor.spawn(async move {
            let depth = DepthAtLeast {
                rx: &watcher_rx,
                threshold: 3,
            }
            .await;
            woke.store(depth, Ordering::Relaxed);
        });
        for i in 0..5 {
            tx.send_blocking(i).unwrap();
        }
        executor.wait_idle();
        assert!(woke_at.load(Ordering::Relaxed) >= 3);
        drop(tx);
        assert_eq!(rx.len(), 5);
    }

    #[test]
    fn panicking_task_does_not_kill_the_executor() {
        let executor = Executor::new(1);
        executor.spawn(async {
            panic!("task panic must be contained");
        });
        let done = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&done);
        executor.spawn(async move {
            flag.store(1, Ordering::Relaxed);
        });
        executor.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }
}
