//! Deterministic performance model of the cross-comparing workflow.
//!
//! The paper's system-level results (Table 1, Figures 11 and 12) measure how
//! wall-clock throughput changes with the execution *structure*: sequential
//! vs multi-stream vs pipelined, with and without dynamic task migration, on
//! platforms with different CPU/GPU balances. Those effects come from
//! thread-level overlap across many cores and a discrete GPU — neither of
//! which exists on the single-core continuous-integration substrate this
//! reproduction runs on. As documented in DESIGN.md, we therefore reproduce
//! them with a deterministic resource-constrained scheduling model:
//!
//! * per-tile stage costs are derived from an analytic cost model whose
//!   constants are calibrated to the per-operation costs reported or implied
//!   by the paper (§2.3, §5.2, §5.5);
//! * each execution scheme is simulated by list-scheduling the per-tile stage
//!   tasks onto CPU worker slots and GPU slots;
//! * dynamic task migration is modelled exactly like the real component: a
//!   stage task may execute on the other device when that device would start
//!   it sooner (GPU idle → parse tasks move to the GPU; GPU congested →
//!   aggregation tasks move to the CPU).
//!
//! The model is fully deterministic, so the regenerated tables and figures
//! are reproducible bit-for-bit.

use crate::pixelbox::adaptive::{BatchObservation, SplitConfig, SplitController, SplitTrace};
use sccg_datagen::{Dataset, TilePair};

/// Workload statistics of one tile task, the unit of scheduling (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileStats {
    /// Raw text bytes of the tile's two polygon files.
    pub text_bytes: u64,
    /// Total polygons across both segmentation results.
    pub polygons: u64,
    /// Candidate pairs produced by the MBR join.
    pub pairs: u64,
    /// Total pixels covered by the candidate pairs' joint MBRs (drives the
    /// aggregation cost).
    pub pair_pixels: u64,
}

impl TileStats {
    /// Derives tile statistics from a generated tile pair by running the
    /// actual MBR join (cheap) and summing joint-MBR pixel counts.
    pub fn from_tile(tile: &TilePair) -> TileStats {
        let left: Vec<_> = tile.first.iter().map(|r| r.polygon.mbr()).collect();
        let right: Vec<_> = tile.second.iter().map(|r| r.polygon.mbr()).collect();
        let pairs = sccg_rtree::mbr_join(&left, &right);
        let pair_pixels: u64 = pairs
            .iter()
            .map(|&(i, j)| left[i as usize].union(&right[j as usize]).pixel_count() as u64)
            .sum();
        TileStats {
            text_bytes: (tile.first_as_text().len() + tile.second_as_text().len()) as u64,
            polygons: (tile.first.len() + tile.second.len()) as u64,
            pairs: pairs.len() as u64,
            pair_pixels,
        }
    }

    /// Derives the statistics of every tile of a data set.
    pub fn from_dataset(dataset: &Dataset) -> Vec<TileStats> {
        dataset.tiles.iter().map(TileStats::from_tile).collect()
    }
}

/// Calibrated per-operation costs (seconds). The defaults reproduce the
/// relative stage weights reported by the paper: GEOS-style exact overlay
/// ~0.7 ms per pair (430 s for 620 k pairs, §5.2), PixelBox-CPU-S ~0.47 ms
/// per pair (290 s), PixelBox on the GTX 580 ~5.8 µs per pair (3.6 s), text
/// parsing around 8 MiB/s (geometry text parsing with validation), index
/// building and filtering each well under 6% of query time (§2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Seconds per byte of polygon text parsed on one CPU core.
    pub parse_per_byte: f64,
    /// Seconds per byte of polygon text parsed by GPU-Parser on the reference
    /// GPU. The paper describes its performance as "only comparable to its
    /// CPU counterpart" (§4.2); the default makes one GPU roughly one and a
    /// half CPU cores' worth of parsing throughput.
    pub gpu_parse_per_byte: f64,
    /// Seconds per polygon for Hilbert R-tree bulk loading.
    pub build_per_polygon: f64,
    /// Seconds per polygon probed during the MBR-join filter.
    pub filter_per_polygon: f64,
    /// Seconds per candidate pair emitted by the filter.
    pub filter_per_pair: f64,
    /// Seconds per candidate pair for the SDBMS executing
    /// `ST_Area(ST_Intersection(...))` with the GEOS-style exact overlay
    /// (including executor overhead), used by the PostGIS baselines.
    pub geos_per_pair: f64,
    /// Seconds per candidate pair for PixelBox-CPU on one core.
    pub pixelbox_cpu_per_pair: f64,
    /// Seconds per candidate pair for PixelBox on the reference GPU,
    /// including its share of host↔device transfer.
    pub pixelbox_gpu_per_pair: f64,
    /// Fixed per-launch GPU overhead (kernel dispatch plus the latency of the
    /// small, unbatched host↔device transfers of a single tile task). The
    /// pipelined aggregator amortizes it over [`CostParams::aggregator_batch_tiles`]
    /// tiles; the NoPipe schemes pay it per tile (§4.1).
    pub gpu_launch_overhead: f64,
    /// Number of tiles the pipelined aggregator batches per launch.
    pub aggregator_batch_tiles: f64,
    /// Multiplier on GPU aggregation time under uncoordinated sharing by
    /// multiple streams (`NoPipe-M`), modelling the serialization and
    /// contention the paper attributes to uncontrolled kernel invocations
    /// (§4, §5.5).
    pub uncoordinated_gpu_penalty: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            parse_per_byte: 1.0e-7,
            gpu_parse_per_byte: 6.5e-8,
            build_per_polygon: 1.0e-6,
            filter_per_polygon: 1.5e-6,
            filter_per_pair: 2.0e-7,
            geos_per_pair: 1.1e-3,
            pixelbox_cpu_per_pair: 4.7e-4,
            pixelbox_gpu_per_pair: 5.8e-6,
            gpu_launch_overhead: 6.0e-3,
            aggregator_batch_tiles: 8.0,
            uncoordinated_gpu_penalty: 1.3,
        }
    }
}

/// Per-tile stage durations used by the scheduler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileCosts {
    /// Parser stage on a CPU worker.
    pub parse_cpu: f64,
    /// Parser stage executed by GPU-Parser.
    pub parse_gpu: f64,
    /// Builder stage (single CPU thread).
    pub build: f64,
    /// Filter stage (single CPU thread).
    pub filter: f64,
    /// Aggregator stage with PixelBox on one reference GPU, with the launch
    /// overhead amortized by the pipelined aggregator's batching.
    pub aggregate_gpu: f64,
    /// Aggregator stage with PixelBox on one reference GPU without batching
    /// (one launch per tile), the NoPipe code path.
    pub aggregate_gpu_unbatched: f64,
    /// Aggregator stage with PixelBox-CPU on one CPU worker.
    pub aggregate_cpu: f64,
    /// Aggregator stage with the GEOS-style overlay on one CPU core (the
    /// SDBMS baseline path).
    pub aggregate_geos: f64,
}

impl CostParams {
    /// Evaluates the cost model for one tile.
    pub fn tile_costs(&self, stats: &TileStats) -> TileCosts {
        let pairs = stats.pairs as f64;
        let kernel = pairs * self.pixelbox_gpu_per_pair;
        TileCosts {
            parse_cpu: stats.text_bytes as f64 * self.parse_per_byte,
            parse_gpu: stats.text_bytes as f64 * self.gpu_parse_per_byte,
            build: stats.polygons as f64 * self.build_per_polygon,
            filter: stats.polygons as f64 * self.filter_per_polygon + pairs * self.filter_per_pair,
            aggregate_gpu: kernel + self.gpu_launch_overhead / self.aggregator_batch_tiles.max(1.0),
            aggregate_gpu_unbatched: kernel + self.gpu_launch_overhead,
            aggregate_cpu: pairs * self.pixelbox_cpu_per_pair,
            aggregate_geos: pairs * self.geos_per_pair,
        }
    }
}

/// Hardware platform of an experiment, mirroring §5.1 and §5.6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of CPU worker slots available to the workflow.
    pub cpu_workers: u32,
    /// Number of GPUs.
    pub gpus: u32,
    /// Relative speed of each GPU versus the reference GTX 580 cost model
    /// (1.0 = reference; smaller is slower). Config-III deliberately slows the
    /// GPU down to emulate a shared card, as the paper does by choosing a
    /// sub-optimal block size.
    pub gpu_speed: f64,
}

impl PlatformConfig {
    /// Config-I: the Dell T1500 workstation — 4-core Core i7 860 + GTX 580.
    pub const fn config_i() -> Self {
        PlatformConfig {
            name: "Config-I (T1500: 4-core CPU + GTX 580)",
            cpu_workers: 4,
            gpus: 1,
            gpu_speed: 1.0,
        }
    }

    /// Config-II: the Amazon EC2 instance — 2× Xeon X5570 (8 cores) + 2× Tesla M2050.
    pub const fn config_ii() -> Self {
        PlatformConfig {
            name: "Config-II (EC2: 8-core CPU + 2x Tesla M2050)",
            cpu_workers: 8,
            gpus: 2,
            gpu_speed: 0.9,
        }
    }

    /// Config-III: the EC2 instance with a single GPU deliberately slowed
    /// down (the paper slows PixelBox by choosing a sub-optimal thread block
    /// size to emulate a card shared with other applications, §5.6).
    pub const fn config_iii() -> Self {
        PlatformConfig {
            name: "Config-III (EC2: 8-core CPU + 1 slowed GPU)",
            cpu_workers: 8,
            gpus: 1,
            gpu_speed: 0.7,
        }
    }

    /// The platform PostGIS-M runs on in §5.7 (EC2 with both CPUs, 16 query
    /// streams over 8 physical cores).
    pub const fn postgis_m_platform() -> Self {
        PlatformConfig {
            name: "PostGIS-M (EC2: 8 cores, 16 query streams)",
            cpu_workers: 8,
            gpus: 0,
            gpu_speed: 1.0,
        }
    }
}

/// Execution scheme of the whole workload (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// One execution stream, stages strictly sequential per tile pair
    /// (`NoPipe-S`).
    NoPipeS,
    /// `streams` independent execution streams, each running the sequential
    /// per-tile workflow, contending for CPU cores and GPUs (`NoPipe-M`).
    NoPipeM {
        /// Number of concurrent streams.
        streams: u32,
    },
    /// The fully pipelined SCCG framework (`Pipelined`).
    Pipelined,
}

/// How the modelled hybrid aggregator splits each batch between the GPU and
/// the spare CPU workers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HybridSplitMode {
    /// Every batch at the given GPU fraction (the pre-adaptive behavior).
    Static(f64),
    /// Batch-by-batch timing feedback through the real [`SplitController`]
    /// (seeded at 0.5), including its warm-up and convergence transient.
    Adaptive,
}

/// Result of modelling the pipelined scheme with a hybrid aggregator.
#[derive(Debug, Clone)]
pub struct HybridPipelineReport {
    /// Modelled makespan of the full pipelined scheme, seconds.
    pub seconds: f64,
    /// Busy seconds of the hybrid aggregation stage alone (sum of per-batch
    /// walls, each the max of the two substrate shares).
    pub aggregation_seconds: f64,
    /// The controller's per-batch split decisions.
    pub trace: SplitTrace,
}

/// A pool of identical execution slots; acquiring a slot schedules a task at
/// the earliest time both the task and a slot are ready.
#[derive(Debug, Clone)]
struct SlotPool {
    free_at: Vec<f64>,
}

impl SlotPool {
    fn new(slots: u32) -> Self {
        SlotPool {
            free_at: vec![0.0; slots.max(1) as usize],
        }
    }

    /// Schedules a task of length `duration` that becomes ready at `ready`;
    /// returns its completion time.
    fn acquire(&mut self, ready: f64, duration: f64) -> f64 {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("pool has at least one slot");
        let start = self.free_at[idx].max(ready);
        let end = start + duration;
        self.free_at[idx] = end;
        end
    }

    fn makespan(&self) -> f64 {
        self.free_at.iter().fold(0.0, |acc, &t| acc.max(t))
    }
}

/// The performance model: platform + cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Platform being modelled.
    pub platform: PlatformConfig,
    /// Per-operation cost parameters.
    pub costs: CostParams,
}

impl PipelineModel {
    /// Creates a model with default (paper-calibrated) cost parameters.
    pub fn new(platform: PlatformConfig) -> Self {
        PipelineModel {
            platform,
            costs: CostParams::default(),
        }
    }

    fn gpu_time(&self, reference_seconds: f64) -> f64 {
        reference_seconds / self.platform.gpu_speed.max(1e-6)
    }

    /// Number of CPU workers dedicated to the parser stage in the pipelined
    /// scheme (the remaining workers host the builder, the filter and the
    /// aggregator's host thread, mirroring the thread layout of Figure 6).
    fn parser_slots(&self) -> u32 {
        (self.platform.cpu_workers / 2).max(2)
    }

    /// Simulated makespan (seconds) of processing `tiles` under `scheme`,
    /// with or without dynamic task migration (migration only affects the
    /// pipelined scheme, as in the paper).
    pub fn simulate(&self, scheme: Scheme, tiles: &[TileStats], migration: bool) -> f64 {
        let costs: Vec<TileCosts> = tiles.iter().map(|t| self.costs.tile_costs(t)).collect();
        match scheme {
            Scheme::NoPipeS => costs
                .iter()
                .map(|c| {
                    c.parse_cpu + c.build + c.filter + self.gpu_time(c.aggregate_gpu_unbatched)
                })
                .sum(),
            Scheme::NoPipeM { streams } => self.simulate_multi_stream(&costs, streams),
            Scheme::Pipelined => self.simulate_pipelined(&costs, migration),
        }
    }

    /// Multiple independent streams, each running the four stages back to
    /// back per tile; CPU phases contend for the worker slots and GPU phases
    /// for the GPU slots. GPU use is uncoordinated (no batching, contending
    /// kernel invocations), which the paper observes as serialization that
    /// leaves the CPU cores only ~50% utilized (§5.5).
    fn simulate_multi_stream(&self, costs: &[TileCosts], streams: u32) -> f64 {
        let streams = streams.max(1);
        let mut cpu = SlotPool::new(self.platform.cpu_workers);
        let mut gpu = SlotPool::new(self.platform.gpus.max(1));
        let contention = if streams > 1 {
            self.costs.uncoordinated_gpu_penalty.max(1.0)
        } else {
            1.0
        };
        let mut stream_ready = vec![0.0f64; streams as usize];
        for (i, c) in costs.iter().enumerate() {
            let s = i % streams as usize;
            let cpu_done = cpu.acquire(stream_ready[s], c.parse_cpu + c.build + c.filter);
            let gpu_done = gpu.acquire(
                cpu_done,
                self.gpu_time(c.aggregate_gpu_unbatched) * contention,
            );
            stream_ready[s] = gpu_done;
        }
        cpu.makespan().max(gpu.makespan())
    }

    /// The pipelined scheme, evaluated with a steady-state bottleneck model:
    /// with every stage overlapped through the inter-stage buffers, the
    /// makespan is governed by the busiest stage (parser pool, builder,
    /// filter, or GPU aggregator) plus the latency of filling the pipeline
    /// with the first tile.
    ///
    /// Dynamic task migration re-balances the two flexible stages exactly as
    /// §4.2 describes: when the parser pool is the bottleneck and the GPU has
    /// spare capacity, a fraction of the parse work moves to GPU-Parser until
    /// the two equalize; when the GPU aggregator is the bottleneck, a
    /// fraction of the aggregation work moves to PixelBox-CPU on the CPU
    /// workers until the two equalize.
    fn simulate_pipelined(&self, costs: &[TileCosts], migration: bool) -> f64 {
        let slots = f64::from(self.parser_slots());
        let gpus = f64::from(self.platform.gpus.max(1));

        let total_parse_cpu: f64 = costs.iter().map(|c| c.parse_cpu).sum();
        let total_parse_gpu: f64 = costs.iter().map(|c| self.gpu_time(c.parse_gpu)).sum();
        let total_build: f64 = costs.iter().map(|c| c.build).sum();
        let total_filter: f64 = costs.iter().map(|c| c.filter).sum();
        let total_agg_gpu: f64 = costs.iter().map(|c| self.gpu_time(c.aggregate_gpu)).sum();
        let total_agg_cpu: f64 = costs.iter().map(|c| c.aggregate_cpu).sum();

        let mut parse_stage = total_parse_cpu / slots;
        let mut agg_stage = total_agg_gpu / gpus;

        if migration && parse_stage > agg_stage && total_parse_cpu > 0.0 {
            // GPU idle: move a fraction `x` of the parse work onto the GPU
            // until the parser pool and the GPU finish at the same time:
            //   P(1-x)/slots = A/gpus + Pg*x/gpus
            let x = ((parse_stage - agg_stage)
                / (total_parse_gpu / gpus + total_parse_cpu / slots))
                .clamp(0.0, 1.0);
            parse_stage = total_parse_cpu * (1.0 - x) / slots;
            agg_stage += total_parse_gpu * x / gpus;
        } else if migration && agg_stage > parse_stage && total_agg_gpu > 0.0 {
            // GPU congested: move a fraction `y` of the aggregation work onto
            // the CPU workers until both sides finish at the same time:
            //   A(1-y)/gpus = (P + Ac*y)/slots
            let y = ((agg_stage - parse_stage) / (total_agg_cpu / slots + total_agg_gpu / gpus))
                .clamp(0.0, 1.0);
            agg_stage = total_agg_gpu * (1.0 - y) / gpus;
            parse_stage = (total_parse_cpu + total_agg_cpu * y) / slots;
        }

        let bottleneck = parse_stage
            .max(agg_stage)
            .max(total_build)
            .max(total_filter);
        // Pipeline fill/drain latency: one average tile traversing all stages.
        let fill = if costs.is_empty() {
            0.0
        } else {
            let n = costs.len() as f64;
            (total_parse_cpu + total_build + total_filter + total_agg_gpu) / n
        };
        bottleneck + fill
    }

    /// CPU worker slots available to the aggregator's hybrid CPU share (the
    /// workers not hosting the parser pool; at least one).
    fn aggregation_cpu_slots(&self) -> u32 {
        self.platform
            .cpu_workers
            .saturating_sub(self.parser_slots())
            .max(1)
    }

    /// Models the pipelined scheme with a *hybrid* aggregator: each
    /// aggregator batch splits between the GPU and the spare CPU workers.
    /// Under [`HybridSplitMode::Adaptive`] the split is steered batch by
    /// batch by the **actual** [`SplitController`] (fed the modelled batch
    /// timings), so Table 1 can be reproduced with and without the feedback
    /// loop — including its warm-up and convergence transient; under
    /// [`HybridSplitMode::Static`] every batch uses the given fraction, the
    /// pre-adaptive behavior.
    pub fn simulate_pipelined_hybrid(
        &self,
        tiles: &[TileStats],
        mode: HybridSplitMode,
    ) -> HybridPipelineReport {
        let costs: Vec<TileCosts> = tiles.iter().map(|t| self.costs.tile_costs(t)).collect();
        let controller = SplitController::new(match mode {
            HybridSplitMode::Adaptive => SplitConfig::adaptive(0.5),
            HybridSplitMode::Static(fraction) => SplitConfig::fixed(fraction),
        });
        let cpu_slots = self.aggregation_cpu_slots();
        let batch_tiles = (self.costs.aggregator_batch_tiles.max(1.0)) as usize;

        let mut aggregation_seconds = 0.0;
        for batch in tiles.chunks(batch_tiles.max(1)) {
            let pairs: u64 = batch.iter().map(|t| t.pairs).sum();
            if pairs == 0 {
                continue;
            }
            let fraction = controller.next_fraction();
            let mut gpu_pairs = ((pairs as f64) * fraction).round().min(pairs as f64) as u64;
            if mode == HybridSplitMode::Adaptive && pairs >= 2 {
                // Same observability guarantee as the real hybrid backend:
                // rounding must not starve either substrate of samples.
                gpu_pairs = gpu_pairs.clamp(1, pairs - 1);
            }
            let cpu_pairs = pairs - gpu_pairs;
            let gpu_seconds = if gpu_pairs > 0 {
                self.gpu_time(
                    gpu_pairs as f64 * self.costs.pixelbox_gpu_per_pair
                        + self.costs.gpu_launch_overhead,
                )
            } else {
                0.0
            };
            let cpu_seconds =
                cpu_pairs as f64 * self.costs.pixelbox_cpu_per_pair / f64::from(cpu_slots);
            // Both shares run concurrently; the batch finishes with the
            // slower one — exactly what the controller equalizes.
            aggregation_seconds += gpu_seconds.max(cpu_seconds);
            controller.record(BatchObservation {
                gpu_pairs: gpu_pairs as usize,
                gpu_seconds,
                gpu_simulated_seconds: gpu_seconds,
                cpu_pairs: cpu_pairs as usize,
                cpu_seconds,
                cpu_workers: cpu_slots as usize,
                fraction_used: Some(fraction),
            });
        }

        // Same steady-state bottleneck structure as `simulate_pipelined`,
        // with the hybrid aggregation stage in place of the GPU-only one.
        // Aggregation-side task migration is subsumed by the intra-batch
        // split, so no separate migration term applies.
        let slots = f64::from(self.parser_slots());
        let total_parse: f64 = costs.iter().map(|c| c.parse_cpu).sum();
        let total_build: f64 = costs.iter().map(|c| c.build).sum();
        let total_filter: f64 = costs.iter().map(|c| c.filter).sum();
        let bottleneck = (total_parse / slots)
            .max(aggregation_seconds)
            .max(total_build)
            .max(total_filter);
        let fill = if costs.is_empty() {
            0.0
        } else {
            // One average tile traversing all stages, with the aggregation
            // leg costed at this run's *hybrid* per-tile wall (the GPU-only
            // per-tile cost would overstate the scheme it models).
            let n = costs.len() as f64;
            (total_parse + total_build + total_filter + aggregation_seconds) / n
        };
        HybridPipelineReport {
            seconds: bottleneck + fill,
            aggregation_seconds,
            trace: controller.trace(),
        }
    }

    /// Modelled single-core SDBMS execution time of the *optimized*
    /// cross-comparing query (Figure 1(b)): index build + index search +
    /// exact area-of-intersection per candidate pair. Loading time is
    /// excluded, matching §5.1.
    pub fn sdbms_single_core(&self, tiles: &[TileStats]) -> f64 {
        tiles
            .iter()
            .map(|t| {
                let c = self.costs.tile_costs(t);
                c.build + c.filter + c.aggregate_geos
            })
            .sum()
    }

    /// Modelled parallelized SDBMS execution (PostGIS-M, §5.7): the polygon
    /// tables are partitioned into chunks processed by independent query
    /// streams across the platform's CPU workers.
    pub fn sdbms_parallel(&self, tiles: &[TileStats]) -> f64 {
        let mut cpu = SlotPool::new(self.platform.cpu_workers);
        for t in tiles {
            let c = self.costs.tile_costs(t);
            cpu.acquire(0.0, c.build + c.filter + c.aggregate_geos);
        }
        cpu.makespan()
    }

    /// Throughput (bytes of raw text per second) of the pipelined scheme, the
    /// metric Figure 11 normalizes.
    pub fn pipelined_throughput(&self, tiles: &[TileStats], migration: bool) -> f64 {
        let bytes: u64 = tiles.iter().map(|t| t.text_bytes).sum();
        let seconds = self.simulate(Scheme::Pipelined, tiles, migration);
        if seconds <= 0.0 {
            0.0
        } else {
            bytes as f64 / seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_tiles(n: usize) -> Vec<TileStats> {
        (0..n)
            .map(|i| TileStats {
                // Text sizes reflect real segmentation output, where nucleus
                // boundaries carry 50–100 vertices (§5.1: ~1.6 KiB of text per
                // polygon), so parsing is a substantial share of CPU work.
                text_bytes: 90_000 + (i as u64 % 7) * 8_000,
                polygons: 400 + (i as u64 % 5) * 40,
                pairs: 220 + (i as u64 % 9) * 20,
                pair_pixels: 90_000 + (i as u64 % 3) * 10_000,
            })
            .collect()
    }

    #[test]
    fn tile_costs_are_positive_and_ordered() {
        let costs = CostParams::default().tile_costs(&synthetic_tiles(1)[0]);
        assert!(costs.parse_cpu > 0.0);
        assert!(costs.aggregate_geos > costs.aggregate_cpu);
        assert!(costs.aggregate_cpu > costs.aggregate_gpu);
        assert!(costs.build < costs.aggregate_geos);
    }

    #[test]
    fn slot_pool_serializes_on_one_slot_and_overlaps_on_many() {
        let mut one = SlotPool::new(1);
        one.acquire(0.0, 1.0);
        one.acquire(0.0, 1.0);
        assert!((one.makespan() - 2.0).abs() < 1e-12);
        let mut four = SlotPool::new(4);
        for _ in 0..4 {
            four.acquire(0.0, 1.0);
        }
        assert!((four.makespan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table1_ordering_holds() {
        // Table 1: PostGIS-S >> NoPipe-S > NoPipe-M > Pipelined (in time).
        let tiles = synthetic_tiles(64);
        let model = PipelineModel::new(PlatformConfig::config_i());
        let postgis = model.sdbms_single_core(&tiles);
        let nopipe_s = model.simulate(Scheme::NoPipeS, &tiles, false);
        let nopipe_m = model.simulate(Scheme::NoPipeM { streams: 4 }, &tiles, false);
        let pipelined = model.simulate(Scheme::Pipelined, &tiles, false);
        assert!(
            postgis > nopipe_s * 10.0,
            "postgis {postgis} nopipe_s {nopipe_s}"
        );
        assert!(nopipe_s > nopipe_m);
        assert!(nopipe_m > pipelined);
    }

    #[test]
    fn migration_never_hurts_and_helps_most_on_config_i() {
        let tiles = synthetic_tiles(96);
        let gain = |platform: PlatformConfig| {
            let model = PipelineModel::new(platform);
            let without = model.pipelined_throughput(&tiles, false);
            let with = model.pipelined_throughput(&tiles, true);
            with / without
        };
        let g1 = gain(PlatformConfig::config_i());
        let g2 = gain(PlatformConfig::config_ii());
        let g3 = gain(PlatformConfig::config_iii());
        assert!(g1 >= 1.0 && g2 >= 1.0 && g3 >= 1.0);
        // Figure 11 shape: every configuration benefits, Config-III (slowed,
        // congested GPU) benefits the least.
        assert!(g1 > 1.05, "Config-I gain should be substantial, got {g1}");
        assert!(g2 > 1.02, "Config-II gain should be visible, got {g2}");
        assert!(g3 < g1, "g3 {g3} should be below g1 {g1}");
        assert!(g3 < g2 + 1e-9, "g3 {g3} should not exceed g2 {g2}");
    }

    #[test]
    fn adaptive_hybrid_split_beats_or_matches_every_static_fraction() {
        // The modelled counterpart of the substrates-bench acceptance
        // criterion: on an asymmetric platform the adaptive aggregation
        // stage must come within 10% of the best static fraction (and here
        // it beats them — the static fractions pay their imbalance on every
        // batch, the adaptive one only during convergence).
        let tiles = synthetic_tiles(96);
        let model = PipelineModel::new(PlatformConfig::config_i());
        let adaptive = model.simulate_pipelined_hybrid(&tiles, HybridSplitMode::Adaptive);
        let best_static = [0.25, 0.5, 0.75]
            .into_iter()
            .map(|f| {
                model
                    .simulate_pipelined_hybrid(&tiles, HybridSplitMode::Static(f))
                    .aggregation_seconds
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            adaptive.aggregation_seconds <= best_static * 1.10,
            "adaptive {} vs best static {best_static}",
            adaptive.aggregation_seconds
        );
    }

    #[test]
    fn adaptive_hybrid_trace_converges_and_static_stays_pinned() {
        let tiles = synthetic_tiles(96);
        let model = PipelineModel::new(PlatformConfig::config_i());
        let adaptive = model.simulate_pipelined_hybrid(&tiles, HybridSplitMode::Adaptive);
        // The modelled GPU is orders of magnitude faster per pair than the
        // spare CPU workers, so the balanced fraction is close to 1; the
        // trace must move from the 0.5 seed into that neighborhood.
        assert!(!adaptive.trace.is_empty());
        assert_eq!(adaptive.trace.samples()[0].fraction, 0.5);
        assert!(
            adaptive.trace.last_fraction().unwrap() > 0.9,
            "converged fraction {:?}",
            adaptive.trace.last_fraction()
        );
        let pinned = model.simulate_pipelined_hybrid(&tiles, HybridSplitMode::Static(0.6));
        assert!(pinned
            .trace
            .samples()
            .iter()
            .all(|s| s.fraction == 0.6 && s.next_fraction == 0.6));
        // The full-scheme makespan is finite and at least the stage time.
        assert!(adaptive.seconds >= adaptive.aggregation_seconds);
    }

    #[test]
    fn parallel_sdbms_scales_with_workers() {
        let tiles = synthetic_tiles(64);
        let model = PipelineModel::new(PlatformConfig::postgis_m_platform());
        let single = model.sdbms_single_core(&tiles);
        let parallel = model.sdbms_parallel(&tiles);
        assert!(parallel < single);
        assert!(parallel > single / 16.0);
    }

    #[test]
    fn sccg_beats_parallel_sdbms_by_over_an_order_of_magnitude() {
        // The headline claim (abstract, §5.7) is >18x over parallelized
        // PostGIS on the full-size data sets; on the scaled-down synthetic
        // workload the fixed per-tile overheads weigh more, so the model is
        // required to show "over half an order of magnitude" here, with the
        // full-shape comparison reported by the fig12 bench/reproduce run.
        let tiles = synthetic_tiles(128);
        let sccg = PipelineModel::new(PlatformConfig::config_i());
        let postgis = PipelineModel::new(PlatformConfig::postgis_m_platform());
        let speedup =
            postgis.sdbms_parallel(&tiles) / sccg.simulate(Scheme::Pipelined, &tiles, true);
        assert!(speedup > 6.0, "speedup {speedup}");
    }

    #[test]
    fn more_streams_do_not_slow_down_nopipe_m() {
        let tiles = synthetic_tiles(40);
        let model = PipelineModel::new(PlatformConfig::config_i());
        let one = model.simulate(Scheme::NoPipeM { streams: 1 }, &tiles, false);
        let four = model.simulate(Scheme::NoPipeM { streams: 4 }, &tiles, false);
        assert!(four <= one + 1e-9);
    }

    #[test]
    fn tile_stats_can_be_derived_from_generated_tiles() {
        let tile = sccg_datagen::generate_tile_pair(&sccg_datagen::TileSpec {
            target_polygons: 50,
            width: 512,
            height: 512,
            seed: 5,
            ..Default::default()
        });
        let stats = TileStats::from_tile(&tile);
        assert!(stats.text_bytes > 0);
        assert_eq!(stats.polygons as usize, tile.polygon_count());
        assert!(stats.pairs > 0);
        assert!(stats.pair_pixels >= stats.pairs);
    }
}
