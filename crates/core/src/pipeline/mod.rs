//! The pipelined cross-comparing framework with dynamic task migration
//! (paper §4, Figure 6), executed as an **event-driven streaming pipeline**.
//!
//! The workflow from raw polygon text files to the final similarity score
//! runs as four stages connected by *bounded* buffers:
//!
//! 1. **Parser** — multiple parser tasks turn polygon text files into binary
//!    polygon records.
//! 2. **Builder** — a single task bulk-loads a Hilbert R-tree over each
//!    tile's second polygon set.
//! 3. **Filter** — a single task probes the index with the first polygon
//!    set, emitting the array of MBR-intersecting pairs.
//! 4. **Aggregator** — a single task owns the (simulated) GPU, batches
//!    filtered tasks and runs the PixelBox kernel, folding the per-pair
//!    ratios into the Jaccard similarity.
//!
//! # Execution model
//!
//! Every stage is a future spawned on a small hand-rolled task executor
//! ([`exec`]); the stages communicate through bounded async channels whose
//! `send` suspends (without occupying a thread) while the downstream buffer
//! is full. Backpressure therefore propagates all the way to the input:
//! [`Pipeline::run_streaming`] pulls tasks from the caller's iterator *only
//! as buffer space frees up*, so a dataset of any length streams through
//! with **O(buffer capacity) tiles resident**, never O(dataset). The
//! observed high-water mark is reported as
//! [`PipelineReport::peak_in_flight_tiles`].
//!
//! Tasks are defined at image-tile granularity, matching the segmentation
//! procedure (§4.1). The two *migration heuristics* of §4.2 are event-driven
//! reactions to queue-depth changes of the aggregator's input buffer
//! (subscribed via [`exec::Receiver::register_watch`], replacing the former
//! sleep-polling threads): when the buffer fills up (GPU congested), a
//! migration task pulls aggregation work out and runs PixelBox-CPU on it;
//! when it runs empty (GPU idle), another migration task pulls parse tasks
//! forward through the GPU parser path.
//!
//! The streaming pipeline here is functionally real — every result is
//! computed by the actual stages. Because wall-clock overlap cannot be
//! observed on a single-core host, the *performance* of the different
//! execution schemes is reproduced by the deterministic model in [`model`],
//! fed by the same per-tile statistics.

pub mod exec;
pub mod model;

use crate::jaccard::{JaccardAccumulator, JaccardSummary};
use crate::pixelbox::{
    AggregationDevice, ComputeBackend, CpuBackend, PixelBoxConfig, PolygonPair, SplitConfig,
    SplitController, SplitPolicy,
};
use parking_lot::Mutex;
use sccg_datagen::TilePair;
use sccg_geometry::text::{parse_record, PolygonRecord};
use sccg_geometry::Rect;
use sccg_gpu_sim::{Device, DeviceConfig};
use sccg_rtree::HilbertRTree;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::time::Instant;

/// Configuration of the pipelined framework.
///
/// Marked `#[non_exhaustive]` so future fields are not breaking changes:
/// construct it with [`PipelineConfig::default`] and the `with_*` builder
/// methods rather than a struct literal.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PipelineConfig {
    /// Number of parser worker tasks.
    pub parser_workers: usize,
    /// Capacity of each inter-stage buffer — including the input buffer —
    /// in tasks. This bounds the pipeline's peak memory: see
    /// [`PipelineReport::peak_in_flight_tiles`].
    pub buffer_capacity: usize,
    /// PixelBox parameters used by the aggregator.
    pub pixelbox: PixelBoxConfig,
    /// Whether the dynamic task-migration tasks run.
    pub enable_migration: bool,
    /// Simulated GPU the aggregator owns.
    pub gpu: DeviceConfig,
    /// Maximum number of filtered tasks the aggregator groups into one GPU
    /// batch (input data batching, §4.1).
    pub aggregator_batch: usize,
    /// Substrate the aggregator stage dispatches batches to.
    pub device: AggregationDevice,
    /// CPU worker threads used when `device` involves the CPU.
    pub cpu_workers: usize,
    /// Seed GPU share of each batch when `device` is
    /// [`AggregationDevice::Hybrid`] (clamped to `[0, 1]`): the
    /// warm-up/fallback fraction under [`SplitPolicy::Adaptive`], the
    /// permanent fraction under [`SplitPolicy::Static`].
    pub hybrid_gpu_fraction: f64,
    /// How the hybrid split evolves across aggregator batches: adaptive
    /// timing feedback (default) or pinned at `hybrid_gpu_fraction`.
    pub split_policy: SplitPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            parser_workers: 2,
            buffer_capacity: 8,
            pixelbox: PixelBoxConfig::paper_default(),
            enable_migration: true,
            gpu: DeviceConfig::gtx580(),
            aggregator_batch: 8,
            device: AggregationDevice::Gpu,
            cpu_workers: crate::parallel::default_workers(),
            hybrid_gpu_fraction: 0.5,
            split_policy: SplitPolicy::default(),
        }
    }
}

impl PipelineConfig {
    /// The hybrid split configuration this pipeline config describes.
    pub fn split_config(&self) -> SplitConfig {
        SplitConfig::adaptive(self.hybrid_gpu_fraction).with_policy(self.split_policy)
    }

    /// Returns a copy with a different parser worker count.
    pub fn with_parser_workers(mut self, parser_workers: usize) -> Self {
        self.parser_workers = parser_workers;
        self
    }

    /// Returns a copy with a different inter-stage buffer capacity.
    pub fn with_buffer_capacity(mut self, buffer_capacity: usize) -> Self {
        self.buffer_capacity = buffer_capacity;
        self
    }

    /// Returns a copy with different PixelBox parameters.
    pub fn with_pixelbox(mut self, pixelbox: PixelBoxConfig) -> Self {
        self.pixelbox = pixelbox;
        self
    }

    /// Returns a copy with dynamic task migration enabled or disabled.
    pub fn with_migration(mut self, enable_migration: bool) -> Self {
        self.enable_migration = enable_migration;
        self
    }

    /// Returns a copy with a different simulated GPU configuration.
    pub fn with_gpu(mut self, gpu: DeviceConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Returns a copy with a different aggregator batch size.
    pub fn with_aggregator_batch(mut self, aggregator_batch: usize) -> Self {
        self.aggregator_batch = aggregator_batch;
        self
    }

    /// Returns a copy dispatching the aggregator to a different substrate.
    pub fn with_device(mut self, device: AggregationDevice) -> Self {
        self.device = device;
        self
    }

    /// Returns a copy with a different CPU worker count.
    pub fn with_cpu_workers(mut self, cpu_workers: usize) -> Self {
        self.cpu_workers = cpu_workers;
        self
    }

    /// Returns a copy with a different seed GPU fraction for the hybrid
    /// split.
    pub fn with_hybrid_gpu_fraction(mut self, fraction: f64) -> Self {
        self.hybrid_gpu_fraction = fraction;
        self
    }

    /// Returns a copy with a different hybrid split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }
}

/// Input task for the parser stage: the two polygon text files of one tile.
#[derive(Debug, Clone)]
pub struct ParseTask {
    /// Tile identifier.
    pub tile_id: u32,
    /// Text of the first segmentation result's polygon file.
    pub first_text: String,
    /// Text of the second segmentation result's polygon file.
    pub second_text: String,
}

impl ParseTask {
    /// Builds a parse task from an in-memory tile pair by serializing it to
    /// the text format (what a segmentation pipeline would have written to
    /// disk).
    pub fn from_tile_pair(tile: &TilePair) -> Self {
        ParseTask {
            tile_id: tile.tile_id,
            first_text: tile.first_as_text(),
            second_text: tile.second_as_text(),
        }
    }
}

/// Output of the parser stage.
struct ParsedTile {
    first: Vec<PolygonRecord>,
    second: Vec<PolygonRecord>,
}

/// Output of the builder stage.
struct IndexedTile {
    first: Vec<PolygonRecord>,
    second: Vec<PolygonRecord>,
    index: HilbertRTree<u32>,
}

/// Output of the filter stage / input of the aggregator.
struct FilteredTile {
    pairs: Vec<PolygonPair>,
}

/// Per-stage busy wall-clock time, in seconds. On a single-core host the
/// stage times overlap poorly; they are reported for observability, while the
/// scheme comparisons use [`model`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageSeconds {
    /// Parser workers (CPU).
    pub parse: f64,
    /// Builder task.
    pub build: f64,
    /// Filter task.
    pub filter: f64,
    /// Aggregator host time (including the functional half of the simulated
    /// kernel execution).
    pub aggregate_host: f64,
    /// Simulated GPU busy time (kernels + transfers).
    pub aggregate_gpu_simulated: f64,
    /// CPU time spent on aggregation tasks migrated off the GPU.
    pub aggregate_migrated_cpu: f64,
}

/// Result of one pipeline run over a set of tiles.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Jaccard similarity summary over every tile processed.
    pub summary: JaccardSummary,
    /// Number of tiles processed.
    pub tiles: usize,
    /// Number of candidate pairs aggregated.
    pub candidate_pairs: u64,
    /// Aggregation tasks migrated from the GPU to the CPU.
    pub migrated_to_cpu: u64,
    /// Parse tasks migrated from CPU workers to the GPU parser path.
    pub migrated_to_gpu: u64,
    /// High-water mark of tiles resident in the pipeline at once: admitted
    /// from the input iterator but not yet folded by the aggregator. Bounded
    /// by the buffers, not the dataset: at most `4 × buffer_capacity` (the
    /// four inter-stage buffers) plus one tile in the hands of the feeder
    /// and of each stage task (`parser_workers + 4`, plus 2 with migration
    /// enabled) plus the aggregator's in-progress batch
    /// (`aggregator_batch − 1`) and, with migration, one CPU-migration
    /// quantum (`buffer_capacity − 1`). See
    /// [`PipelineReport::in_flight_bound`].
    pub peak_in_flight_tiles: usize,
    /// Per-stage busy times.
    pub stage_seconds: StageSeconds,
    /// Per-batch hybrid split decisions, when the aggregator dispatched to
    /// [`AggregationDevice::Hybrid`] (`None` for single-substrate runs).
    pub split_trace: Option<crate::pixelbox::SplitTrace>,
}

impl PipelineReport {
    /// The final `J'` similarity. Guarded against degenerate summaries
    /// ([`JaccardSummary::similarity_or_zero`]): a run with no intersecting
    /// pairs (or a hand-built report whose ratio denominator was zero)
    /// reports `0.0`, never `NaN`.
    pub fn similarity(&self) -> f64 {
        self.summary.similarity_or_zero()
    }

    /// The analytic bound on [`PipelineReport::peak_in_flight_tiles`] for a
    /// configuration — what the bounded-memory regression test asserts
    /// against. O(buffer capacity), independent of the dataset length.
    pub fn in_flight_bound(config: &PipelineConfig) -> usize {
        let capacity = config.buffer_capacity.max(1);
        // One tile in the feeder's hand (pulled from the iterator, awaiting
        // buffer space) plus one in each stage task's hands.
        let hands =
            1 + config.parser_workers.max(1) + 3 + if config.enable_migration { 2 } else { 0 };
        let batching = config.aggregator_batch.max(1) - 1;
        let migration_quantum = if config.enable_migration {
            capacity - 1
        } else {
            0
        };
        4 * capacity + hands + batching + migration_quantum
    }
}

/// Target busy time of one CPU migration batch. The migration task pulls
/// congested aggregation tasks until their estimated single-worker compute
/// time (from the split controller's observed CPU rate) fills this slice, so
/// each migration amortizes the steal overhead without holding work hostage
/// from a GPU that may drain the congestion first.
const MIGRATION_SLICE_SECONDS: f64 = 0.02;

/// The pipelined cross-comparing framework.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
    device: Arc<Device>,
}

struct SharedState {
    accumulator: Mutex<JaccardAccumulator>,
    candidate_pairs: AtomicU64,
    tiles_done: AtomicU64,
    /// Tasks pulled from the input iterator so far.
    admitted: AtomicU64,
    /// High-water mark of `admitted − tiles_done`.
    peak_in_flight: AtomicU64,
    migrated_to_cpu: AtomicU64,
    migrated_to_gpu: AtomicU64,
    parse_nanos: AtomicU64,
    build_nanos: AtomicU64,
    filter_nanos: AtomicU64,
    aggregate_host_nanos: AtomicU64,
    aggregate_migrated_nanos: AtomicU64,
}

impl SharedState {
    fn new() -> Self {
        SharedState {
            accumulator: Mutex::new(JaccardAccumulator::new()),
            candidate_pairs: AtomicU64::new(0),
            tiles_done: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            peak_in_flight: AtomicU64::new(0),
            migrated_to_cpu: AtomicU64::new(0),
            migrated_to_gpu: AtomicU64::new(0),
            parse_nanos: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            filter_nanos: AtomicU64::new(0),
            aggregate_host_nanos: AtomicU64::new(0),
            aggregate_migrated_nanos: AtomicU64::new(0),
        }
    }

    fn add_nanos(counter: &AtomicU64, started: Instant) {
        counter.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accounts one task pulled from the input iterator and samples the
    /// in-flight high-water mark. The sample conservatively over-counts (a
    /// tile may finish between the two loads), so the recorded peak is an
    /// upper bound on the true peak — exactly what a memory-bound assertion
    /// wants.
    fn record_admitted(&self) {
        let admitted = self.admitted.fetch_add(1, Ordering::Relaxed) + 1;
        let done = self.tiles_done.load(Ordering::Relaxed);
        self.peak_in_flight
            .fetch_max(admitted.saturating_sub(done), Ordering::Relaxed);
    }

    /// Folds one aggregated batch into the shared accumulator and counters.
    fn fold_batch(&self, areas: &[crate::pixelbox::PairAreas], tiles: u64) {
        let mut acc = JaccardAccumulator::new();
        for a in areas {
            acc.add_pair(*a);
        }
        self.accumulator.lock().merge(&acc);
        self.candidate_pairs
            .fetch_add(areas.len() as u64, Ordering::Relaxed);
        self.tiles_done.fetch_add(tiles, Ordering::Relaxed);
    }
}

/// Steals a parse task for the GPU parser path once the aggregator's input
/// buffer runs empty (GPU idleness indication, §4.2). Resolves to `None`
/// when the input is exhausted. Event-driven: between relevant queue-depth
/// changes the migration task is suspended, occupying no thread — the
/// replacement for the former 100 µs sleep-poll loop.
struct ParseSteal<'a> {
    parse: &'a exec::Receiver<ParseTask>,
    agg_probe: &'a exec::Receiver<FilteredTile>,
}

impl Future for ParseSteal<'_> {
    type Output = Option<ParseTask>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Subscribe before checking: any depth change after this point
        // re-polls us, so the checks below cannot miss an event.
        self.parse.register_watch(cx.waker());
        self.agg_probe.register_watch(cx.waker());
        if self.agg_probe.is_empty() {
            match self.parse.try_recv() {
                Ok(task) => Poll::Ready(Some(task)),
                Err(exec::TryRecvError::Disconnected) => Poll::Ready(None),
                Err(exec::TryRecvError::Empty) => Poll::Pending,
            }
        } else if self.parse.is_finished() {
            Poll::Ready(None)
        } else {
            Poll::Pending
        }
    }
}

/// Steals an aggregation task for PixelBox-CPU once the aggregator's input
/// buffer has filled up (GPU congestion indication, §4.2). Resolves to
/// `None` when the buffer is drained and disconnected.
struct CongestedSteal<'a> {
    agg: &'a exec::Receiver<FilteredTile>,
    capacity: usize,
}

impl Future for CongestedSteal<'_> {
    type Output = Option<FilteredTile>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        self.agg.register_watch(cx.waker());
        if self.agg.len() >= self.capacity {
            if let Ok(task) = self.agg.try_recv() {
                return Poll::Ready(Some(task));
            }
        }
        if self.agg.is_finished() {
            Poll::Ready(None)
        } else {
            Poll::Pending
        }
    }
}

impl Pipeline {
    /// Creates a pipeline with its own simulated GPU device.
    pub fn new(config: PipelineConfig) -> Self {
        let device = Arc::new(Device::new(config.gpu.clone()));
        Pipeline { config, device }
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The simulated GPU owned by the aggregator stage.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Runs the full workflow over a pre-materialized set of parse tasks.
    /// Equivalent to [`Pipeline::run_streaming`] over the vector's iterator;
    /// prefer `run_streaming` when tasks can be produced lazily, so the
    /// whole task list never has to exist in memory at once.
    pub fn run(&self, tasks: Vec<ParseTask>) -> PipelineReport {
        self.run_streaming(tasks.into_iter())
    }

    /// Runs the full workflow over a *stream* of parse tasks and returns the
    /// similarity report.
    ///
    /// The iterator is advanced from the calling thread, and only as buffer
    /// space frees up: when every bounded stage buffer is full, the next
    /// `next()` call is deferred until the aggregator drains a tile. Peak
    /// resident tiles are therefore O([`PipelineConfig::buffer_capacity`])
    /// regardless of how many tasks the iterator yields (asserted by the
    /// bounded-memory regression test; observed value in
    /// [`PipelineReport::peak_in_flight_tiles`]).
    pub fn run_streaming(&self, tasks: impl Iterator<Item = ParseTask>) -> PipelineReport {
        let shared = Arc::new(SharedState::new());
        let gpu_busy_before = self.device.stats().busy_seconds;

        // The aggregator's backend (and, for the hybrid substrate, its split
        // controller) exists before any task starts: the migration task
        // consults the controller's observed rates while the aggregator
        // feeds it per-batch timings.
        let (backend, split_controller) = self.config.device.backend_with_controller(
            Arc::clone(&self.device),
            self.config.cpu_workers,
            self.config.split_config(),
        );

        let capacity = self.config.buffer_capacity.max(1);
        let (parse_tx, parse_rx) = exec::channel::<ParseTask>(capacity);
        let (build_tx, build_rx) = exec::channel::<ParsedTile>(capacity);
        let (filter_tx, filter_rx) = exec::channel::<IndexedTile>(capacity);
        let (agg_tx, agg_rx) = exec::channel::<FilteredTile>(capacity);

        // Worker threads bound compute parallelism; suspended tasks occupy
        // none of them. One per parser plus builder/filter/aggregator, plus
        // the two migration tasks' compute.
        let parser_workers = self.config.parser_workers.max(1);
        let threads = parser_workers + 3 + if self.config.enable_migration { 2 } else { 0 };
        let executor = exec::Executor::new(threads);

        // --- Parser tasks --------------------------------------------------
        for _ in 0..parser_workers {
            let parse_rx = parse_rx.clone();
            let build_tx = build_tx.clone();
            let shared = Arc::clone(&shared);
            executor.spawn(async move {
                while let Some(task) = parse_rx.recv().await {
                    let started = Instant::now();
                    let parsed = parse_task(&task);
                    SharedState::add_nanos(&shared.parse_nanos, started);
                    if build_tx.send(parsed).await.is_err() {
                        break;
                    }
                }
            });
        }

        // --- Migration task: parse tasks onto the idle GPU ------------------
        if self.config.enable_migration {
            let parse_rx = parse_rx.clone();
            let build_tx = build_tx.clone();
            let agg_probe = agg_rx.clone();
            let shared = Arc::clone(&shared);
            let device = Arc::clone(&self.device);
            executor.spawn(async move {
                while let Some(task) = (ParseSteal {
                    parse: &parse_rx,
                    agg_probe: &agg_probe,
                })
                .await
                {
                    let bytes = (task.first_text.len() + task.second_text.len()) as u64;
                    // The GPU parser produces the same records; bill the
                    // transfer of the raw text to the device to account for
                    // its use.
                    device.transfer(bytes);
                    let parsed = parse_task(&task);
                    shared.migrated_to_gpu.fetch_add(1, Ordering::Relaxed);
                    if build_tx.send(parsed).await.is_err() {
                        break;
                    }
                }
            });
        }
        drop(parse_rx);
        drop(build_tx);

        // --- Migration task: aggregation tasks onto the CPU -----------------
        if self.config.enable_migration {
            let agg_rx = agg_rx.clone();
            let shared = Arc::clone(&shared);
            let pixelbox = self.config.pixelbox;
            let controller = split_controller.clone();
            executor.spawn(async move {
                // The migration target is always a single-worker CPU
                // backend: one executor thread is the extra core (§4.2).
                let migration_backend = CpuBackend::new(1);
                while let Some(first) = (CongestedSteal {
                    agg: &agg_rx,
                    capacity,
                })
                .await
                {
                    let started = Instant::now();
                    let mut pairs = first.pairs;
                    let mut tiles = 1u64;
                    // Size the migration batch from the controller's
                    // observed per-worker CPU rate: keep pulling congested
                    // tasks until the accumulated pairs fill one migration
                    // time slice, instead of the fixed one-task quantum.
                    // Without an observed rate (single-substrate aggregator,
                    // or no data yet) the quantum stays one task. The tile
                    // bound keeps the in-hand data O(buffer capacity) — the
                    // bounded-memory guarantee extends to migration.
                    let quantum_pairs = controller
                        .as_ref()
                        .and_then(|c| c.observed_cpu_rate_per_worker())
                        .map_or(0.0, |rate| rate * MIGRATION_SLICE_SECONDS);
                    while (pairs.len() as f64) < quantum_pairs
                        && tiles < capacity as u64
                        && agg_rx.len() >= capacity.div_ceil(2)
                    {
                        match agg_rx.try_recv() {
                            Ok(extra) => {
                                pairs.extend(extra.pairs);
                                tiles += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    let batch = migration_backend.compute_batch(&pairs, &pixelbox);
                    let seconds = started.elapsed().as_secs_f64();
                    shared.fold_batch(&batch.areas, tiles);
                    // Every migrated run is a valid sample of the
                    // single-worker CPU rate.
                    if let Some(controller) = &controller {
                        controller.record_cpu_sample(pairs.len(), seconds, 1);
                    }
                    shared.migrated_to_cpu.fetch_add(tiles, Ordering::Relaxed);
                    SharedState::add_nanos(&shared.aggregate_migrated_nanos, started);
                }
            });
        }

        // --- Builder --------------------------------------------------------
        {
            let shared = Arc::clone(&shared);
            executor.spawn(async move {
                while let Some(parsed) = build_rx.recv().await {
                    let started = Instant::now();
                    let index = HilbertRTree::bulk_load(
                        parsed
                            .second
                            .iter()
                            .enumerate()
                            .map(|(j, r)| (r.polygon.mbr(), j as u32))
                            .collect(),
                    );
                    // Prewarm every record's edge table while the tile is
                    // still records: the filter stage clones polygons into
                    // pairs, and a clone shares an already-built table but
                    // starts cold otherwise — so building here costs one
                    // build per polygon per tile instead of one per pair
                    // membership at first kernel touch.
                    let polygons: Vec<_> = parsed
                        .first
                        .iter()
                        .chain(parsed.second.iter())
                        .map(|record| &record.polygon)
                        .collect();
                    crate::pixelbox::build_edge_tables_batch(
                        &polygons,
                        crate::parallel::default_workers(),
                    );
                    let tile = IndexedTile {
                        first: parsed.first,
                        second: parsed.second,
                        index,
                    };
                    SharedState::add_nanos(&shared.build_nanos, started);
                    if filter_tx.send(tile).await.is_err() {
                        break;
                    }
                }
            });
        }

        // --- Filter ---------------------------------------------------------
        {
            let shared = Arc::clone(&shared);
            executor.spawn(async move {
                while let Some(tile) = filter_rx.recv().await {
                    let started = Instant::now();
                    let mut pairs = Vec::new();
                    for record in &tile.first {
                        let mbr: Rect = record.polygon.mbr();
                        tile.index.search(&mbr, |_, &j| {
                            pairs.push(PolygonPair::new(
                                record.polygon.clone(),
                                tile.second[j as usize].polygon.clone(),
                            ));
                        });
                    }
                    SharedState::add_nanos(&shared.filter_nanos, started);
                    if agg_tx.send(FilteredTile { pairs }).await.is_err() {
                        break;
                    }
                }
            });
        }

        // --- Aggregator -----------------------------------------------------
        {
            let shared = Arc::clone(&shared);
            let backend = Arc::clone(&backend);
            let pixelbox = self.config.pixelbox;
            let aggregator_batch = self.config.aggregator_batch.max(1) as u64;
            executor.spawn(async move {
                while let Some(first) = agg_rx.recv().await {
                    // Batch additional tasks that are already waiting (§4.1).
                    let mut batch_pairs = first.pairs;
                    let mut batch_tiles = 1u64;
                    while batch_tiles < aggregator_batch {
                        match agg_rx.try_recv() {
                            Ok(task) => {
                                batch_pairs.extend(task.pairs);
                                batch_tiles += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    let started = Instant::now();
                    let result = backend.compute_batch(&batch_pairs, &pixelbox);
                    shared.fold_batch(&result.areas, batch_tiles);
                    SharedState::add_nanos(&shared.aggregate_host_nanos, started);
                }
            });
        }

        // --- Feeder (the calling thread) ------------------------------------
        // Backpressure reaches the iterator here: `send` suspends while the
        // input buffer is full, so `tasks.next()` is only called when the
        // pipeline has room for the result.
        for task in tasks {
            shared.record_admitted();
            if parse_tx.send_blocking(task).is_err() {
                break;
            }
        }
        drop(parse_tx); // Parser tasks drain until disconnected.
        executor.wait_idle();

        let submitted = shared.admitted.load(Ordering::Relaxed) as usize;
        let gpu_busy_after = self.device.stats().busy_seconds;
        let summary = shared.accumulator.lock().summary();
        let mut report = PipelineReport {
            summary,
            tiles: shared.tiles_done.load(Ordering::Relaxed) as usize,
            candidate_pairs: shared.candidate_pairs.load(Ordering::Relaxed),
            migrated_to_cpu: shared.migrated_to_cpu.load(Ordering::Relaxed),
            migrated_to_gpu: shared.migrated_to_gpu.load(Ordering::Relaxed),
            peak_in_flight_tiles: shared.peak_in_flight.load(Ordering::Relaxed) as usize,
            stage_seconds: StageSeconds {
                parse: shared.parse_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                build: shared.build_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                filter: shared.filter_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                aggregate_host: shared.aggregate_host_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
                aggregate_gpu_simulated: gpu_busy_after - gpu_busy_before,
                aggregate_migrated_cpu: shared.aggregate_migrated_nanos.load(Ordering::Relaxed)
                    as f64
                    * 1e-9,
            },
            split_trace: split_controller
                .map(|controller: Arc<SplitController>| controller.trace()),
        };
        // Defensive clamp: every admitted task is processed exactly once.
        report.tiles = report.tiles.min(submitted);
        report
    }
}

/// Parses both polygon files of a task. Parse failures are treated as empty
/// segmentation results: a malformed tile must not abort a whole-slide
/// comparison (the workflow skips malformed tiles).
fn parse_task(task: &ParseTask) -> ParsedTile {
    ParsedTile {
        first: parse_polygon_file_pooled(&task.first_text).unwrap_or_default(),
        second: parse_polygon_file_pooled(&task.second_text).unwrap_or_default(),
    }
}

/// [`parse_polygon_file`](sccg_geometry::text::parse_polygon_file) with
/// record-level parallelism on the persistent
/// [`WorkerPool`](crate::parallel::WorkerPool): the file's record lines fan
/// out over [`WorkerPool::global`](crate::parallel::WorkerPool::global) in
/// chunks, so the parser stage draws on the same pool as the compute kernels
/// instead of competing with it from dedicated threads — and a
/// many-thousand-record tile parses at pool width. Identical semantics:
/// blank and `#` lines are skipped, and the first malformed line (in file
/// order) fails the whole file with its 1-based line number.
pub fn parse_polygon_file_pooled(input: &str) -> sccg_geometry::Result<Vec<PolygonRecord>> {
    let lines: Vec<(usize, &str)> = input
        .lines()
        .enumerate()
        .filter_map(|(idx, line)| {
            let trimmed = line.trim();
            (!trimmed.is_empty() && !trimmed.starts_with('#')).then_some((idx + 1, trimmed))
        })
        .collect();
    crate::parallel::WorkerPool::global()
        .map(
            &lines,
            crate::parallel::default_workers(),
            64,
            |&(line_no, line)| parse_record(line, line_no),
        )
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CrossComparison, EngineConfig};
    use sccg_datagen::{generate_dataset, DatasetSpec};
    use sccg_geometry::text::parse_polygon_file;

    fn small_dataset() -> sccg_datagen::Dataset {
        generate_dataset(&DatasetSpec {
            name: "pipeline-test".into(),
            tiles: 6,
            polygons_per_tile: 40,
            tile_size: 512,
            seed: 77,
            nucleus_radius: 6,
        })
    }

    fn tasks_of(dataset: &sccg_datagen::Dataset) -> Vec<ParseTask> {
        dataset
            .tiles
            .iter()
            .map(ParseTask::from_tile_pair)
            .collect()
    }

    #[test]
    fn pipeline_matches_direct_engine_results() {
        let dataset = small_dataset();
        let pipeline = Pipeline::new(PipelineConfig {
            enable_migration: false,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(tasks_of(&dataset));

        // Reference: compare each tile directly with the engine and merge.
        let engine = CrossComparison::new(EngineConfig::default());
        let mut acc = JaccardAccumulator::new();
        for tile in &dataset.tiles {
            let r = engine.compare_records(&tile.first, &tile.second);
            for areas in &r.pair_areas {
                acc.add_pair(*areas);
            }
        }
        let expected = acc.summary();
        assert_eq!(report.summary.candidate_pairs, expected.candidate_pairs);
        assert_eq!(
            report.summary.intersecting_pairs,
            expected.intersecting_pairs
        );
        assert!((report.similarity() - expected.similarity).abs() < 1e-12);
        assert_eq!(report.tiles, dataset.tiles.len());
        assert_eq!(report.migrated_to_cpu + report.migrated_to_gpu, 0);
        assert!(report.stage_seconds.parse > 0.0);
        assert!(report.stage_seconds.aggregate_gpu_simulated > 0.0);
    }

    #[test]
    fn migration_enabled_produces_identical_similarity() {
        let dataset = small_dataset();
        let without = Pipeline::new(PipelineConfig {
            enable_migration: false,
            ..PipelineConfig::default()
        })
        .run(tasks_of(&dataset));
        let with = Pipeline::new(PipelineConfig {
            enable_migration: true,
            buffer_capacity: 2,
            ..PipelineConfig::default()
        })
        .run(tasks_of(&dataset));
        assert_eq!(
            with.summary.candidate_pairs,
            without.summary.candidate_pairs
        );
        assert!((with.similarity() - without.similarity()).abs() < 1e-12);
        assert_eq!(with.tiles, without.tiles);
    }

    #[test]
    fn pipeline_aggregation_devices_agree() {
        // The aggregator must produce the same similarity regardless of the
        // substrate it dispatches to — CPU, GPU or the hybrid split.
        let dataset = small_dataset();
        let reference = Pipeline::new(PipelineConfig {
            enable_migration: false,
            ..PipelineConfig::default()
        })
        .run(tasks_of(&dataset));
        assert!(reference.split_trace.is_none(), "GPU runs carry no trace");
        for (device, split_policy) in [
            (AggregationDevice::Cpu, SplitPolicy::Adaptive),
            (AggregationDevice::Hybrid, SplitPolicy::Adaptive),
            (AggregationDevice::Hybrid, SplitPolicy::Static),
        ] {
            let report = Pipeline::new(PipelineConfig {
                enable_migration: false,
                device,
                split_policy,
                ..PipelineConfig::default()
            })
            .run(tasks_of(&dataset));
            assert_eq!(
                report.summary.candidate_pairs, reference.summary.candidate_pairs,
                "{device:?}/{split_policy:?}"
            );
            assert_eq!(
                report.summary.intersecting_pairs, reference.summary.intersecting_pairs,
                "{device:?}/{split_policy:?}"
            );
            assert!(
                (report.similarity() - reference.similarity()).abs() < 1e-12,
                "{device:?}/{split_policy:?}"
            );
            if device == AggregationDevice::Hybrid {
                let trace = report.split_trace.as_ref().expect("hybrid runs trace");
                assert!(!trace.is_empty());
                assert!(trace
                    .samples()
                    .iter()
                    .all(|s| (0.0..=1.0).contains(&s.next_fraction)));
                if split_policy == SplitPolicy::Static {
                    assert!(trace.samples().iter().all(|s| s.next_fraction == 0.5));
                }
            }
        }
    }

    #[test]
    fn pooled_parse_matches_the_sequential_parser() {
        let dataset = small_dataset();
        let task = ParseTask::from_tile_pair(&dataset.tiles[0]);
        let text = format!("# header comment\n\n{}\n   \n", task.first_text);
        assert_eq!(
            parse_polygon_file_pooled(&text).unwrap(),
            parse_polygon_file(&text).unwrap()
        );
        assert!(parse_polygon_file_pooled("").unwrap().is_empty());
        // The first malformed line (in file order) fails the file with the
        // same error as the sequential parser.
        let bad = "1 4 0 0 4 0 4 4 0 4\nnot a record\nalso bad\n";
        assert_eq!(
            parse_polygon_file_pooled(bad).unwrap_err().to_string(),
            parse_polygon_file(bad).unwrap_err().to_string()
        );
    }

    #[test]
    fn empty_input_is_handled() {
        let pipeline = Pipeline::new(PipelineConfig::default());
        let report = pipeline.run(Vec::new());
        assert_eq!(report.tiles, 0);
        assert_eq!(report.candidate_pairs, 0);
        assert_eq!(report.similarity(), 0.0);
        assert_eq!(report.peak_in_flight_tiles, 0);
    }

    #[test]
    fn similarity_accessor_guards_degenerate_summaries() {
        // An empty run reports 0.0, and even a hand-built report whose
        // summary carries a NaN ratio (zero denominator upstream) must not
        // leak the NaN through the accessor.
        let mut report = Pipeline::new(PipelineConfig::default()).run(Vec::new());
        assert_eq!(report.similarity(), 0.0);
        report.summary.similarity = f64::NAN;
        assert_eq!(report.similarity(), 0.0);
        report.summary.similarity = f64::INFINITY;
        assert_eq!(report.similarity(), 0.0);
    }

    #[test]
    fn malformed_tiles_are_skipped_not_fatal() {
        let mut tasks = tasks_of(&small_dataset());
        tasks.push(ParseTask {
            tile_id: 999,
            first_text: "this is not a polygon file".into(),
            second_text: String::new(),
        });
        let pipeline = Pipeline::new(PipelineConfig {
            enable_migration: false,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(tasks);
        assert!(report.candidate_pairs > 0);
    }

    #[test]
    fn single_parser_worker_and_tiny_buffers_still_complete() {
        let dataset = small_dataset();
        let pipeline = Pipeline::new(PipelineConfig {
            parser_workers: 1,
            buffer_capacity: 1,
            aggregator_batch: 1,
            enable_migration: true,
            ..PipelineConfig::default()
        });
        let report = pipeline.run(tasks_of(&dataset));
        assert_eq!(report.tiles, dataset.tiles.len());
        assert!(report.similarity() > 0.0);
    }

    #[test]
    fn peak_in_flight_stays_within_the_analytic_bound() {
        let dataset = small_dataset();
        for enable_migration in [false, true] {
            let config = PipelineConfig {
                buffer_capacity: 2,
                aggregator_batch: 2,
                enable_migration,
                ..PipelineConfig::default()
            };
            let report = Pipeline::new(config.clone()).run(tasks_of(&dataset));
            assert_eq!(report.tiles, dataset.tiles.len());
            assert!(
                report.peak_in_flight_tiles <= PipelineReport::in_flight_bound(&config),
                "peak {} exceeds bound {} (migration: {enable_migration})",
                report.peak_in_flight_tiles,
                PipelineReport::in_flight_bound(&config)
            );
        }
    }
}
