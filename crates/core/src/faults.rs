//! Deterministic fault injection for end-to-end failure containment tests.
//!
//! Production systems degrade gracefully only if their failure paths are
//! *exercised*, and failure paths are only testable when failures are
//! reproducible. This module provides that harness: a [`FaultPlan`] is a
//! seeded, serializable schedule of injection points — storage read/write
//! I/O errors, slow reads with configured latency, engine-worker kills,
//! tile-decode corruption, connection resets — and a [`FaultInjector`] is
//! the plan armed with atomic trigger counters, threaded as an optional
//! `Arc<FaultInjector>` through the storage, serving, and wire layers.
//!
//! Design constraints:
//!
//! * **Zero cost when absent.** Every hook site holds an
//!   `Option<Arc<FaultInjector>>`; the `None` branch is a single pointer
//!   test, so production configurations pay nothing.
//! * **Deterministic.** Triggers count occurrences (the Nth read of tile T,
//!   the Kth write operation, the next M shards of engine E), never wall
//!   clocks or thread timing, so a chaos run replays bit-identically.
//! * **Virtual latency.** Injected slow reads *account* their configured
//!   latency in an atomic nanosecond counter ([`FaultInjector::
//!   virtual_delay_nanos`]) instead of sleeping, so timing-sensitive tests
//!   assert the delay was charged without adding wall-clock time.
//! * **Serializable.** A plan round-trips through a compact `key=value`
//!   text form ([`FaultPlan::to_text`] / [`FaultPlan::parse`]) so chaos
//!   schedules can be logged alongside the run they shaped.

use crate::error::SccgError;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A read fault scheduled against one tile: the tile's next `times` read
/// attempts fail with a typed [`SccgError::Storage`] before touching disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadFault {
    /// Tile index the fault targets.
    pub tile: u64,
    /// How many consecutive read attempts fail before reads succeed again.
    pub times: u64,
}

/// A slow read scheduled against one tile: every read of the tile charges
/// `latency_nanos` of *virtual* latency (an atomic counter, never a sleep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowRead {
    /// Tile index the latency applies to.
    pub tile: u64,
    /// Virtual latency charged per read, in nanoseconds.
    pub latency_nanos: u64,
}

/// An engine-worker kill: the engine's next `times` popped shards are
/// treated as if the worker crashed mid-shard (the supervisor records the
/// failure and the shard is re-dispatched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineKill {
    /// Engine index in the service's pool.
    pub engine: u64,
    /// How many consecutive shards die on this engine.
    pub times: u64,
}

/// A connection reset: the connection serving client `client` is dropped
/// abruptly once it has sent `after_frames` frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionReset {
    /// Server-assigned client id the reset targets.
    pub client: u64,
    /// Number of frames the server sends before the connection drops.
    pub after_frames: u64,
}

/// A seeded, serializable schedule of fault-injection points.
///
/// The plan itself is inert data; arm it with [`FaultInjector::new`] to get
/// the triggerable form the storage/serve/net layers consult. The `seed`
/// drives any derived pseudo-random choice (currently the byte position
/// flipped when corrupting a tile block), so the same plan corrupts the
/// same byte every run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct FaultPlan {
    /// Seed for derived pseudo-random choices (corruption byte position).
    pub seed: u64,
    /// Scheduled per-tile read failures.
    pub read_faults: Vec<ReadFault>,
    /// Scheduled per-tile virtual slow reads.
    pub slow_reads: Vec<SlowRead>,
    /// Tiles whose on-disk block bytes are corrupted on every read (the
    /// per-block checksum then fails, exercising containment + quarantine).
    pub corrupt_tiles: Vec<u64>,
    /// Zero-based indices of write operations that fail (each streamed tile
    /// append, the footer/trailer write, and the final atomic rename are
    /// one operation each).
    pub write_fail_ops: Vec<u64>,
    /// Scheduled engine-worker kills.
    pub engine_kills: Vec<EngineKill>,
    /// Scheduled connection resets.
    pub connection_resets: Vec<ConnectionReset>,
}

impl FaultPlan {
    /// Creates an empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Schedules the next `times` reads of `tile` to fail.
    pub fn fail_read(mut self, tile: u64, times: u64) -> Self {
        self.read_faults.push(ReadFault { tile, times });
        self
    }

    /// Schedules every read of `tile` to charge `latency_nanos` of virtual
    /// latency.
    pub fn slow_read(mut self, tile: u64, latency_nanos: u64) -> Self {
        self.slow_reads.push(SlowRead {
            tile,
            latency_nanos,
        });
        self
    }

    /// Schedules `tile`'s block bytes to be corrupted on every read.
    pub fn corrupt_tile(mut self, tile: u64) -> Self {
        self.corrupt_tiles.push(tile);
        self
    }

    /// Schedules the `op`-th write operation (zero-based, per injector) to
    /// fail with a typed storage error.
    pub fn fail_write_op(mut self, op: u64) -> Self {
        self.write_fail_ops.push(op);
        self
    }

    /// Schedules the next `times` shards popped by `engine` to die as if
    /// the worker crashed mid-shard.
    pub fn kill_engine(mut self, engine: u64, times: u64) -> Self {
        self.engine_kills.push(EngineKill { engine, times });
        self
    }

    /// Schedules the connection serving `client` to drop after it has sent
    /// `after_frames` frames.
    pub fn reset_connection(mut self, client: u64, after_frames: u64) -> Self {
        self.connection_resets.push(ConnectionReset {
            client,
            after_frames,
        });
        self
    }

    /// Serializes the plan to its compact `key=value` text form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "seed={}", self.seed);
        for f in &self.read_faults {
            let _ = writeln!(out, "fail-read={}x{}", f.tile, f.times);
        }
        for s in &self.slow_reads {
            let _ = writeln!(out, "slow-read={}@{}", s.tile, s.latency_nanos);
        }
        for &tile in &self.corrupt_tiles {
            let _ = writeln!(out, "corrupt-tile={tile}");
        }
        for &op in &self.write_fail_ops {
            let _ = writeln!(out, "fail-write-op={op}");
        }
        for k in &self.engine_kills {
            let _ = writeln!(out, "kill-engine={}x{}", k.engine, k.times);
        }
        for r in &self.connection_resets {
            let _ = writeln!(out, "reset-connection={}@{}", r.client, r.after_frames);
        }
        out
    }

    /// Parses the text form produced by [`FaultPlan::to_text`]. Blank lines
    /// and `#` comments are ignored; any other malformed line is an error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for (number, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: missing '='", number + 1))?;
            let bad = |what: &str| format!("line {}: bad {what} \"{value}\"", number + 1);
            let pair = |sep: char| -> Result<(u64, u64), String> {
                let (a, b) = value.split_once(sep).ok_or_else(|| bad("pair"))?;
                Ok((
                    a.parse().map_err(|_| bad("number"))?,
                    b.parse().map_err(|_| bad("number"))?,
                ))
            };
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| bad("seed"))?,
                "fail-read" => {
                    let (tile, times) = pair('x')?;
                    plan.read_faults.push(ReadFault { tile, times });
                }
                "slow-read" => {
                    let (tile, latency_nanos) = pair('@')?;
                    plan.slow_reads.push(SlowRead {
                        tile,
                        latency_nanos,
                    });
                }
                "corrupt-tile" => plan
                    .corrupt_tiles
                    .push(value.parse().map_err(|_| bad("tile"))?),
                "fail-write-op" => plan
                    .write_fail_ops
                    .push(value.parse().map_err(|_| bad("op"))?),
                "kill-engine" => {
                    let (engine, times) = pair('x')?;
                    plan.engine_kills.push(EngineKill { engine, times });
                }
                "reset-connection" => {
                    let (client, after_frames) = pair('@')?;
                    plan.connection_resets.push(ConnectionReset {
                        client,
                        after_frames,
                    });
                }
                other => return Err(format!("line {}: unknown key \"{other}\"", number + 1)),
            }
        }
        Ok(plan)
    }
}

/// Counters of faults the injector actually fired, for assertions and
/// telemetry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct FaultStats {
    /// Read attempts failed by schedule.
    pub read_errors: u64,
    /// Reads that were charged virtual latency.
    pub slow_reads: u64,
    /// Tile blocks corrupted before checksum verification.
    pub corruptions: u64,
    /// Write operations failed by schedule.
    pub write_errors: u64,
    /// Shards killed on their engine worker.
    pub engine_kills: u64,
    /// Connections dropped by schedule.
    pub connection_resets: u64,
}

/// A [`FaultPlan`] armed with atomic trigger state.
///
/// One injector instance is shared (`Arc`) by every layer participating in
/// a chaos run, so occurrence counts are global: "the 3rd write operation"
/// means the 3rd across the whole run, not per call site.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    read_attempts: Mutex<HashMap<u64, u64>>,
    write_ops: AtomicU64,
    kills_left: Mutex<HashMap<u64, u64>>,
    virtual_delay_nanos: AtomicU64,
    read_errors: AtomicU64,
    slow_reads: AtomicU64,
    corruptions: AtomicU64,
    write_errors: AtomicU64,
    engine_kills: AtomicU64,
    connection_resets: Mutex<HashMap<u64, bool>>,
    resets_fired: AtomicU64,
}

impl FaultInjector {
    /// Arms `plan` with fresh trigger counters.
    pub fn new(plan: FaultPlan) -> Self {
        let kills_left = plan
            .engine_kills
            .iter()
            .map(|k| (k.engine, k.times))
            .collect();
        FaultInjector {
            plan,
            read_attempts: Mutex::new(HashMap::new()),
            write_ops: AtomicU64::new(0),
            kills_left: Mutex::new(kills_left),
            virtual_delay_nanos: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            slow_reads: AtomicU64::new(0),
            corruptions: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            engine_kills: AtomicU64::new(0),
            connection_resets: Mutex::new(HashMap::new()),
            resets_fired: AtomicU64::new(0),
        }
    }

    /// The plan this injector was armed with.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Storage read hook: called before tile `tile`'s block is read from
    /// disk. Charges any scheduled virtual latency, then fails the read if
    /// a scheduled read fault for this tile has attempts remaining.
    pub fn on_tile_read(&self, tile: u64) -> Result<(), SccgError> {
        if let Some(slow) = self.plan.slow_reads.iter().find(|s| s.tile == tile) {
            self.virtual_delay_nanos
                .fetch_add(slow.latency_nanos, Ordering::Relaxed);
            self.slow_reads.fetch_add(1, Ordering::Relaxed);
        }
        let scheduled: u64 = self
            .plan
            .read_faults
            .iter()
            .filter(|f| f.tile == tile)
            .map(|f| f.times)
            .sum();
        if scheduled > 0 {
            let mut attempts = crate::sync::lock(&self.read_attempts);
            let seen = attempts.entry(tile).or_insert(0);
            if *seen < scheduled {
                *seen += 1;
                drop(attempts);
                self.read_errors.fetch_add(1, Ordering::Relaxed);
                return Err(SccgError::Storage {
                    detail: format!("injected read error for tile {tile}"),
                });
            }
        }
        Ok(())
    }

    /// Storage corruption hook: called with tile `tile`'s raw block bytes
    /// after the disk read and before checksum verification. Flips one
    /// seed-chosen byte when the tile is scheduled for corruption; returns
    /// whether the bytes were touched.
    pub fn corrupt_tile_bytes(&self, tile: u64, bytes: &mut [u8]) -> bool {
        if bytes.is_empty() || !self.plan.corrupt_tiles.contains(&tile) {
            return false;
        }
        let position = (splitmix64(self.plan.seed ^ tile) % bytes.len() as u64) as usize;
        bytes[position] ^= 0x5a;
        self.corruptions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Storage write hook: called once per write operation (tile append,
    /// footer/trailer write, atomic rename). Fails when the operation's
    /// global index is scheduled in `write_fail_ops`.
    pub fn on_write(&self) -> Result<(), SccgError> {
        let op = self.write_ops.fetch_add(1, Ordering::Relaxed);
        if self.plan.write_fail_ops.contains(&op) {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
            return Err(SccgError::Storage {
                detail: format!("injected write error at operation {op}"),
            });
        }
        Ok(())
    }

    /// Engine hook: called by engine `engine`'s worker for each popped
    /// shard. Returns `true` when the worker should die on this shard (a
    /// scheduled kill was consumed).
    pub fn kill_engine_now(&self, engine: u64) -> bool {
        let mut left = crate::sync::lock(&self.kills_left);
        match left.get_mut(&engine) {
            Some(times) if *times > 0 => {
                *times -= 1;
                drop(left);
                self.engine_kills.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Wire hook: called by the server before sending a frame on `client`'s
    /// connection, with the number of frames already sent. Returns `true`
    /// exactly once per scheduled reset, when the frame count reaches the
    /// scheduled threshold.
    pub fn reset_connection_now(&self, client: u64, frames_sent: u64) -> bool {
        let Some(reset) = self
            .plan
            .connection_resets
            .iter()
            .find(|r| r.client == client)
        else {
            return false;
        };
        if frames_sent < reset.after_frames {
            return false;
        }
        let mut fired = crate::sync::lock(&self.connection_resets);
        if *fired.entry(client).or_insert(false) {
            return false;
        }
        fired.insert(client, true);
        drop(fired);
        self.resets_fired.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Total virtual latency charged by slow reads so far, in nanoseconds.
    pub fn virtual_delay_nanos(&self) -> u64 {
        self.virtual_delay_nanos.load(Ordering::Relaxed)
    }

    /// Snapshot of every fault fired so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            read_errors: self.read_errors.load(Ordering::Relaxed),
            slow_reads: self.slow_reads.load(Ordering::Relaxed),
            corruptions: self.corruptions.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            engine_kills: self.engine_kills.load(Ordering::Relaxed),
            connection_resets: self.resets_fired.load(Ordering::Relaxed),
        }
    }
}

/// SplitMix64 — the seed scrambler used for derived choices (corruption
/// byte position). Deterministic, dependency-free, well distributed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_plan() -> FaultPlan {
        FaultPlan::new(42)
            .fail_read(3, 2)
            .slow_read(5, 1_500_000)
            .corrupt_tile(7)
            .fail_write_op(4)
            .kill_engine(0, 2)
            .reset_connection(1, 4)
    }

    #[test]
    fn plan_round_trips_through_text() {
        let plan = chaos_plan();
        let text = plan.to_text();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(
            FaultPlan::parse("# comment\n\nseed=9\n").unwrap(),
            FaultPlan::new(9)
        );
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("kill-engine=1").is_err());
        assert!(FaultPlan::parse("unknown-key=3").is_err());
    }

    #[test]
    fn read_faults_fire_exactly_the_scheduled_number_of_times() {
        let injector = FaultInjector::new(FaultPlan::new(1).fail_read(3, 2));
        assert!(injector.on_tile_read(3).is_err());
        assert!(injector.on_tile_read(3).is_err());
        assert!(injector.on_tile_read(3).is_ok(), "schedule exhausted");
        assert!(injector.on_tile_read(4).is_ok(), "other tiles unaffected");
        assert_eq!(injector.stats().read_errors, 2);
    }

    #[test]
    fn slow_reads_charge_virtual_latency_without_failing() {
        let injector = FaultInjector::new(FaultPlan::new(1).slow_read(5, 1_000));
        assert!(injector.on_tile_read(5).is_ok());
        assert!(injector.on_tile_read(5).is_ok());
        assert_eq!(injector.virtual_delay_nanos(), 2_000);
        assert_eq!(injector.stats().slow_reads, 2);
        assert!(injector.on_tile_read(6).is_ok());
        assert_eq!(injector.virtual_delay_nanos(), 2_000);
    }

    #[test]
    fn corruption_flips_one_seeded_byte_deterministically() {
        let injector = FaultInjector::new(FaultPlan::new(42).corrupt_tile(7));
        let original = vec![0u8; 64];
        let mut first = original.clone();
        let mut second = original.clone();
        assert!(injector.corrupt_tile_bytes(7, &mut first));
        assert!(injector.corrupt_tile_bytes(7, &mut second));
        assert_eq!(first, second, "same seed corrupts the same byte");
        assert_eq!(
            first.iter().zip(&original).filter(|(a, b)| a != b).count(),
            1
        );
        let mut untouched = original.clone();
        assert!(!injector.corrupt_tile_bytes(8, &mut untouched));
        assert_eq!(untouched, original);
        assert!(!injector.corrupt_tile_bytes(7, &mut []));
    }

    #[test]
    fn write_ops_fail_at_their_scheduled_global_index() {
        let injector = FaultInjector::new(FaultPlan::new(1).fail_write_op(2));
        assert!(injector.on_write().is_ok()); // op 0
        assert!(injector.on_write().is_ok()); // op 1
        assert!(injector.on_write().is_err()); // op 2
        assert!(injector.on_write().is_ok()); // op 3
        assert_eq!(injector.stats().write_errors, 1);
    }

    #[test]
    fn engine_kills_consume_their_budget() {
        let injector = FaultInjector::new(FaultPlan::new(1).kill_engine(0, 2));
        assert!(injector.kill_engine_now(0));
        assert!(injector.kill_engine_now(0));
        assert!(!injector.kill_engine_now(0), "budget exhausted");
        assert!(!injector.kill_engine_now(1), "other engines unaffected");
        assert_eq!(injector.stats().engine_kills, 2);
    }

    #[test]
    fn connection_reset_fires_once_at_the_frame_threshold() {
        let injector = FaultInjector::new(FaultPlan::new(1).reset_connection(1, 4));
        assert!(!injector.reset_connection_now(1, 3));
        assert!(injector.reset_connection_now(1, 4));
        assert!(
            !injector.reset_connection_now(1, 5),
            "a reset fires exactly once"
        );
        assert!(!injector.reset_connection_now(2, 10));
        assert_eq!(injector.stats().connection_resets, 1);
    }

    #[test]
    fn an_empty_plan_injects_nothing() {
        let injector = FaultInjector::new(FaultPlan::default());
        assert!(injector.on_tile_read(0).is_ok());
        assert!(injector.on_write().is_ok());
        assert!(!injector.kill_engine_now(0));
        assert!(!injector.reset_connection_now(0, 100));
        assert_eq!(injector.stats(), FaultStats::default());
        assert_eq!(injector.virtual_delay_nanos(), 0);
    }
}
