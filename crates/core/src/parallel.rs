//! A small work-sharing thread pool.
//!
//! The paper parallelizes text parsing and PixelBox-CPU with Intel Threading
//! Building Blocks (§5). This module is the TBB stand-in documented in
//! DESIGN.md: a scoped pool that splits a slice of work items into chunks and
//! processes them on `workers` operating-system threads, stealing chunks from
//! a shared queue. On a single-core host it degrades gracefully to sequential
//! execution.

use crossbeam::queue::SegQueue;
use std::num::NonZeroUsize;

/// Number of worker threads to use by default: one per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every element of `items`, producing a vector of results in
/// input order, using up to `workers` threads. Work is distributed in chunks
/// through a lock-free queue so that uneven item costs balance dynamically
/// (the "work-stealing" behaviour that matters for PixelBox-CPU, where pair
/// costs vary with polygon size).
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Default + Clone,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1);
    let chunk_size = chunk_size.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    if workers == 1 || items.len() <= chunk_size {
        return items.iter().map(&f).collect();
    }

    let mut results: Vec<R> = vec![R::default(); items.len()];
    // Chunked index ranges shared through a lock-free queue.
    let queue: SegQueue<(usize, usize)> = SegQueue::new();
    let mut start = 0;
    while start < items.len() {
        let end = (start + chunk_size).min(items.len());
        queue.push((start, end));
        start = end;
    }

    // Hand out disjoint mutable slices of the result vector to workers by
    // splitting it up front; each chunk's results are written back through a
    // channel to keep the code free of unsafe aliasing.
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Vec<R>)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let queue = &queue;
            let f = &f;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some((lo, hi)) = queue.pop() {
                    let out: Vec<R> = items[lo..hi].iter().map(f).collect();
                    let _ = tx.send((lo, out));
                }
            });
        }
        drop(tx);
    });
    for (lo, chunk) in rx.iter() {
        for (offset, value) in chunk.into_iter().enumerate() {
            results[lo + offset] = value;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, 16, |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(
            parallel_map(&items, 1, 8, |x| x + 1),
            parallel_map(&items, 8, 8, |x| x + 1)
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = parallel_map(&items, 4, 8, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_chunks_cover_all_items() {
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, 3, 5, |x| *x);
        assert_eq!(out, items);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
