//! A persistent work-stealing thread pool.
//!
//! The paper parallelizes text parsing and PixelBox-CPU with Intel Threading
//! Building Blocks (§5). This module is the TBB stand-in: a process-wide
//! [`WorkerPool`] whose threads are spawned **once** and then serve every
//! batch, stealing fixed-size chunks of the input through an atomic chunk
//! cursor and writing results straight into pre-split disjoint slots of the
//! output vector.
//!
//! The original implementation re-spawned `workers` OS threads per call and
//! round-tripped every chunk's results through an unbounded channel into a
//! `vec![R::default(); len]` pre-fill — three allocations and a thread-spawn
//! per batch on the hottest CPU path in the system (every
//! [`compute_batch_cpu`](crate::pixelbox::cpu::compute_batch_cpu) call, the
//! hybrid backend's CPU share, every `ComparisonService` engine). The pool
//! removes all of it: no per-batch spawn, no channel, no `R: Default +
//! Clone` bound — just one output allocation written exactly once per
//! element.
//!
//! [`parallel_map`] remains as a compatibility shim over
//! [`WorkerPool::global`] so existing call sites keep working unchanged
//! (with strictly weaker bounds).
//!
//! # Safety
//!
//! Handing borrowed slices to persistent (non-scoped) threads requires
//! erasing lifetimes, so this module contains the workspace's only `unsafe`
//! code (the same technique rayon uses). Soundness rests on one invariant,
//! enforced by [`WorkerPool::map`]: **the submitting call does not return
//! until every chunk of its job has been fully processed**, so the erased
//! borrows strictly outlive every access. See the `SAFETY` comments inline.

#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of worker threads to use by default: one per available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A lifetime-erased invitation to help execute one `map` job. Stale tickets
/// (popped after their job completed) return immediately from the claim
/// loop without touching the job's borrowed data.
type Ticket = Arc<dyn Fn() + Send + Sync + 'static>;

struct PoolQueue {
    tickets: VecDeque<Ticket>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_available: Condvar,
}

/// Completion state of one `map` job, owned (`Arc`) so it outlives stale
/// tickets.
struct JobState {
    /// Next chunk index to claim; `fetch_add` makes claims disjoint.
    cursor: AtomicUsize,
    /// Chunks fully processed (results written, or abandoned on panic).
    chunks_done: AtomicUsize,
    chunk_count: usize,
    /// Set when a worker's closure panicked; the submitter re-raises with
    /// the first caught payload (stored in `panic_payload`).
    panicked: AtomicBool,
    /// The first panic payload caught by any chunk, re-raised by the
    /// submitter so assertion messages survive the pool boundary.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Latch the submitter waits on once it runs out of chunks to claim.
    done: Mutex<bool>,
    finished: Condvar,
}

/// Raw-pointer bundle carrying one job's borrowed inputs/outputs into the
/// pool threads. Only dereferenced between a successful chunk claim and the
/// matching `chunks_done` increment, which `map` awaits before returning.
struct RawJob<T, R, F> {
    items: *const T,
    len: usize,
    out: *mut MaybeUninit<R>,
    f: *const F,
    chunk_size: usize,
}

impl<T, R, F> Clone for RawJob<T, R, F> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, R, F> Copy for RawJob<T, R, F> {}

// SAFETY: the pointers are only dereferenced while the originating `map`
// call is still blocked (see JobState), under which `&[T]` is shared
// (`T: Sync`), `F` is invoked concurrently by reference (`F: Sync`), and
// each `out` slot is written by exactly one thread then read only by the
// submitter after the completion latch (`R: Send`).
unsafe impl<T: Sync, R: Send, F: Sync> Send for RawJob<T, R, F> {}
unsafe impl<T: Sync, R: Send, F: Sync> Sync for RawJob<T, R, F> {}

/// A persistent pool of worker threads executing `map` jobs.
///
/// Threads are spawned at construction and live until the pool is dropped;
/// each [`WorkerPool::map`] call enqueues lightweight help tickets, and the
/// calling thread itself always participates, so a job completes even when
/// every pool thread is busy elsewhere (no nested-job deadlock).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` persistent worker threads (at least
    /// one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                tickets: VecDeque::new(),
                shutdown: false,
            }),
            work_available: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sccg-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            threads,
            handles,
        }
    }

    /// The process-wide pool shared by `PixelBox-CPU` batches, the hybrid
    /// backend's CPU share and every `ComparisonService` engine — sized to
    /// the available cores, spawned on first use, never torn down.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(default_workers()))
    }

    /// Number of persistent worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items`, producing a vector of
    /// results in input order. At most `max_workers` threads cooperate on
    /// the job (the calling thread plus up to `max_workers - 1` pool
    /// threads), stealing `chunk_size`-element chunks through an atomic
    /// cursor; uneven item costs balance dynamically, which matters for
    /// PixelBox-CPU where pair costs vary with polygon size. With
    /// `max_workers == 1` the call is exactly sequential (the
    /// `PixelBox-CPU-S` configuration).
    pub fn map<T, R, F>(&self, items: &[T], max_workers: usize, chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let max_workers = max_workers.max(1);
        let chunk_size = chunk_size.max(1);
        let len = items.len();
        if max_workers == 1 || len <= chunk_size {
            return items.iter().map(&f).collect();
        }

        let chunk_count = len.div_ceil(chunk_size);
        let mut out: Vec<R> = Vec::with_capacity(len);
        let job = Arc::new(JobState {
            cursor: AtomicUsize::new(0),
            chunks_done: AtomicUsize::new(0),
            chunk_count,
            panicked: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            done: Mutex::new(false),
            finished: Condvar::new(),
        });
        let raw = RawJob {
            items: items.as_ptr(),
            len,
            out: out.spare_capacity_mut().as_mut_ptr(),
            f: &f,
            chunk_size,
        };

        let run_job = Arc::clone(&job);
        let run = move || run_chunks(&run_job, raw);
        // SAFETY: lifetime erasure of the borrows captured in `run` (items,
        // f, and the output's spare capacity). The erased closure is only
        // ever *executed* against that borrowed data while a chunk claim
        // succeeds, and every claim is accounted for in `chunks_done`,
        // which this call waits to reach `chunk_count` before returning —
        // so no access outlives the borrow. Tickets that outlive the job
        // fail their first claim and return without touching `raw`.
        let ticket: Ticket = {
            let local: Arc<dyn Fn() + Send + Sync + '_> = Arc::new(run);
            unsafe { std::mem::transmute::<Arc<dyn Fn() + Send + Sync + '_>, Ticket>(local) }
        };

        // Invite helpers: never more than the pool has threads, never more
        // than there are chunks beyond the submitter's first claim.
        let helpers = (max_workers - 1).min(self.threads).min(chunk_count - 1);
        if helpers > 0 {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for _ in 0..helpers {
                queue.tickets.push_back(Arc::clone(&ticket));
            }
            drop(queue);
            if helpers == 1 {
                self.shared.work_available.notify_one();
            } else {
                self.shared.work_available.notify_all();
            }
        }

        // The submitter works too, then waits for the stragglers.
        ticket();
        let mut done = job.done.lock().expect("job latch poisoned");
        while !*done {
            done = job.finished.wait(done).expect("job latch poisoned");
        }
        drop(done);

        if job.panicked.load(Ordering::Acquire) {
            // `out` still has length 0, so dropping it cannot touch the
            // partially initialized spare capacity; the chunk results
            // written so far leak, which is sound (and `PairAreas` et al.
            // are trivial anyway).
            drop(out);
            let payload = job
                .panic_payload
                .lock()
                .expect("panic payload poisoned")
                .take();
            match payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => panic!("worker pool job panicked"),
            }
        }
        // SAFETY: chunks_done == chunk_count, so every index in 0..len was
        // written exactly once (disjoint chunk claims) and those writes
        // happen-before this point via the completion latch.
        unsafe { out.set_len(len) };
        out
    }

    /// Runs `a` on a pool thread while the calling thread runs `b`,
    /// returning both results. This replaces per-call `std::thread::scope`
    /// spawns on hot paths — the hybrid backend overlaps its CPU share with
    /// driving the simulated GPU on *every* batch, and an OS thread spawn
    /// per sub-millisecond batch dwarfs the work itself.
    ///
    /// If no pool thread has picked the task up by the time `b` finishes,
    /// the calling thread claims and runs `a` itself, so the call never
    /// deadlocks (and degrades to plain sequential execution on a saturated
    /// pool). A panic in either closure propagates to the caller with its
    /// original payload.
    pub fn join<RA, RB, A, B>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA + Send,
        RA: Send,
        B: FnOnce() -> RB,
    {
        struct JoinState<A, RA> {
            /// The task, taken exactly once — by the first of the pool
            /// ticket and the submitter to claim it.
            task: Mutex<Option<A>>,
            /// The ticket's outcome, taken by the submitter before
            /// returning (so a stale ticket never holds borrowed data).
            result: Mutex<Option<std::thread::Result<RA>>>,
            done: Mutex<bool>,
            finished: Condvar,
        }
        let state = Arc::new(JoinState {
            task: Mutex::new(Some(a)),
            result: Mutex::new(None),
            done: Mutex::new(false),
            finished: Condvar::new(),
        });

        let run_state = Arc::clone(&state);
        let run = move || {
            let task = run_state.task.lock().expect("join task poisoned").take();
            if let Some(task) = task {
                let outcome = catch_unwind(AssertUnwindSafe(task));
                *run_state.result.lock().expect("join result poisoned") = Some(outcome);
                let mut done = run_state.done.lock().expect("join latch poisoned");
                *done = true;
                run_state.finished.notify_all();
            }
        };
        // SAFETY: same lifetime-erasure argument as `map`. The erased
        // closure only touches `a`'s borrows after winning the `task` claim,
        // and this call does not return until that claim's completion latch
        // fires (or until the submitter won the claim itself and ran `a`
        // inline) — so no access outlives the borrows. By return time both
        // `task` and `result` have been taken, so a stale ticket's eventual
        // drop frees an empty state and never runs borrowed destructors.
        let ticket: Ticket = {
            let local: Arc<dyn Fn() + Send + Sync + '_> = Arc::new(run);
            unsafe { std::mem::transmute::<Arc<dyn Fn() + Send + Sync + '_>, Ticket>(local) }
        };
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.tickets.push_back(ticket);
        }
        self.shared.work_available.notify_one();

        // `b` runs under `catch_unwind` so that a panic in it cannot unwind
        // out of this frame before the pooled task is settled below — the
        // ticket must never touch `a`'s borrows after this call returns.
        let rb = catch_unwind(AssertUnwindSafe(b));
        let claimed = state.task.lock().expect("join task poisoned").take();
        let ra = if let Some(task) = claimed {
            // No pool thread got there first: run the task inline.
            catch_unwind(AssertUnwindSafe(task))
        } else {
            let mut done = state.done.lock().expect("join latch poisoned");
            while !*done {
                done = state.finished.wait(done).expect("join latch poisoned");
            }
            drop(done);
            state
                .result
                .lock()
                .expect("join result poisoned")
                .take()
                .expect("claimed join task must leave a result")
        };
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => (ra, rb),
            (Err(payload), _) | (_, Err(payload)) => std::panic::resume_unwind(payload),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.work_available.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims and processes chunks of one job until the cursor is exhausted.
/// Generic over the job's types; monomorphized per `map` call and reached
/// through the erased ticket closure.
fn run_chunks<T, R, F>(job: &JobState, raw: RawJob<T, R, F>)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    loop {
        let chunk = job.cursor.fetch_add(1, Ordering::Relaxed);
        if chunk >= job.chunk_count {
            break;
        }
        // Once any chunk has panicked the job's result can never be used, so
        // remaining chunks are claimed and counted (the completion latch
        // still needs them) but not executed — the doomed batch fails fast
        // instead of churning through the rest of the input.
        if job.panicked.load(Ordering::Acquire) {
            finish_chunk(job);
            continue;
        }
        let lo = chunk * raw.chunk_size;
        let hi = (lo + raw.chunk_size).min(raw.len);
        let wrote = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `chunk` was claimed exclusively by this thread, so
            // indices lo..hi of both `items` and `out` are accessed by no
            // one else; the submitter keeps the borrows alive until this
            // chunk is counted in `chunks_done` below.
            unsafe {
                let f = &*raw.f;
                for i in lo..hi {
                    let value = f(&*raw.items.add(i));
                    (*raw.out.add(i)).write(value);
                }
            }
        }));
        if let Err(payload) = wrote {
            let mut slot = job.panic_payload.lock().expect("panic payload poisoned");
            slot.get_or_insert(payload);
            drop(slot);
            job.panicked.store(true, Ordering::Release);
        }
        finish_chunk(job);
    }
}

/// Counts one claimed chunk as done, firing the completion latch on the
/// last one.
fn finish_chunk(job: &JobState) {
    let done_before = job.chunks_done.fetch_add(1, Ordering::AcqRel);
    if done_before + 1 == job.chunk_count {
        let mut done = job.done.lock().expect("job latch poisoned");
        *done = true;
        job.finished.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let ticket = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(ticket) = queue.tickets.pop_front() {
                    break ticket;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .work_available
                    .wait(queue)
                    .expect("pool queue poisoned");
            }
        };
        // Panics inside a job are caught per chunk in `run_chunks`, so the
        // ticket call itself cannot unwind and kill the worker.
        ticket();
    }
}

/// Applies `f` to every element of `items`, producing a vector of results in
/// input order, using up to `workers` threads of the process-wide
/// [`WorkerPool`]. Compatibility shim kept so existing call sites migrate
/// incrementally; note the bounds are weaker than the original
/// (`R: Default + Clone` is gone — results are written exactly once into
/// pre-split output slots, never pre-filled).
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    WorkerPool::global().map(items, workers, chunk_size, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, 16, |x| x * 2);
        let expected: Vec<u64> = items.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_matches_sequential() {
        let items: Vec<u64> = (0..100).collect();
        assert_eq!(
            parallel_map(&items, 1, 8, |x| x + 1),
            parallel_map(&items, 8, 8, |x| x + 1)
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out: Vec<u32> = parallel_map(&items, 4, 8, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_chunks_cover_all_items() {
        let items: Vec<usize> = (0..37).collect();
        let out = parallel_map(&items, 3, 5, |x| *x);
        assert_eq!(out, items);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn results_need_no_default_or_clone() {
        // A result type that is neither Default nor Clone: the old
        // `vec![R::default(); len]` pre-fill could not even compile this.
        struct Opaque(u64);
        let items: Vec<u64> = (0..256).collect();
        let out: Vec<Opaque> = parallel_map(&items, 4, 8, |x| Opaque(x * x));
        assert_eq!(out.len(), items.len());
        assert!(out.iter().enumerate().all(|(i, o)| o.0 == (i * i) as u64));
    }

    #[test]
    fn dedicated_pool_maps_correctly() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        let items: Vec<i64> = (0..4096).collect();
        let out = pool.map(&items, 3, 32, |x| x - 7);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as i64 - 7));
        // The pool survives many batches without re-spawning.
        for round in 0..50 {
            let small: Vec<i64> = (0..97).collect();
            let mapped = pool.map(&small, 2, 4, |x| x * round);
            assert!(mapped
                .iter()
                .enumerate()
                .all(|(i, &v)| v == i as i64 * round));
        }
    }

    #[test]
    fn concurrent_jobs_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let handles: Vec<_> = (0..6)
            .map(|offset: i64| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let items: Vec<i64> = (0..512).collect();
                    let out = pool.map(&items, 4, 16, |x| x + offset);
                    out.iter().enumerate().all(|(i, &v)| v == i as i64 + offset)
                })
            })
            .collect();
        for handle in handles {
            assert!(handle.join().expect("job thread"));
        }
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let items: Vec<u32> = (0..64).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, 4, 4, |x| {
                assert!(*x != 13, "boom");
                *x
            })
        }));
        let payload = result.expect_err("panic must reach the submitter");
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("");
        assert!(
            message.contains("boom"),
            "original panic payload must survive the pool boundary, got {message:?}"
        );
        // The pool still works afterwards.
        let out = pool.map(&items, 4, 4, |x| x + 1);
        assert_eq!(out.len(), items.len());
    }

    #[test]
    fn join_overlaps_two_closures_over_borrowed_data() {
        let pool = WorkerPool::new(2);
        let left: Vec<u64> = (0..512).collect();
        let right: Vec<u64> = (0..512).collect();
        for _ in 0..50 {
            let (a, b) = pool.join(
                || left.iter().sum::<u64>(),
                || right.iter().map(|x| x * 2).sum::<u64>(),
            );
            assert_eq!(a, 512 * 511 / 2);
            assert_eq!(b, 512 * 511);
        }
    }

    #[test]
    fn join_runs_inline_on_a_saturated_pool() {
        // Park the only pool thread in a long map job, then join: the
        // submitter must claim the task itself instead of deadlocking.
        let pool = Arc::new(WorkerPool::new(1));
        let blocker = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let items: Vec<u64> = (0..64).collect();
                pool.map(&items, 2, 1, |x| {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    *x
                })
            })
        };
        let (a, b) = pool.join(|| 21 + 21, || "main");
        assert_eq!((a, b), (42, "main"));
        assert_eq!(blocker.join().expect("blocker").len(), 64);
    }

    #[test]
    fn join_propagates_panics_from_both_sides() {
        let pool = WorkerPool::new(2);
        let pooled = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| panic!("pooled side"), || 1)
        }));
        assert!(pooled.is_err());
        let submitter = catch_unwind(AssertUnwindSafe(|| {
            pool.join(|| 1, || panic!("submitter side"))
        }));
        assert!(submitter.is_err());
        // The pool still works afterwards.
        assert_eq!(pool.join(|| 1, || 2), (1, 2));
    }

    #[test]
    fn global_pool_is_shared_and_sized_to_the_host() {
        let a = WorkerPool::global() as *const WorkerPool;
        let b = WorkerPool::global() as *const WorkerPool;
        assert_eq!(a, b);
        assert_eq!(WorkerPool::global().threads(), default_workers());
    }
}
