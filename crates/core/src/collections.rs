//! Shared bounded containers.
//!
//! The workspace has two layers that memoize under a hard entry bound — the
//! serving layer's response cache and the storage layer's resident-tile
//! pager (plus the wire front-end's per-client routing cache, through the
//! serving re-export) — and they share one LRU implementation instead of a
//! copy each. It lives here, below all of them, so `sccg-serve` and
//! `sccg-store` can depend on it without depending on each other.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// A bounded map with least-recently-used eviction. Capacity `0` disables
/// caching entirely.
///
/// Recency is tracked with monotonic sequence numbers instead of reordering
/// a queue: every access stamps the entry with a fresh sequence and appends
/// `(seq, key)` to the order queue, leaving the old position behind as a
/// stale marker that eviction skips (its sequence no longer matches the
/// entry's). `get`/`insert` are O(1) amortized — the queue is compacted down
/// to live markers whenever stale ones outnumber the capacity — where a
/// scan-on-touch scheme walks the whole queue on every hit, exactly the path
/// the wire front-end and the tile pager make hot.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    map: HashMap<K, Stamped<V>>,
    /// `(sequence, key)` markers from least- to most-recently stamped; an
    /// entry whose sequence differs from its map stamp is stale.
    order: VecDeque<(u64, K)>,
    next_seq: u64,
}

#[derive(Debug)]
struct Stamped<V> {
    value: V,
    seq: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::new(),
            order: VecDeque::new(),
            next_seq: 0,
        }
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is present, *without* marking it used. A residency
    /// probe (the scheduler asking "is this tile resident?") must not
    /// perturb the recency order it is inspecting, or the act of observing
    /// the cache would change what gets evicted.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Stamps `key` as most recently used. The caller guarantees the key is
    /// in the map.
    fn touch(&mut self, key: &K) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.get_mut(key).expect("touched key is present").seq = seq;
        self.order.push_back((seq, key.clone()));
        self.compact();
    }

    /// Drops stale markers once they outnumber live entries by more than the
    /// capacity, bounding the queue at O(capacity) without per-access scans.
    fn compact(&mut self) {
        if self.order.len() <= 2 * self.capacity + 8 {
            return;
        }
        let map = &self.map;
        self.order
            .retain(|(seq, key)| map.get(key).is_some_and(|entry| entry.seq == *seq));
    }

    /// Returns a clone of the value under `key`, marking it most recently
    /// used.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let value = self.map.get(key)?.value.clone();
        self.touch(key);
        Some(value)
    }

    /// Inserts (or replaces) the value under `key` as the most recently used
    /// entry, evicting the least recently used entries beyond capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(key.clone(), Stamped { value, seq });
        self.order.push_back((seq, key));
        while self.map.len() > self.capacity {
            let (seq, key) = self
                .order
                .pop_front()
                .expect("entries beyond capacity have markers");
            // Only a *live* marker (sequence still current) names the LRU
            // entry; stale markers were superseded by a later touch.
            if self.map.get(&key).is_some_and(|entry| entry.seq == seq) {
                self.map.remove(&key);
            }
        }
        self.compact();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = LruCache::new(2);
        cache.insert(0, "a");
        cache.insert(1, "b");
        assert_eq!(cache.get(&0), Some("a")); // 0 becomes most recent
        cache.insert(2, "c"); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&0), Some("a"));
        assert_eq!(cache.get(&2), Some("c"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(0, "a");
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&0), None);
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut cache = LruCache::new(2);
        cache.insert(0, "a");
        cache.insert(0, "b");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&0), Some("b"));
    }

    /// Many repeated hits must not let stale markers evict the wrong entry
    /// or grow the order queue without bound.
    #[test]
    fn repeated_hits_keep_recency_exact_and_queue_bounded() {
        let mut cache = LruCache::new(3);
        cache.insert(0, 0usize);
        cache.insert(1, 1);
        cache.insert(2, 2);
        for _ in 0..1000 {
            assert_eq!(cache.get(&0), Some(0));
            assert_eq!(cache.get(&1), Some(1));
        }
        // Queue stays O(capacity) despite 2000 touches.
        assert!(cache.order.len() <= 2 * 3 + 8, "order queue is bounded");
        cache.insert(3, 3); // evicts 2, the only untouched entry
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&0), Some(0));
        assert_eq!(cache.get(&1), Some(1));
        assert_eq!(cache.get(&3), Some(3));
    }

    /// `contains` must be recency-neutral: probing an entry repeatedly must
    /// not save it from eviction the way `get` would.
    #[test]
    fn contains_does_not_touch_recency() {
        let mut cache = LruCache::new(2);
        cache.insert(0, "a");
        cache.insert(1, "b");
        for _ in 0..10 {
            assert!(cache.contains(&0));
        }
        assert!(!cache.contains(&7));
        cache.insert(2, "c"); // evicts 0: the probes did not refresh it
        assert!(!cache.contains(&0));
        assert!(cache.contains(&1));
        assert!(cache.contains(&2));
    }

    /// Eviction order follows touches even when every marker in front is
    /// stale.
    #[test]
    fn eviction_skips_stale_markers() {
        let mut cache = LruCache::new(2);
        cache.insert(0, "a");
        cache.insert(1, "b");
        // Touch 0 repeatedly: its old markers go stale in place.
        for _ in 0..5 {
            cache.get(&0);
        }
        cache.insert(2, "c"); // must evict 1, not 0
        assert_eq!(cache.get(&0), Some("a"));
        assert_eq!(cache.get(&1), None);
        assert_eq!(cache.get(&2), Some("c"));
    }

    /// String keys work too — the wire front-end keys routing state by
    /// composite tuples, the pager by tile index; the cache is generic.
    #[test]
    fn composite_keys() {
        let mut cache: LruCache<(u64, u64), &str> = LruCache::new(2);
        cache.insert((1, 2), "x");
        cache.insert((1, 3), "y");
        assert_eq!(cache.get(&(1, 2)), Some("x"));
        cache.insert((2, 2), "z");
        assert_eq!(cache.get(&(1, 3)), None);
    }
}
