//! The unified error type of the request-serving route.
//!
//! The one-shot entry points ([`crate::CrossComparison`],
//! [`crate::pipeline::Pipeline`]) historically treated bad input as either a
//! panic or a silently-empty
//! result — acceptable for a batch reproduction, not for a query service
//! where a malformed request must fail *that request* with a diagnosable
//! reason and leave the service healthy. Everything on the serving route
//! (the `sccg-serve` crate's `SlideStore` / `ComparisonService`) returns
//! [`SccgError`] instead.

use crate::pixelbox::AggregationDevice;
use std::fmt;

/// Unified error for the cross-comparison serving route.
///
/// Marked `#[non_exhaustive]`: new failure modes may be added without a
/// breaking change, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SccgError {
    /// A polygon file failed to parse while registering slide data.
    Parse {
        /// Human-readable parse failure detail.
        detail: String,
    },
    /// A request referenced a slide id that was never registered.
    UnknownSlide {
        /// The unresolved slide id.
        slide: u64,
    },
    /// A request referenced a tile index beyond a slide's registered tiles.
    UnknownTile {
        /// The slide the tile was looked up in.
        slide: u64,
        /// The out-of-range tile index.
        tile: usize,
        /// Number of tiles the slide actually has.
        tiles: usize,
    },
    /// A whole-slide comparison was requested for two slides with different
    /// tile counts.
    TileCountMismatch {
        /// Tile count of the first slide.
        first: usize,
        /// Tile count of the second slide.
        second: usize,
    },
    /// A request pinned a device no engine in the service's pool provides.
    NoEligibleEngine {
        /// The requested aggregation device.
        device: AggregationDevice,
    },
    /// A service was configured with an empty engine pool.
    EmptyEnginePool,
    /// Admission control rejected the request because the in-flight bound
    /// was reached (returned by non-blocking submission only).
    Overloaded {
        /// Queries currently in flight.
        in_flight: usize,
        /// The configured admission bound.
        bound: usize,
    },
    /// The service shut down before the query resolved.
    ShutDown,
    /// The request was structurally invalid (for example an empty or
    /// duplicated tile selection).
    InvalidRequest {
        /// Human-readable request defect.
        detail: String,
    },
    /// A worker failed internally (for example a panic while computing a
    /// shard). The service stays healthy; only the affected query fails.
    Internal {
        /// Human-readable failure detail.
        detail: String,
    },
    /// The on-disk slide storage failed: a tile block's checksum did not
    /// match, the file was truncated, or an I/O operation failed. The
    /// failure is contained per tile — only queries touching the affected
    /// tile fail; the store and the service stay healthy.
    Storage {
        /// Human-readable storage failure detail.
        detail: String,
    },
    /// The query's per-request deadline expired before every shard
    /// completed. Remaining shards are abandoned without computing; the
    /// service stays healthy and the caller receives this typed error
    /// through the blocking, streaming, and wire paths alike.
    DeadlineExceeded {
        /// The deadline the request carried, in milliseconds.
        deadline_ms: u64,
    },
}

impl fmt::Display for SccgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SccgError::Parse { detail } => write!(f, "polygon file parse error: {detail}"),
            SccgError::UnknownSlide { slide } => write!(f, "unknown slide id {slide}"),
            SccgError::UnknownTile { slide, tile, tiles } => {
                write!(
                    f,
                    "slide {slide} has {tiles} tiles; tile {tile} does not exist"
                )
            }
            SccgError::TileCountMismatch { first, second } => write!(
                f,
                "whole-slide comparison requires equal tile counts, got {first} vs {second}"
            ),
            SccgError::NoEligibleEngine { device } => {
                write!(f, "no engine in the pool serves device {device:?}")
            }
            SccgError::EmptyEnginePool => write!(f, "service configured with no engines"),
            SccgError::Overloaded { in_flight, bound } => write!(
                f,
                "admission control rejected the query: {in_flight} in flight at bound {bound}"
            ),
            SccgError::ShutDown => write!(f, "service shut down before the query resolved"),
            SccgError::InvalidRequest { detail } => write!(f, "invalid request: {detail}"),
            SccgError::Internal { detail } => write!(f, "internal service failure: {detail}"),
            SccgError::Storage { detail } => write!(f, "slide storage failure: {detail}"),
            SccgError::DeadlineExceeded { deadline_ms } => {
                write!(f, "query deadline of {deadline_ms} ms exceeded")
            }
        }
    }
}

impl std::error::Error for SccgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let variants = [
            SccgError::Parse {
                detail: "bad vertex".into(),
            },
            SccgError::UnknownSlide { slide: 7 },
            SccgError::UnknownTile {
                slide: 7,
                tile: 9,
                tiles: 4,
            },
            SccgError::TileCountMismatch {
                first: 3,
                second: 5,
            },
            SccgError::NoEligibleEngine {
                device: AggregationDevice::Gpu,
            },
            SccgError::EmptyEnginePool,
            SccgError::Overloaded {
                in_flight: 4,
                bound: 4,
            },
            SccgError::ShutDown,
            SccgError::InvalidRequest {
                detail: "empty tile set".into(),
            },
            SccgError::Internal {
                detail: "shard worker panicked".into(),
            },
            SccgError::Storage {
                detail: "tile 3: checksum mismatch".into(),
            },
            SccgError::DeadlineExceeded { deadline_ms: 250 },
        ];
        for error in variants {
            assert!(!error.to_string().is_empty(), "{error:?}");
        }
    }
}
