//! PixelBox-CPU: the multi-core CPU port of PixelBox (paper §4.2).
//!
//! The CPU port executes the same sampling-box / pixelization logic as the
//! GPU kernel, sequentially per pair, and parallelizes across pairs on the
//! persistent process-wide [`WorkerPool`](crate::parallel::WorkerPool) (the
//! TBB stand-in) — shared with the hybrid backend's CPU share and every
//! `ComparisonService` engine, so batches cost no thread spawns or channel
//! traffic. It exists for two reasons in the paper's system: as the
//! single-core reference point (`PixelBox-CPU-S`, Figure 7) and as the
//! migration target when the GPU is congested (§4.2).

use super::algorithm::{compute_pair, Trace};
use super::{PairAreas, PixelBoxConfig, PolygonPair};
use crate::parallel::parallel_map;

/// Computes the areas of one pair on the CPU.
pub fn compute_pair_cpu(pair: &PolygonPair, config: &PixelBoxConfig) -> PairAreas {
    compute_pair(pair, config.threshold, config.cpu_fanout, config.variant).0
}

/// Computes the areas of one pair on the CPU, also returning the execution
/// trace (used by benchmarks and the performance model).
pub fn compute_pair_cpu_traced(pair: &PolygonPair, config: &PixelBoxConfig) -> (PairAreas, Trace) {
    compute_pair(pair, config.threshold, config.cpu_fanout, config.variant)
}

/// Computes a whole batch of pairs on `workers` CPU threads
/// (`PixelBox-CPU`). With `workers == 1` this is `PixelBox-CPU-S`.
pub fn compute_batch_cpu(
    pairs: &[PolygonPair],
    config: &PixelBoxConfig,
    workers: usize,
) -> Vec<PairAreas> {
    parallel_map(pairs, workers, 64, |pair| compute_pair_cpu(pair, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixelbox::Variant;
    use sccg_geometry::{raster, Rect, RectilinearPolygon};

    fn sample_pairs() -> Vec<PolygonPair> {
        let mut pairs = Vec::new();
        for i in 0..12i32 {
            let p = RectilinearPolygon::rectangle(Rect::new(i, i, i + 10 + i % 3, i + 8)).unwrap();
            let q = RectilinearPolygon::rectangle(Rect::new(i + 3, i + 2, i + 14, i + 11)).unwrap();
            pairs.push(PolygonPair::new(p, q));
        }
        pairs
    }

    #[test]
    fn single_pair_matches_oracle() {
        let config = PixelBoxConfig::paper_default();
        for pair in sample_pairs() {
            let areas = compute_pair_cpu(&pair, &config);
            let (ri, ru) = raster::intersection_union_area(&pair.p, &pair.q);
            assert_eq!(areas.intersection, ri);
            assert_eq!(areas.union, ru);
        }
    }

    #[test]
    fn batch_matches_per_pair_results_regardless_of_worker_count() {
        let config = PixelBoxConfig::paper_default();
        let pairs = sample_pairs();
        let sequential = compute_batch_cpu(&pairs, &config, 1);
        let parallel = compute_batch_cpu(&pairs, &config, 4);
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), pairs.len());
    }

    #[test]
    fn all_variants_agree_on_cpu() {
        let pairs = sample_pairs();
        let base = PixelBoxConfig::paper_default();
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            let config = base.with_variant(variant);
            let results = compute_batch_cpu(&pairs, &config, 2);
            for (pair, areas) in pairs.iter().zip(results) {
                let (ri, ru) = raster::intersection_union_area(&pair.p, &pair.q);
                assert_eq!((areas.intersection, areas.union), (ri, ru), "{variant:?}");
            }
        }
    }

    #[test]
    fn traced_computation_returns_work_counts() {
        let config = PixelBoxConfig::paper_default().with_threshold(16);
        let pair = &sample_pairs()[5];
        let (areas, trace) = compute_pair_cpu_traced(pair, &config);
        assert!(areas.union >= areas.intersection);
        assert!(trace.pixel_tests + trace.box_tests > 0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let config = PixelBoxConfig::paper_default();
        assert!(compute_batch_cpu(&[], &config, 4).is_empty());
    }
}
